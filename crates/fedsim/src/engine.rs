//! [`FedSim`]: the synchronous federated-averaging round loop, with
//! optional mid-round fault injection and deadline-driven aggregation.
//!
//! ## Fault taxonomy and round policies
//!
//! A [`haccs_sysmodel::FaultModel`] attached via [`FedSim::with_faults`]
//! injects three fault classes per `(client, epoch)`: **crashes** (the
//! update never arrives), **stragglers** (latency multiplied by a
//! slowdown) and **lossy transport** (wire frames dropped/corrupted and
//! retransmitted through [`haccs_wire::FaultyChannel`] with exponential
//! backoff). A [`RoundPolicy`] attached via [`FedSim::with_policy`]
//! decides what the server does about them:
//!
//! * [`AggregationPolicy::WaitForAll`] — the seed behavior and default:
//!   the round lasts as long as its slowest selected client (faulted
//!   clients charge their timeout), and whatever arrived is averaged.
//! * [`AggregationPolicy::DeadlineDrop`] — the server sets a deadline at a
//!   latency quantile of the available pool, aggregates what arrived by
//!   then, and advances the clock exactly to the deadline.
//! * [`AggregationPolicy::Replace`] — like `DeadlineDrop`, but at the
//!   deadline the selector is re-invoked to draft replacements for the
//!   failed slots from the not-yet-selected available pool. For HACCS this
//!   re-runs Algorithm 1's within-cluster rule, so a failed device is
//!   replaced by its lowest-latency available cluster sibling.
//!
//! With no fault model (or one with every rate at zero) and the default
//! policy, the round loop is *bit-identical* to the fault-free engine:
//! fault draws are pure hashes that never touch the engine RNG, and no
//! wire code runs unless `lossy_prob > 0`.

use crate::client::{ClientInfo, ClientState};
use crate::metrics::{FaultStats, RoundRecord, RunResult, TimePoint};
use crate::round::{self, PendingUpdate, RoundAccumulator};
use crate::selector::{sanitize_selection, SelectionContext, Selector};
use crate::trainer::{probe_loss, train_local, TrainConfig};
use haccs_codec::{CodecKind, UpdateCodec};
use haccs_data::{FederatedDataset, ImageSet};
use haccs_nn::{evaluate, Sequential};
use haccs_obs::Recorder;
use haccs_persist::{self as persist, PersistError, SnapshotReader, SnapshotWriter};
use haccs_sysmodel::{Availability, DeviceProfile, FaultModel, LatencyModel, SimClock};
use haccs_wire::{Message, Transport, TransportError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Builds a fresh (randomly initialized) model instance. Each parallel
/// local trainer constructs its own instance and overwrites the parameters
/// with the current global model.
pub type ModelFactory = Box<dyn Fn() -> Sequential + Send + Sync>;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Clients selected per round (`k`). The paper uses 10 of 50 (20%).
    pub k: usize,
    /// Local-training hyperparameters.
    pub train: TrainConfig,
    /// Evaluate the global model every `eval_every` rounds.
    pub eval_every: usize,
    /// Mini-batch used during evaluation.
    pub eval_batch: usize,
    /// Cap on global-test examples per evaluation (sampled once, seeded).
    pub eval_max: usize,
    /// Examples per client for the initial loss probe.
    pub probe_max: usize,
    /// Master seed: local shuffles, probes and evaluation sampling derive
    /// from it, so a run is fully reproducible.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            k: 10,
            train: TrainConfig::default(),
            eval_every: 1,
            eval_batch: 64,
            eval_max: 2048,
            probe_max: 64,
            seed: 0,
        }
    }
}

/// What the server does with updates that miss the round deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationPolicy {
    /// Synchronous FedAvg: wait for every selected client (faulted clients
    /// charge their timeout). The seed engine's behavior and the default.
    #[default]
    WaitForAll,
    /// Aggregate whatever arrived by the deadline; discard the rest and
    /// advance the clock exactly to the deadline.
    DeadlineDrop,
    /// At the deadline, re-invoke the selector to draft replacements for
    /// the failed slots (Algorithm 1's lowest-latency-available rule picks
    /// cluster siblings under HACCS), then wait for the replacements.
    Replace,
}

/// Round-execution policy: aggregation mode, deadline placement and the
/// wire-retry knobs handed to [`haccs_wire::FaultyChannel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundPolicy {
    /// Aggregation mode.
    pub aggregation: AggregationPolicy,
    /// Deadline = this quantile of expected latencies over the *available*
    /// pool (deadline policies only). `0.9` means the server budgets for
    /// the 90th-percentile client.
    pub deadline_quantile: f64,
    /// Wire retransmissions allowed per message.
    pub max_retries: u32,
    /// First wire backoff interval (doubles per retry).
    pub backoff_base_s: f64,
}

impl Default for RoundPolicy {
    fn default() -> Self {
        RoundPolicy {
            aggregation: AggregationPolicy::WaitForAll,
            deadline_quantile: 0.9,
            max_retries: 3,
            backoff_base_s: 0.5,
        }
    }
}

impl RoundPolicy {
    /// A deadline policy at the given quantile.
    pub fn deadline(aggregation: AggregationPolicy, deadline_quantile: f64) -> Self {
        assert!((0.0..=1.0).contains(&deadline_quantile), "quantile must be in [0, 1]");
        RoundPolicy { aggregation, deadline_quantile, ..Default::default() }
    }
}

/// Periodic snapshot schedule for a simulation run: every
/// `every_rounds` completed rounds, [`FedSim::run_round`] serializes the
/// full training state ([`FedSim::snapshot`]) and writes it atomically
/// under `dir`.
#[derive(Debug, Clone)]
pub struct SnapshotPolicy {
    /// Snapshot after every this many completed rounds.
    pub every_rounds: usize,
    /// Directory snapshot files are written into (created on demand).
    pub dir: std::path::PathBuf,
}

impl SnapshotPolicy {
    /// Snapshot every `every_rounds` rounds into `dir`.
    pub fn every(every_rounds: usize, dir: impl Into<std::path::PathBuf>) -> Self {
        assert!(every_rounds >= 1, "snapshot interval must be at least 1 round");
        SnapshotPolicy { every_rounds, dir: dir.into() }
    }

    /// The file a snapshot taken after `epoch` completed rounds lands in.
    pub fn path_for(&self, epoch: usize) -> std::path::PathBuf {
        self.dir.join(format!("round_{epoch:06}.snap"))
    }
}

/// The federated simulation: global model, clients, clock and history.
pub struct FedSim {
    factory: ModelFactory,
    global_params: Vec<f32>,
    /// All devices in the federation.
    pub clients: Vec<ClientState>,
    /// Latency model used for both scheduling estimates and clock advances.
    pub latency: LatencyModel,
    /// Dropout model.
    pub availability: Availability,
    cfg: SimConfig,
    clock: SimClock,
    eval_model: Sequential,
    eval_set: ImageSet,
    rng: StdRng,
    epoch: usize,
    result: RunResult,
    faults: FaultModel,
    policy: RoundPolicy,
    snapshots: Option<SnapshotPolicy>,
    obs: Recorder,
    /// Custom carrier for update/heartbeat traffic. `None` derives a
    /// [`haccs_wire::FaultyChannel`] from the fault schedule per call
    /// (the historical behavior, bit-identical to the seed runs).
    transport: Option<Box<dyn Transport + Send>>,
    /// Model-update codec. `None` and `Identity` both keep the wire
    /// carrying plain [`Message::ModelUpdate`] frames — bit-identical to
    /// the pre-codec engine.
    codec: Option<Box<dyn UpdateCodec>>,
    /// Per-client error-feedback residuals, allocated only when the
    /// attached codec is stateful (`TopK`). Updated at encode time —
    /// whether or not the frame survives the wire — like a real client.
    codec_residuals: Vec<Vec<f32>>,
}

impl FedSim {
    /// Assembles a simulation from a materialized dataset and per-client
    /// profiles. Probes every client's initial loss with the fresh global
    /// model so selectors have a loss signal from round 0.
    pub fn new(
        factory: ModelFactory,
        fed: FederatedDataset,
        profiles: Vec<DeviceProfile>,
        latency: LatencyModel,
        availability: Availability,
        cfg: SimConfig,
    ) -> Self {
        assert_eq!(fed.clients.len(), profiles.len(), "one profile per client");
        assert!(cfg.k >= 1, "k must be at least 1");
        assert!(cfg.eval_every >= 1);
        let global_model = factory();
        let global_params = global_model.get_params();

        // down-sample the pooled test set once (seeded, unbiased)
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE7A1_77F0);
        let eval_set = if fed.global_test.len() > cfg.eval_max {
            let mut idx: Vec<usize> = (0..fed.global_test.len()).collect();
            idx.shuffle(&mut rng);
            idx.truncate(cfg.eval_max);
            let mut s = ImageSet::empty(
                fed.global_test.channels(),
                fed.global_test.side(),
                fed.global_test.classes(),
            );
            for i in idx {
                s.push(fed.global_test.image(i), fed.global_test.labels()[i]);
            }
            s
        } else {
            fed.global_test.clone()
        };

        let mut clients: Vec<ClientState> = fed
            .clients
            .into_iter()
            .zip(profiles)
            .enumerate()
            .map(|(id, (data, profile))| ClientState::new(id, data, profile))
            .collect();

        // initial loss probe, in parallel (each worker builds its own model)
        let cfg_train = cfg.train;
        let probe_max = cfg.probe_max;
        let gp = &global_params;
        let f = &factory;
        let losses: Vec<f32> = clients
            .par_iter()
            .map(|c| {
                let mut m = f();
                m.set_params(gp);
                probe_loss(&mut m, &c.data.train, &cfg_train, probe_max)
            })
            .collect();
        for (c, l) in clients.iter_mut().zip(losses) {
            c.last_loss = Some(l);
        }

        FedSim {
            factory,
            global_params,
            clients,
            latency,
            availability,
            cfg,
            clock: SimClock::new(),
            eval_model: global_model,
            eval_set,
            rng: StdRng::seed_from_u64(cfg.seed),
            epoch: 0,
            result: RunResult::default(),
            faults: FaultModel::none(cfg.seed),
            policy: RoundPolicy::default(),
            snapshots: None,
            obs: Recorder::disabled(),
            transport: None,
            codec: None,
            codec_residuals: Vec::new(),
        }
    }

    /// Attaches a fault schedule (builder style). A schedule with every
    /// rate at zero leaves the simulation bit-identical to no schedule.
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Routes update transmissions and heartbeat acks through a custom
    /// [`Transport`] (builder style) instead of the per-call
    /// [`haccs_wire::FaultyChannel`] derived from the fault schedule. A
    /// custom transport carries wire traffic whenever the schedule's
    /// `lossy_prob > 0` — the same gate the derived channel uses — so a
    /// transport whose outcomes match the derived channel's hashes keeps
    /// every [`FaultStats`] field bit-identical (pinned by
    /// `tests/transport_fault_parity.rs`).
    pub fn with_transport(mut self, transport: Box<dyn Transport + Send>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Attaches a model-update codec (builder style). `Identity` keeps
    /// the wire carrying plain `ModelUpdate` frames and every round
    /// bit-identical to the codec-free engine; `Int8`/`TopK` encode each
    /// trained update against the current global model, charge the
    /// *encoded* size to the latency model and the byte accounting, and
    /// aggregate the decoded reconstruction. A stateful codec (`TopK`)
    /// keeps one error-feedback residual per client, zero-initialized
    /// here and carried through snapshots.
    pub fn with_codec(mut self, kind: CodecKind) -> Self {
        let codec = kind.build();
        self.codec_residuals = if codec.stateful() {
            vec![vec![0.0; self.global_params.len()]; self.clients.len()]
        } else {
            Vec::new()
        };
        self.codec = Some(codec);
        self
    }

    /// The attached codec's kind, if any.
    pub fn codec_kind(&self) -> Option<CodecKind> {
        self.codec.as_ref().map(|c| c.kind())
    }

    /// The codec guard label written into snapshots (`"none"` without one).
    fn codec_label(&self) -> String {
        match self.codec_kind() {
            Some(kind) => kind.to_string(),
            None => "none".to_string(),
        }
    }

    /// Sets the round-execution policy (builder style).
    pub fn with_policy(mut self, policy: RoundPolicy) -> Self {
        assert!(
            (0.0..=1.0).contains(&policy.deadline_quantile),
            "deadline quantile must be in [0, 1]"
        );
        self.policy = policy;
        self
    }

    /// Attaches a periodic snapshot schedule (builder style). Each
    /// matching round end serializes the full state and writes it
    /// atomically under the policy's directory; a crash between
    /// snapshots loses at most `every_rounds - 1` rounds.
    ///
    /// # Panics
    /// [`FedSim::run_round`] panics if a scheduled snapshot cannot be
    /// written — silently continuing would defeat the durability the
    /// policy exists to provide.
    pub fn with_snapshots(mut self, snapshots: SnapshotPolicy) -> Self {
        self.snapshots = Some(snapshots);
        self
    }

    /// Attaches a telemetry recorder (builder style). Instrumentation
    /// only *reads* simulation state — it never touches the RNG, the
    /// clock, or any aggregated float — so an enabled recorder leaves
    /// every [`RoundRecord`] bit-identical to a disabled one (pinned by
    /// the workspace `obs_parity` suite).
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// The attached telemetry recorder (disabled unless set).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// The active snapshot schedule, if any.
    pub fn snapshot_policy(&self) -> Option<&SnapshotPolicy> {
        self.snapshots.as_ref()
    }

    /// The active fault schedule.
    pub fn faults(&self) -> &FaultModel {
        &self.faults
    }

    /// The active round policy.
    pub fn policy(&self) -> &RoundPolicy {
        &self.policy
    }

    /// Current epoch (rounds completed).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// The current global parameter vector.
    pub fn global_params(&self) -> &[f32] {
        &self.global_params
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Expected §IV-D round latency of client `id`, accounting for the
    /// per-round local-work cap and the client's share of coordinator
    /// control traffic (see [`round::expected_round_latency`]).
    pub fn expected_latency(&self, id: usize) -> f64 {
        let c = &self.clients[id];
        let up_bits =
            round::uplink_bits(&self.latency, self.codec_kind(), self.global_params.len());
        round::expected_round_latency_coded(
            &self.latency,
            &c.profile,
            &self.cfg.train,
            c.data.n_train(),
            up_bits,
        )
    }

    /// Scheduling view ([`ClientInfo`]) of the given client ids. Clients
    /// never probed report the pool's mean observed loss
    /// ([`crate::client::neutral_loss`]) rather than a runaway sentinel.
    pub fn client_infos(&self, ids: &[usize]) -> Vec<ClientInfo> {
        let observed: Vec<Option<f32>> = ids.iter().map(|&id| self.clients[id].last_loss).collect();
        let fallback = crate::client::neutral_loss(&observed);
        ids.iter()
            .map(|&id| {
                let c = &self.clients[id];
                ClientInfo {
                    id,
                    est_latency: self.expected_latency(id),
                    last_loss: c.last_loss.unwrap_or(fallback),
                    n_train: c.data.n_train(),
                    participation_count: c.participation_count,
                }
            })
            .collect()
    }

    /// The round deadline the server would set this epoch: the configured
    /// quantile of expected latencies over the available pool.
    pub fn round_deadline(&self, available_ids: &[usize]) -> f64 {
        let lats: Vec<f64> = available_ids.iter().map(|&id| self.expected_latency(id)).collect();
        round::deadline_quantile(lats, self.policy.deadline_quantile)
    }

    /// Effective latency of `id` this epoch: the §IV-D expectation,
    /// multiplied by the straggler slowdown when the fault schedule says so.
    fn effective_latency(&self, id: usize, epoch: usize) -> f64 {
        let base = self.expected_latency(id);
        if self.faults.straggles(id, epoch) {
            base * self.faults.straggler_slowdown
        } else {
            base
        }
    }

    /// Trains `ids` in parallel against the current global model. Local
    /// seeds depend only on `(cfg.seed, epoch, id)`, so the same id trains
    /// identically whether it was selected up front or drafted as a
    /// replacement.
    fn train_clients(&self, ids: &[usize]) -> Vec<(usize, Vec<f32>, f32)> {
        let cfg_train = self.cfg.train;
        let seed = self.cfg.seed;
        let epoch = self.epoch;
        let gp = &self.global_params;
        let f = &self.factory;
        let clients = &self.clients;
        ids.par_iter()
            .map(|&id| {
                let mut m = f();
                m.set_params(gp);
                let local_seed = round::local_train_seed(seed, epoch, id);
                let loss = train_local(&mut m, &clients[id].data.train, &cfg_train, local_seed);
                (id, m.get_params(), loss)
            })
            .collect()
    }

    /// Runs one trained parameter vector through the attached codec:
    /// encodes it against the current (pre-aggregation) global model,
    /// updates the client's error-feedback residual at encode time —
    /// whether or not the frame later survives the wire, exactly like a
    /// real client — and returns the parameters the server aggregates
    /// (the decoded reconstruction) plus the wire payload. Under no
    /// codec or `Identity` the parameters pass through untouched and the
    /// wire keeps carrying plain `ModelUpdate` frames.
    fn encode_update(&mut self, id: usize, params: &[f32]) -> (Vec<f32>, Option<Vec<u8>>) {
        let codec = match &self.codec {
            Some(c) if !matches!(c.kind(), CodecKind::Identity) => c,
            _ => return (params.to_vec(), None),
        };
        let enc_span = self.obs.span("codec.encode").u("client", id as u64);
        let payload = if codec.stateful() {
            codec.encode(params, &self.global_params, Some(&mut self.codec_residuals[id]))
        } else {
            codec.encode(params, &self.global_params, None)
        };
        enc_span.u("bytes", payload.len() as u64).finish();
        let dec_span = self.obs.span("codec.decode").u("client", id as u64);
        let decoded = codec
            .decode(&payload, &self.global_params)
            .expect("self-encoded update payload must decode");
        dec_span.finish();
        (decoded, Some(payload))
    }

    /// Sends one trained update through the lossy wire (only called when
    /// `lossy_prob > 0`). With an encoded `payload` the frame carries
    /// [`Message::ModelUpdateEnc`]; otherwise the plain `ModelUpdate`.
    /// Channel outcomes are pure hashes of `(seed, stream, attempt)`, so
    /// the codec never perturbs the retry/loss trace. Returns
    /// `Ok((retries, backoff_s))` on delivery.
    fn transmit_update(
        &self,
        id: usize,
        update: &(usize, Vec<f32>, f32),
        payload: Option<&[u8]>,
    ) -> Result<(usize, f64), (usize, f64)> {
        let n_train = self.clients[id].data.n_train() as u32;
        let msg = match payload {
            Some(p) => Message::ModelUpdateEnc {
                round: self.epoch as u64,
                codec: self.codec_kind().map(|k| k.tag()).unwrap_or(0),
                payload: p.to_vec(),
                loss: update.2,
                n_train,
            },
            None => Message::ModelUpdate {
                round: self.epoch as u64,
                params: update.1.clone(),
                loss: update.2,
                n_train,
            },
        };
        let stream_id = round::update_stream_id(self.epoch, id);
        let derived;
        let transport: &dyn Transport = match &self.transport {
            Some(t) => &**t,
            None => {
                derived = round::wire_channel(&self.faults, &self.policy);
                &derived
            }
        };
        match transport.transmit(&msg, stream_id) {
            Ok(d) => Ok((d.retries as usize, d.backoff_s)),
            Err(TransportError::Channel(haccs_wire::ChannelError::RetryBudgetExhausted {
                attempts,
                backoff_s,
            })) => Err((attempts as usize - 1, backoff_s)),
            // a physical-transport failure: the update never arrived and
            // there is no simulated retry schedule to account for
            Err(_) => Err((0, 0.0)),
        }
    }

    /// Runs one synchronous round with `selector`. Returns the round record.
    pub fn run_round(&mut self, selector: &mut dyn Selector) -> RoundRecord {
        let mut round_span = self.obs.span("engine.round").u("epoch", self.epoch as u64);
        let n = self.clients.len();
        let available_ids = self.availability.available_clients(n, self.epoch);
        let infos = self.client_infos(&available_ids);
        let ctx = SelectionContext { epoch: self.epoch, available: &infos, k: self.cfg.k };
        let selected = {
            let sel_span = self
                .obs
                .span("engine.selection")
                .u("epoch", self.epoch as u64)
                .u("pool", available_ids.len() as u64);
            let raw = selector.select(&ctx, &mut self.rng);
            let selected = sanitize_selection(raw, &ctx);
            sel_span.u("selected", selected.len() as u64).finish();
            selected
        };

        let record = if selected.is_empty() {
            // nothing trainable this epoch: idle-tick the clock so callers
            // looping on time still terminate
            self.clock.advance(1.0);
            RoundRecord {
                epoch: self.epoch,
                time_s: self.clock.now(),
                round_seconds: 1.0,
                participants: Vec::new(),
                mean_local_loss: f32::NAN,
                faults: FaultStats::default(),
            }
        } else {
            self.execute_round(selector, selected, &available_ids)
        };

        self.result.rounds.push(record.clone());
        self.epoch += 1;

        if self.epoch.is_multiple_of(self.cfg.eval_every) {
            let tp = self.evaluate_global();
            self.result.curve.push(tp);
        }

        if let Some(p) = &self.snapshots {
            if self.epoch.is_multiple_of(p.every_rounds) {
                let path = p.path_for(self.epoch);
                let bytes = self.snapshot(&*selector);
                persist::write_atomic_obs(&path, &bytes, &self.obs)
                    .unwrap_or_else(|e| panic!("scheduled snapshot failed: {e}"));
            }
        }

        self.obs.inc("engine_rounds_total", 1);
        self.obs.inc("engine_updates_total", record.participants.len() as u64);
        self.obs.inc("engine_control_bytes_total", record.faults.control_bytes as u64);
        self.obs.inc("engine_wire_retries_total", record.faults.retries as u64);
        self.obs.inc("codec.bytes_raw", record.faults.payload_bytes_raw as u64);
        self.obs.inc("codec.bytes_encoded", record.faults.payload_bytes_encoded as u64);
        if record.faults.payload_bytes_encoded > 0 {
            self.obs.gauge(
                "codec.compression_ratio",
                record.faults.payload_bytes_raw as f64 / record.faults.payload_bytes_encoded as f64,
            );
        }
        self.obs.observe("engine_round_sim_seconds", record.round_seconds);
        round_span.set_sim(record.time_s);
        round_span.push_u("participants", record.participants.len() as u64);
        round_span.push_f("round_seconds", record.round_seconds);
        round_span.push_f("mean_local_loss", record.mean_local_loss as f64);
        round_span.finish();
        record
    }

    /// The body of a non-empty round: fault draws → training → (lossy)
    /// wire → deadline policy → FedAvg → clock.
    fn execute_round(
        &mut self,
        selector: &mut dyn Selector,
        selected: Vec<usize>,
        available_ids: &[usize],
    ) -> RoundRecord {
        let epoch = self.epoch;

        // 1. fault draws + effective latencies for the selected set
        let draws: Vec<(usize, bool, f64)> = selected
            .iter()
            .map(|&id| {
                let d = self.faults.draw(id, epoch);
                (id, d.crashed, self.effective_latency(id, epoch))
            })
            .collect();

        // 2. the deadline, if a deadline policy is active
        let deadline = match self.policy.aggregation {
            AggregationPolicy::WaitForAll => None,
            _ => Some(self.round_deadline(available_ids)),
        };
        let mut acc = RoundAccumulator::new(deadline);
        acc.stats.crashed = draws.iter().filter(|(_, crashed, _)| *crashed).count();
        acc.stats.stragglers = selected
            .iter()
            .filter(|&&id| self.faults.straggles(id, epoch) && !self.faults.crashes(id, epoch))
            .count();

        // 3. who actually trains: crashed clients never deliver, and under
        // a deadline policy a client whose compute alone overruns the
        // deadline is discarded unseen — no point simulating its SGD
        let mut trainees: Vec<usize> = Vec::with_capacity(selected.len());
        for &(id, crashed, lat) in &draws {
            if crashed {
                acc.record_crash(lat);
                self.obs.event("engine.crash").u("epoch", epoch as u64).u("client", id as u64);
            } else if deadline.is_some_and(|d| lat > d) {
                acc.record_deadline_precut(lat);
                self.obs
                    .event("engine.deadline_precut")
                    .u("epoch", epoch as u64)
                    .u("client", id as u64)
                    .f("latency_s", lat)
                    .f("deadline_s", deadline.unwrap_or(f64::NAN));
            } else {
                trainees.push(id);
            }
        }
        let updates = {
            let span = self
                .obs
                .span("engine.train")
                .u("epoch", epoch as u64)
                .u("clients", trainees.len() as u64);
            let updates = self.train_clients(&trainees);
            span.finish();
            updates
        };

        // 4. lossy wire: every trained update is transmitted; retries add
        // backoff to its arrival time, budget exhaustion loses it. The
        // attached codec runs here: payload bytes are charged per trained
        // transmission — delivered or wire-lost — and error feedback
        // updates at encode time, exactly like a real client.
        let n_params = self.global_params.len();
        let enc_bytes = round::payload_encoded_bytes(self.codec_kind(), n_params);
        for u in updates {
            let id = u.0;
            let lat = draws.iter().find(|(i, _, _)| *i == id).map(|d| d.2).unwrap();
            let (delivered, payload) = self.encode_update(id, &u.1);
            acc.stats.payload_bytes_raw += 4 * n_params;
            acc.stats.payload_bytes_encoded += enc_bytes;
            let pending = PendingUpdate {
                id,
                params: delivered,
                loss: u.2,
                n_train: self.clients[id].data.n_train(),
            };
            if self.faults.lossy_prob > 0.0 {
                match self.transmit_update(id, &u, payload.as_deref()) {
                    Ok((retries, backoff_s)) => {
                        acc.record_delivery(pending, lat, backoff_s, retries, false);
                    }
                    Err((retries, backoff_s)) => {
                        acc.record_wire_loss(retries, lat, backoff_s);
                        self.obs
                            .event("engine.wire_loss")
                            .u("epoch", epoch as u64)
                            .u("client", id as u64)
                            .u("retries", retries as u64);
                    }
                }
            } else {
                acc.record_delivery(pending, lat, 0.0, 0, false);
            }
        }

        // 5. Replace policy: draft substitutes for the failed slots from
        // the available-but-unselected pool. The server pings candidates
        // before drafting, so a device that is crashed this epoch never
        // makes the list (the e2e suite asserts exactly this).
        let n_failed = selected.len() - acc.updates.len();
        if self.policy.aggregation == AggregationPolicy::Replace && n_failed > 0 {
            let taken: std::collections::HashSet<usize> = selected.iter().copied().collect();
            let pool: Vec<usize> = available_ids
                .iter()
                .copied()
                .filter(|&id| !taken.contains(&id) && !self.faults.crashes(id, epoch))
                .collect();
            if !pool.is_empty() {
                let pool_infos = self.client_infos(&pool);
                let rctx = SelectionContext { epoch, available: &pool_infos, k: n_failed };
                let raw = selector.select(&rctx, &mut self.rng);
                let replacements = sanitize_selection(raw, &rctx);
                let trained = self.train_clients(&replacements);
                for u in trained {
                    let id = u.0;
                    let lat = self.effective_latency(id, epoch);
                    let (delivered, payload) = self.encode_update(id, &u.1);
                    acc.stats.payload_bytes_raw += 4 * n_params;
                    acc.stats.payload_bytes_encoded += enc_bytes;
                    let pending = PendingUpdate {
                        id,
                        params: delivered,
                        loss: u.2,
                        n_train: self.clients[id].data.n_train(),
                    };
                    if self.faults.lossy_prob > 0.0 {
                        match self.transmit_update(id, &u, payload.as_deref()) {
                            Ok((retries, backoff_s)) => {
                                acc.record_delivery(pending, lat, backoff_s, retries, true);
                            }
                            Err((retries, backoff_s)) => {
                                acc.record_wire_loss(retries, lat, backoff_s);
                                self.obs
                                    .event("engine.wire_loss")
                                    .u("epoch", epoch as u64)
                                    .u("client", id as u64)
                                    .u("retries", retries as u64)
                                    .b("replacement", true);
                            }
                        }
                    } else {
                        acc.record_delivery(pending, lat, 0.0, 0, true);
                    }
                }
            }
        }

        // 6. FedAvg over everything that arrived, weighted by sample count.
        // Update-hungry selectors (FedClust) see each admitted delta
        // (trained − global, both pre-aggregation) first; the gate keeps
        // every other strategy allocation-free and bit-identical.
        if selector.wants_updates() {
            for u in &acc.updates {
                let delta: Vec<f32> =
                    u.params.iter().zip(&self.global_params).map(|(p, g)| p - g).collect();
                selector.observe_update(epoch, u.id, &delta);
            }
        }
        let agg_span = self
            .obs
            .span("engine.aggregate")
            .u("epoch", epoch as u64)
            .u("updates", acc.updates.len() as u64);
        acc.fedavg(&mut self.global_params);
        for u in &acc.updates {
            let c = &mut self.clients[u.id];
            c.last_loss = Some(u.loss);
            c.participation_count += 1;
        }
        agg_span.finish();

        // 7. clock: policy decides how long the round lasted
        let draw_lats: Vec<f64> = draws.iter().map(|&(_, _, lat)| lat).collect();
        let round_seconds = crate::round::round_duration(
            self.policy.aggregation,
            deadline,
            &acc.arrivals,
            &draw_lats,
            &acc.replacement_arrivals,
        );
        self.clock.advance(round_seconds);

        // 8. heartbeat sweep: every client is probed, the available ones
        // ack (through the lossy wire if one is configured). Pure byte and
        // liveness accounting — heartbeats never stretch the round.
        let hb = match &self.transport {
            Some(t) if self.faults.lossy_prob > 0.0 => crate::round::simulate_heartbeats_with(
                &**t,
                epoch,
                self.clients.len(),
                available_ids,
            ),
            _ => crate::round::simulate_heartbeats(
                &self.faults,
                &self.policy,
                epoch,
                self.clients.len(),
                available_ids,
            ),
        };
        acc.stats.retries += hb.retries;
        acc.stats.hb_missed = hb.missed;
        let schedule_size = Message::Schedule { round: 0, client_nonce: 0 }.wire_size();
        acc.stats.control_bytes =
            (selected.len() + acc.stats.replacements.len()) * schedule_size + hb.bytes;

        // 9. selector feedback: arrivals with losses, plus the failed set
        let losses: Vec<f32> = acc.updates.iter().map(|u| u.loss).collect();
        let ids = acc.participant_ids();
        selector.observe_round(epoch, &ids, &losses);
        let aggregated: std::collections::HashSet<usize> = ids.iter().copied().collect();
        let failed: Vec<usize> =
            selected.iter().copied().filter(|id| !aggregated.contains(id)).collect();
        if !failed.is_empty() {
            selector.observe_faults(epoch, &failed);
        }

        RoundRecord {
            epoch,
            time_s: self.clock.now(),
            round_seconds,
            participants: ids,
            mean_local_loss: acc.mean_local_loss(),
            faults: acc.stats,
        }
    }

    /// Evaluates the current global model on the (sampled) pooled test set.
    pub fn evaluate_global(&mut self) -> TimePoint {
        let eval_span = self.obs.span("engine.evaluate").u("epoch", self.epoch as u64);
        self.eval_model.set_params(&self.global_params);
        let (x, y) = if self.cfg.train.wants_images {
            (self.eval_set.tensor_nchw(), self.eval_set.labels().to_vec())
        } else {
            (self.eval_set.tensor_flat(), self.eval_set.labels().to_vec())
        };
        let r = evaluate(&mut self.eval_model, &x, &y, self.cfg.eval_batch);
        eval_span.f("accuracy", r.accuracy as f64).sim(self.clock.now()).finish();
        TimePoint {
            time_s: self.clock.now(),
            epoch: self.epoch,
            accuracy: r.accuracy,
            loss: r.loss,
        }
    }

    /// Computes a per-client **gradient sketch**: the flat gradient of the
    /// loss at the *current global model* over (up to `max_examples` of)
    /// each client's training data. This is the alternative summary §IV-A
    /// discusses — "devices may have gradients that point in similar
    /// directions" — which must be recomputed every epoch because it
    /// changes with the model. In a deployment each client would compute
    /// and upload this (Θ(|w|) per client per epoch!); here the simulator
    /// evaluates it directly.
    pub fn gradient_sketches(&self, max_examples: usize) -> Vec<Vec<f32>> {
        let gp = &self.global_params;
        let f = &self.factory;
        let cfg = self.cfg;
        self.clients
            .par_iter()
            .map(|c| {
                let mut m = f();
                m.set_params(gp);
                let n = c.data.train.len().min(max_examples.max(1));
                let idx: Vec<usize> = (0..n).collect();
                let (x, y) = if cfg.train.wants_images {
                    c.data.train.batch_nchw(&idx)
                } else {
                    c.data.train.batch_flat(&idx)
                };
                let logits = m.forward(x);
                let (_, d) = haccs_nn::softmax_cross_entropy(&logits, &y);
                m.zero_grad();
                m.backward(d);
                m.get_grads()
            })
            .collect()
    }

    /// Evaluates the global model on every client's *local test* shard —
    /// the per-group accuracy readout of Fig. 1 and the per-device readout
    /// of Fig. 11. Clients with empty test shards get accuracy `NaN`.
    pub fn evaluate_per_client(&self) -> Vec<f32> {
        let gp = &self.global_params;
        let f = &self.factory;
        let cfg = self.cfg;
        self.clients
            .par_iter()
            .map(|c| {
                if c.data.test.is_empty() {
                    return f32::NAN;
                }
                let mut m = f();
                m.set_params(gp);
                let (x, y) = if cfg.train.wants_images {
                    (c.data.test.tensor_nchw(), c.data.test.labels().to_vec())
                } else {
                    (c.data.test.tensor_flat(), c.data.test.labels().to_vec())
                };
                evaluate(&mut m, &x, &y, cfg.eval_batch).accuracy
            })
            .collect()
    }

    /// Number of clients currently in the federation (ids are dense, so
    /// this is also the id the next [`Self::add_client`] will assign).
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// Adds a client mid-training (§IV-C: devices may join while training
    /// is in progress). The new client's loss is probed against the current
    /// global model so selectors see a meaningful signal immediately.
    /// Returns the new client's id. Callers using HACCS should re-cluster
    /// (`HaccsSelector::recluster`) with the newcomer's summary included.
    pub fn add_client(&mut self, data: haccs_data::ClientData, profile: DeviceProfile) -> usize {
        let id = self.clients.len();
        let mut c = ClientState::new(id, data, profile);
        let mut m = (self.factory)();
        m.set_params(&self.global_params);
        c.last_loss = Some(probe_loss(&mut m, &c.data.train, &self.cfg.train, self.cfg.probe_max));
        self.clients.push(c);
        if self.codec.as_ref().is_some_and(|codec| codec.stateful()) {
            self.codec_residuals.push(vec![0.0; self.global_params.len()]);
        }
        id
    }

    /// Replaces a client's local data mid-training (§IV-C: "the data
    /// distribution at a given client device could change over time").
    /// The client's loss is re-probed against the current global model.
    /// Callers should have the client send a fresh summary and re-cluster.
    pub fn replace_client_data(&mut self, id: usize, data: haccs_data::ClientData) {
        let mut m = (self.factory)();
        m.set_params(&self.global_params);
        let loss = probe_loss(&mut m, &data.train, &self.cfg.train, self.cfg.probe_max);
        let c = &mut self.clients[id];
        c.data = data;
        c.last_loss = Some(loss);
    }

    /// Serializes the complete training state — config guards, epoch,
    /// clock, RNG stream, global parameters, per-client bookkeeping, the
    /// full round history and the selector's own state — into a framed
    /// [`haccs_persist`] snapshot.
    ///
    /// Restoring the bytes into a freshly constructed, identically
    /// configured simulation (see [`FedSim::restore`]) resumes the run
    /// **bit-identically**: every subsequent [`RoundRecord`] equals the
    /// record the uninterrupted run would have produced, under
    /// `RoundRecord`'s bitwise `PartialEq`. This holds because all other
    /// round inputs — fault draws, local train seeds, availability,
    /// latency — are pure functions of `(cfg.seed, epoch, id)` and never
    /// consume mutable state beyond what is captured here.
    pub fn snapshot(&self, selector: &dyn Selector) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        // config guards: restore refuses a snapshot from a differently
        // configured run, where bit-identity could not hold
        w.put_u64(self.cfg.seed);
        w.put_usize(self.cfg.k);
        w.put_usize(self.cfg.eval_every);
        w.put_usize(self.clients.len());
        // mutable engine state
        w.put_usize(self.epoch);
        w.put_f64(self.clock.now());
        w.put_u64s(&self.rng.state());
        w.put_f32s(&self.global_params);
        for c in &self.clients {
            w.put_opt_f32(c.last_loss);
            w.put_usize(c.participation_count);
        }
        self.result.save(&mut w);
        // codec guard + client-side error-feedback residuals: a stateful
        // codec's residuals are training state, so resuming a TopKDelta
        // run stays bit-identical — and a snapshot only restores under
        // the same codec configuration
        w.put_str(&self.codec_label());
        if self.codec.as_ref().is_some_and(|c| c.stateful()) {
            for res in &self.codec_residuals {
                w.put_f32s(res);
            }
        }
        // selector state, guarded by its strategy name
        w.put_str(&selector.name());
        selector.save_state(&mut w);
        w.finish()
    }

    /// Restores a [`FedSim::snapshot`] into this simulation, which must
    /// have been freshly constructed from the **same** dataset, profiles,
    /// latency/availability models and [`SimConfig`] as the snapshotted
    /// run (the stored guards reject obvious mismatches). `selector` must
    /// be a freshly constructed selector of the same strategy; its state
    /// is restored alongside the engine's.
    pub fn restore(
        &mut self,
        bytes: &[u8],
        selector: &mut dyn Selector,
    ) -> Result<(), PersistError> {
        let mut r = SnapshotReader::open(bytes)?;
        let guard = |name: &str, got: u64, want: u64| {
            if got == want {
                Ok(())
            } else {
                Err(PersistError::Malformed(format!(
                    "snapshot {name} {got} does not match this simulation's {want}"
                )))
            }
        };
        guard("seed", r.get_u64()?, self.cfg.seed)?;
        guard("k", r.get_usize()? as u64, self.cfg.k as u64)?;
        guard("eval_every", r.get_usize()? as u64, self.cfg.eval_every as u64)?;
        guard("client count", r.get_usize()? as u64, self.clients.len() as u64)?;

        let epoch = r.get_usize()?;
        let now = r.get_f64()?;
        if !(now.is_finite() && now >= 0.0) {
            return Err(PersistError::Malformed(format!("clock {now} out of range")));
        }
        let rng_state = r.get_u64s()?;
        let rng_state: [u64; 4] = rng_state
            .try_into()
            .map_err(|_| PersistError::Malformed("rng state must be 4 words".into()))?;
        let global_params = r.get_f32s()?;
        if global_params.len() != self.global_params.len() {
            return Err(PersistError::Malformed(format!(
                "snapshot has {} model parameters, this simulation {}",
                global_params.len(),
                self.global_params.len()
            )));
        }
        let mut per_client = Vec::with_capacity(self.clients.len());
        for _ in 0..self.clients.len() {
            per_client.push((r.get_opt_f32()?, r.get_usize()?));
        }
        let result = RunResult::load(&mut r)?;
        let codec_label = r.get_str()?;
        if codec_label != self.codec_label() {
            return Err(PersistError::Malformed(format!(
                "snapshot was taken with codec {codec_label:?}, this simulation uses {:?}",
                self.codec_label()
            )));
        }
        let stateful_codec = self.codec.as_ref().is_some_and(|c| c.stateful());
        let mut residuals = Vec::new();
        if stateful_codec {
            for _ in 0..self.clients.len() {
                let res = r.get_f32s()?;
                if res.len() != self.global_params.len() {
                    return Err(PersistError::Malformed(format!(
                        "codec residual has {} entries, the model {}",
                        res.len(),
                        self.global_params.len()
                    )));
                }
                residuals.push(res);
            }
        }
        let strategy = r.get_str()?;
        if strategy != selector.name() {
            return Err(PersistError::Malformed(format!(
                "snapshot was taken with selector {strategy:?}, restore got {:?}",
                selector.name()
            )));
        }
        selector.load_state(&mut r)?;
        r.expect_end()?;

        // everything validated: commit
        self.epoch = epoch;
        self.clock = SimClock::new();
        self.clock.advance(now);
        self.rng = StdRng::from_state(rng_state);
        self.global_params = global_params;
        for (c, (last_loss, participation_count)) in self.clients.iter_mut().zip(per_client) {
            c.last_loss = last_loss;
            c.participation_count = participation_count;
        }
        self.result = result;
        if stateful_codec {
            self.codec_residuals = residuals;
        }
        Ok(())
    }

    /// Runs `rounds` rounds and returns the accumulated result.
    pub fn run(&mut self, selector: &mut dyn Selector, rounds: usize) -> RunResult {
        for _ in 0..rounds {
            self.run_round(selector);
        }
        let mut out = self.result.clone();
        out.strategy = selector.name();
        out
    }

    /// Runs until `target` accuracy is reached (checked at each evaluation)
    /// or `max_rounds` elapse, whichever comes first.
    pub fn run_until(
        &mut self,
        selector: &mut dyn Selector,
        target: f32,
        max_rounds: usize,
    ) -> RunResult {
        for _ in 0..max_rounds {
            self.run_round(selector);
            if let Some(tp) = self.result.curve.last() {
                if tp.accuracy >= target {
                    break;
                }
            }
        }
        let mut out = self.result.clone();
        out.strategy = selector.name();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_data::{partition, SynthVision};
    use haccs_nn::mlp;

    /// Trivial selector: first k available.
    struct FirstK;
    impl Selector for FirstK {
        fn name(&self) -> String {
            "first-k".into()
        }
        fn select(&mut self, ctx: &SelectionContext<'_>, _rng: &mut StdRng) -> Vec<usize> {
            ctx.available.iter().take(ctx.k).map(|c| c.id).collect()
        }
    }

    fn build_sim(n_clients: usize, availability: Availability) -> FedSim {
        let gen = SynthVision::mnist_like(4, 8, 0);
        let specs = partition::iid(n_clients, 4, 60, 16);
        let fed = FederatedDataset::materialize(&gen, &specs, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let profiles = DeviceProfile::sample_many(n_clients, &mut rng);
        let factory: ModelFactory = Box::new(|| mlp(64, &[32], 4, &mut StdRng::seed_from_u64(7)));
        FedSim::new(
            factory,
            fed,
            profiles,
            LatencyModel::default(),
            availability,
            SimConfig { k: 3, seed: 5, ..Default::default() },
        )
    }

    #[test]
    fn initial_probe_fills_losses() {
        let sim = build_sim(6, Availability::AlwaysOn);
        for c in &sim.clients {
            let l = c.last_loss.expect("probed");
            assert!(l.is_finite() && l > 0.0);
        }
    }

    #[test]
    fn round_advances_clock_by_slowest() {
        let mut sim = build_sim(6, Availability::AlwaysOn);
        let rec = sim.run_round(&mut FirstK);
        assert_eq!(rec.participants.len(), 3);
        let slowest =
            rec.participants.iter().map(|&id| sim.expected_latency(id)).fold(0.0f64, f64::max);
        assert!((rec.round_seconds - slowest).abs() < 1e-9);
        assert!((sim.now() - rec.round_seconds).abs() < 1e-9);
    }

    #[test]
    fn training_improves_accuracy() {
        let mut sim = build_sim(6, Availability::AlwaysOn);
        let before = sim.evaluate_global();
        let result = sim.run(&mut FirstK, 15);
        let after = result.curve.last().unwrap();
        assert!(
            after.accuracy > before.accuracy + 0.1,
            "accuracy {} -> {}",
            before.accuracy,
            after.accuracy
        );
        assert!(after.loss < before.loss);
    }

    #[test]
    fn clock_is_monotone() {
        let mut sim = build_sim(6, Availability::AlwaysOn);
        let res = sim.run(&mut FirstK, 5);
        for w in res.rounds.windows(2) {
            assert!(w[1].time_s >= w[0].time_s);
        }
    }

    #[test]
    fn dropout_shrinks_available_pool() {
        let mut sim = build_sim(6, Availability::permanent([0, 1, 2, 3, 4]));
        let rec = sim.run_round(&mut FirstK);
        assert_eq!(rec.participants, vec![5]);
    }

    #[test]
    fn all_dropped_idles() {
        let mut sim = build_sim(3, Availability::permanent([0, 1, 2]));
        let rec = sim.run_round(&mut FirstK);
        assert!(rec.participants.is_empty());
        assert_eq!(rec.round_seconds, 1.0);
    }

    #[test]
    fn runs_are_reproducible() {
        let r1 = build_sim(6, Availability::AlwaysOn).run(&mut FirstK, 5);
        let r2 = build_sim(6, Availability::AlwaysOn).run(&mut FirstK, 5);
        assert_eq!(r1.rounds, r2.rounds);
        for (a, b) in r1.curve.iter().zip(&r2.curve) {
            assert_eq!(a.accuracy, b.accuracy);
        }
    }

    #[test]
    fn fedavg_of_identical_updates_is_identity() {
        // single client selected → global params become that client's params
        let mut sim = build_sim(2, Availability::permanent([1]));
        let before = sim.global_params().to_vec();
        sim.run_round(&mut FirstK);
        let after = sim.global_params().to_vec();
        assert_ne!(before, after, "params should move");
    }

    #[test]
    fn per_client_eval_has_one_entry_each() {
        let sim = build_sim(5, Availability::AlwaysOn);
        let accs = sim.evaluate_per_client();
        assert_eq!(accs.len(), 5);
        assert!(accs.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn clients_can_join_mid_training() {
        let mut sim = build_sim(4, Availability::AlwaysOn);
        sim.run(&mut FirstK, 2);
        // a new device joins with fresh data
        let gen = SynthVision::mnist_like(4, 8, 0);
        let specs = partition::iid(1, 4, 30, 8);
        let fed = FederatedDataset::materialize(&gen, &specs, 99);
        let id = sim.add_client(fed.clients[0].clone(), DeviceProfile::uniform_fast());
        assert_eq!(id, 4);
        assert_eq!(sim.clients.len(), 5);
        // probed against the *current* global model
        assert!(sim.clients[4].last_loss.unwrap().is_finite());
        // it is schedulable in the next round
        let infos = sim.client_infos(&[4]);
        assert_eq!(infos[0].id, 4);
        assert!(infos[0].est_latency > 0.0);
        sim.run_round(&mut FirstK); // engine still runs fine with 5 clients
    }

    #[test]
    fn client_data_can_be_replaced_mid_training() {
        let mut sim = build_sim(4, Availability::AlwaysOn);
        sim.run(&mut FirstK, 2);
        let old_loss = sim.clients[0].last_loss.unwrap();
        // replace client 0's shard with much bigger, differently-seeded data
        let gen = SynthVision::mnist_like(4, 8, 0);
        let specs = partition::iid(1, 4, 90, 5);
        let fed = FederatedDataset::materialize(&gen, &specs, 1234);
        sim.replace_client_data(0, fed.clients[0].clone());
        assert_eq!(sim.clients[0].data.n_train(), 90);
        let new_loss = sim.clients[0].last_loss.unwrap();
        assert!(new_loss.is_finite());
        assert_ne!(new_loss, old_loss, "loss must be re-probed on fresh data");
        sim.run_round(&mut FirstK);
    }

    #[test]
    fn participation_counts_recorded() {
        let mut sim = build_sim(6, Availability::AlwaysOn);
        let res = sim.run(&mut FirstK, 4);
        let counts = res.participation_counts(6);
        assert_eq!(counts[0], 4); // FirstK always picks client 0
        assert_eq!(counts[5], 0);
        assert_eq!(sim.clients[0].participation_count, 4);
    }

    #[test]
    fn zero_rate_fault_schedule_is_identical_to_none() {
        let plain = build_sim(6, Availability::AlwaysOn).run(&mut FirstK, 5);
        let zeroed = build_sim(6, Availability::AlwaysOn)
            .with_faults(FaultModel::none(5))
            .with_policy(RoundPolicy::default())
            .run(&mut FirstK, 5);
        assert_eq!(plain, zeroed, "zero-rate faults must not perturb the run");
    }

    #[test]
    fn crashed_clients_are_excluded_from_aggregation() {
        use haccs_sysmodel::FaultSpec;
        let mut sim = build_sim(6, Availability::AlwaysOn)
            .with_faults(FaultModel::none(5).with(FaultSpec::Crash { prob: 1.0 }));
        let before = sim.global_params().to_vec();
        let rec = sim.run_round(&mut FirstK);
        assert!(rec.participants.is_empty());
        assert_eq!(rec.faults.crashed, 3);
        assert!(rec.mean_local_loss.is_nan());
        assert!(rec.faults.wasted_client_seconds > 0.0);
        assert_eq!(sim.global_params(), &before[..], "no update may land");
        assert!(rec.round_seconds > 0.0, "the server still waited out the timeouts");
    }

    #[test]
    fn stragglers_stretch_the_round() {
        use haccs_sysmodel::FaultSpec;
        let normal = build_sim(6, Availability::AlwaysOn).run_round(&mut FirstK);
        let slowed = build_sim(6, Availability::AlwaysOn)
            .with_faults(
                FaultModel::none(5).with(FaultSpec::Straggler { prob: 1.0, slowdown: 4.0 }),
            )
            .run_round(&mut FirstK);
        assert_eq!(slowed.faults.stragglers, 3);
        assert!(
            (slowed.round_seconds - 4.0 * normal.round_seconds).abs() < 1e-9,
            "{} vs 4x{}",
            slowed.round_seconds,
            normal.round_seconds
        );
        // stragglers still arrive under WaitForAll
        assert_eq!(slowed.participants.len(), 3);
    }

    #[test]
    fn deadline_drop_advances_exactly_to_deadline() {
        let mut sim = build_sim(6, Availability::AlwaysOn)
            .with_policy(RoundPolicy::deadline(AggregationPolicy::DeadlineDrop, 0.5));
        let deadline = sim.round_deadline(&[0, 1, 2, 3, 4, 5]);
        let rec = sim.run_round(&mut FirstK);
        assert_eq!(rec.faults.deadline_s, Some(deadline));
        assert!((rec.round_seconds - deadline).abs() < 1e-9);
        // everyone who made the deadline was aggregated, the rest dropped
        assert_eq!(rec.participants.len() + rec.faults.dropped_by_deadline, 3);
        for &id in &rec.participants {
            assert!(sim.expected_latency(id) <= deadline);
        }
    }

    #[test]
    fn replace_drafts_live_substitutes_for_crashes() {
        use haccs_sysmodel::FaultSpec;
        let faults = FaultModel::none(5).with(FaultSpec::Crash { prob: 0.5 });
        let mut sim = build_sim(12, Availability::AlwaysOn)
            .with_faults(faults)
            .with_policy(RoundPolicy::deadline(AggregationPolicy::Replace, 1.0));
        let mut saw_replacement = false;
        for _ in 0..6 {
            let epoch = sim.epoch();
            let rec = sim.run_round(&mut FirstK);
            for &r in &rec.faults.replacements {
                saw_replacement = true;
                assert!(!faults.crashes(r, epoch), "drafted a crashed client {r}");
                assert!(rec.participants.contains(&r), "replacement {r} must be aggregated");
            }
            // a round with crashes under Replace lasts deadline + catch-up
            if rec.faults.crashed > 0 && !rec.faults.replacements.is_empty() {
                assert!(rec.round_seconds > rec.faults.deadline_s.unwrap());
            }
        }
        assert!(saw_replacement, "at 50% crash some round must draft a replacement");
    }

    #[test]
    fn snapshot_resume_is_bit_identical() {
        let full = build_sim(6, Availability::AlwaysOn).run(&mut FirstK, 8);

        let mut sim = build_sim(6, Availability::AlwaysOn);
        let mut sel = FirstK;
        for _ in 0..3 {
            sim.run_round(&mut sel);
        }
        let bytes = sim.snapshot(&sel);
        drop(sim); // "crash"

        let mut resumed = build_sim(6, Availability::AlwaysOn);
        let mut sel2 = FirstK;
        resumed.restore(&bytes, &mut sel2).unwrap();
        assert_eq!(resumed.epoch(), 3);
        let rest = resumed.run(&mut sel2, 5);
        assert_eq!(rest.rounds, full.rounds, "resumed history must match uninterrupted run");
        assert_eq!(rest.curve, full.curve);
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let mut sim = build_sim(6, Availability::AlwaysOn);
        let mut sel = FirstK;
        sim.run_round(&mut sel);
        let bytes = sim.snapshot(&sel);
        let mut other = build_sim(5, Availability::AlwaysOn); // wrong client count
        assert!(matches!(other.restore(&bytes, &mut FirstK), Err(PersistError::Malformed(_))));
    }

    #[test]
    fn periodic_snapshots_land_on_schedule() {
        let dir = std::env::temp_dir().join(format!("haccs-snap-policy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = SnapshotPolicy::every(2, &dir);
        let mut sim = build_sim(6, Availability::AlwaysOn).with_snapshots(policy.clone());
        let mut sel = FirstK;
        for _ in 0..5 {
            sim.run_round(&mut sel);
        }
        assert!(policy.path_for(2).exists());
        assert!(policy.path_for(4).exists());
        assert!(!policy.path_for(5).exists());

        // the on-disk snapshot resumes to the same history
        let bytes = haccs_persist::read_snapshot(&policy.path_for(4)).unwrap();
        let mut resumed = build_sim(6, Availability::AlwaysOn);
        let mut sel2 = FirstK;
        resumed.restore(&bytes, &mut sel2).unwrap();
        let full = build_sim(6, Availability::AlwaysOn).run(&mut FirstK, 5);
        assert_eq!(resumed.run(&mut sel2, 1).rounds, full.rounds);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identity_codec_is_bit_identical_to_no_codec() {
        let plain = build_sim(6, Availability::AlwaysOn).run(&mut FirstK, 6);
        let coded = build_sim(6, Availability::AlwaysOn)
            .with_codec(CodecKind::Identity)
            .run(&mut FirstK, 6);
        assert_eq!(plain, coded, "Identity must not perturb the run");
    }

    #[test]
    fn int8_codec_shrinks_bytes_and_still_learns() {
        let mut sim = build_sim(6, Availability::AlwaysOn).with_codec(CodecKind::Int8);
        let before = sim.evaluate_global();
        let res = sim.run(&mut FirstK, 15);
        let after = res.curve.last().unwrap();
        assert!(
            after.accuracy > before.accuracy + 0.1,
            "int8 must still learn: {} -> {}",
            before.accuracy,
            after.accuracy
        );
        let raw = res.total_payload_bytes_raw();
        let enc = res.total_payload_bytes_encoded();
        assert!(raw > 0 && enc > 0);
        assert!(raw as f64 / enc as f64 >= 3.0, "int8 must be >=3x smaller: {raw} vs {enc}");
        // the cheaper uplink makes the simulated round strictly faster
        let plain = build_sim(6, Availability::AlwaysOn).run(&mut FirstK, 1);
        assert!(res.rounds[0].round_seconds < plain.rounds[0].round_seconds);
    }

    #[test]
    fn topk_error_feedback_resumes_bit_identically() {
        let kind = CodecKind::TopK { keep_permille: 100 };
        let full = build_sim(6, Availability::AlwaysOn).with_codec(kind).run(&mut FirstK, 8);

        let mut sim = build_sim(6, Availability::AlwaysOn).with_codec(kind);
        let mut sel = FirstK;
        for _ in 0..3 {
            sim.run_round(&mut sel);
        }
        let bytes = sim.snapshot(&sel);
        drop(sim); // "crash"

        let mut resumed = build_sim(6, Availability::AlwaysOn).with_codec(kind);
        let mut sel2 = FirstK;
        resumed.restore(&bytes, &mut sel2).unwrap();
        let rest = resumed.run(&mut sel2, 5);
        assert_eq!(rest.rounds, full.rounds, "residuals must ride the snapshot");
        assert_eq!(rest.curve, full.curve);
    }

    #[test]
    fn restore_rejects_codec_mismatch() {
        let mut sim = build_sim(6, Availability::AlwaysOn).with_codec(CodecKind::Int8);
        let mut sel = FirstK;
        sim.run_round(&mut sel);
        let bytes = sim.snapshot(&sel);
        let mut plain = build_sim(6, Availability::AlwaysOn);
        assert!(matches!(plain.restore(&bytes, &mut FirstK), Err(PersistError::Malformed(_))));
    }

    #[test]
    fn lossy_runs_charge_codec_bytes_for_lost_updates() {
        use haccs_sysmodel::FaultSpec;
        let build = || {
            build_sim(6, Availability::AlwaysOn)
                .with_faults(FaultModel::none(5).with(FaultSpec::Lossy { prob: 0.5 }))
                .with_codec(CodecKind::TopK { keep_permille: 100 })
        };
        let r1 = build().run(&mut FirstK, 6);
        let r2 = build().run(&mut FirstK, 6);
        assert_eq!(r1, r2, "coded lossy runs must be seed-deterministic");
        let n_params = build_sim(6, Availability::AlwaysOn).global_params().len();
        for rec in &r1.rounds {
            // every trained transmission is charged, delivered or lost
            let sent = rec.participants.len() + rec.faults.lossy_failures;
            assert_eq!(rec.faults.payload_bytes_raw, 4 * n_params * sent);
            assert!(rec.faults.payload_bytes_encoded < rec.faults.payload_bytes_raw / 3);
        }
    }

    #[test]
    fn lossy_wire_is_accounted_and_deterministic() {
        use haccs_sysmodel::FaultSpec;
        let build = || {
            build_sim(6, Availability::AlwaysOn)
                .with_faults(FaultModel::none(5).with(FaultSpec::Lossy { prob: 0.5 }))
        };
        let r1 = build().run(&mut FirstK, 6);
        let r2 = build().run(&mut FirstK, 6);
        assert_eq!(r1, r2, "lossy runs must be seed-deterministic");
        assert!(
            r1.total_retries() > 0 || r1.rounds.iter().any(|r| r.faults.lossy_failures > 0),
            "at 50% per-attempt loss the wire must visibly act up"
        );
    }
}
