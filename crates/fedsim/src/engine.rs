//! [`FedSim`]: the synchronous federated-averaging round loop.

use crate::client::{ClientInfo, ClientState};
use crate::metrics::{RoundRecord, RunResult, TimePoint};
use crate::selector::{sanitize_selection, SelectionContext, Selector};
use crate::trainer::{probe_loss, train_local, TrainConfig};
use haccs_data::{FederatedDataset, ImageSet};
use haccs_nn::{evaluate, Sequential};
use haccs_sysmodel::{Availability, DeviceProfile, LatencyModel, SimClock};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Builds a fresh (randomly initialized) model instance. Each parallel
/// local trainer constructs its own instance and overwrites the parameters
/// with the current global model.
pub type ModelFactory = Box<dyn Fn() -> Sequential + Send + Sync>;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Clients selected per round (`k`). The paper uses 10 of 50 (20%).
    pub k: usize,
    /// Local-training hyperparameters.
    pub train: TrainConfig,
    /// Evaluate the global model every `eval_every` rounds.
    pub eval_every: usize,
    /// Mini-batch used during evaluation.
    pub eval_batch: usize,
    /// Cap on global-test examples per evaluation (sampled once, seeded).
    pub eval_max: usize,
    /// Examples per client for the initial loss probe.
    pub probe_max: usize,
    /// Master seed: local shuffles, probes and evaluation sampling derive
    /// from it, so a run is fully reproducible.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            k: 10,
            train: TrainConfig::default(),
            eval_every: 1,
            eval_batch: 64,
            eval_max: 2048,
            probe_max: 64,
            seed: 0,
        }
    }
}

/// The federated simulation: global model, clients, clock and history.
pub struct FedSim {
    factory: ModelFactory,
    global_params: Vec<f32>,
    /// All devices in the federation.
    pub clients: Vec<ClientState>,
    /// Latency model used for both scheduling estimates and clock advances.
    pub latency: LatencyModel,
    /// Dropout model.
    pub availability: Availability,
    cfg: SimConfig,
    clock: SimClock,
    eval_model: Sequential,
    eval_set: ImageSet,
    rng: StdRng,
    epoch: usize,
    result: RunResult,
}

impl FedSim {
    /// Assembles a simulation from a materialized dataset and per-client
    /// profiles. Probes every client's initial loss with the fresh global
    /// model so selectors have a loss signal from round 0.
    pub fn new(
        factory: ModelFactory,
        fed: FederatedDataset,
        profiles: Vec<DeviceProfile>,
        latency: LatencyModel,
        availability: Availability,
        cfg: SimConfig,
    ) -> Self {
        assert_eq!(fed.clients.len(), profiles.len(), "one profile per client");
        assert!(cfg.k >= 1, "k must be at least 1");
        assert!(cfg.eval_every >= 1);
        let global_model = factory();
        let global_params = global_model.get_params();

        // down-sample the pooled test set once (seeded, unbiased)
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE7A1_77F0);
        let eval_set = if fed.global_test.len() > cfg.eval_max {
            let mut idx: Vec<usize> = (0..fed.global_test.len()).collect();
            idx.shuffle(&mut rng);
            idx.truncate(cfg.eval_max);
            let mut s = ImageSet::empty(
                fed.global_test.channels(),
                fed.global_test.side(),
                fed.global_test.classes(),
            );
            for i in idx {
                s.push(fed.global_test.image(i), fed.global_test.labels()[i]);
            }
            s
        } else {
            fed.global_test.clone()
        };

        let mut clients: Vec<ClientState> = fed
            .clients
            .into_iter()
            .zip(profiles)
            .enumerate()
            .map(|(id, (data, profile))| ClientState::new(id, data, profile))
            .collect();

        // initial loss probe, in parallel (each worker builds its own model)
        let cfg_train = cfg.train;
        let probe_max = cfg.probe_max;
        let gp = &global_params;
        let f = &factory;
        let losses: Vec<f32> = clients
            .par_iter()
            .map(|c| {
                let mut m = f();
                m.set_params(gp);
                probe_loss(&mut m, &c.data.train, &cfg_train, probe_max)
            })
            .collect();
        for (c, l) in clients.iter_mut().zip(losses) {
            c.last_loss = Some(l);
        }

        FedSim {
            factory,
            global_params,
            clients,
            latency,
            availability,
            cfg,
            clock: SimClock::new(),
            eval_model: global_model,
            eval_set,
            rng: StdRng::seed_from_u64(cfg.seed),
            epoch: 0,
            result: RunResult::default(),
        }
    }

    /// Current epoch (rounds completed).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// The current global parameter vector.
    pub fn global_params(&self) -> &[f32] {
        &self.global_params
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Expected §IV-D round latency of client `id`, accounting for the
    /// per-round local-work cap.
    pub fn expected_latency(&self, id: usize) -> f64 {
        let c = &self.clients[id];
        let effective = self.cfg.train.effective_examples(c.data.n_train());
        self.latency.round_seconds(&c.profile, effective)
    }

    /// Scheduling view ([`ClientInfo`]) of the given client ids.
    pub fn client_infos(&self, ids: &[usize]) -> Vec<ClientInfo> {
        ids.iter()
            .map(|&id| {
                let c = &self.clients[id];
                ClientInfo {
                    id,
                    est_latency: self.expected_latency(id),
                    last_loss: c.last_loss.unwrap_or(f32::MAX),
                    n_train: c.data.n_train(),
                    participation_count: c.participation_count,
                }
            })
            .collect()
    }

    /// Runs one synchronous round with `selector`. Returns the round record.
    pub fn run_round(&mut self, selector: &mut dyn Selector) -> RoundRecord {
        let n = self.clients.len();
        let available_ids = self.availability.available_clients(n, self.epoch);
        let infos = self.client_infos(&available_ids);
        let ctx = SelectionContext { epoch: self.epoch, available: &infos, k: self.cfg.k };
        let raw = selector.select(&ctx, &mut self.rng);
        let selected = sanitize_selection(raw, &ctx);

        let record = if selected.is_empty() {
            // nothing trainable this epoch: idle-tick the clock so callers
            // looping on time still terminate
            self.clock.advance(1.0);
            RoundRecord {
                epoch: self.epoch,
                time_s: self.clock.now(),
                round_seconds: 1.0,
                participants: Vec::new(),
                mean_local_loss: f32::NAN,
            }
        } else {
            // parallel local training (real SGD; simulated time)
            let cfg_train = self.cfg.train;
            let seed = self.cfg.seed;
            let epoch = self.epoch;
            let gp = &self.global_params;
            let f = &self.factory;
            let clients = &self.clients;
            let updates: Vec<(usize, Vec<f32>, f32)> = selected
                .par_iter()
                .map(|&id| {
                    let mut m = f();
                    m.set_params(gp);
                    let local_seed = seed
                        ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9)
                        ^ (id as u64 + 1).wrapping_mul(0x85EB_CA6B);
                    let loss = train_local(&mut m, &clients[id].data.train, &cfg_train, local_seed);
                    (id, m.get_params(), loss)
                })
                .collect();

            // FedAvg: weight by local sample count
            let total_weight: f64 =
                updates.iter().map(|(id, _, _)| self.clients[*id].data.n_train() as f64).sum();
            let mut new_params = vec![0.0f64; self.global_params.len()];
            for (id, params, _) in &updates {
                let w = self.clients[*id].data.n_train() as f64 / total_weight;
                for (acc, &p) in new_params.iter_mut().zip(params) {
                    *acc += w * p as f64;
                }
            }
            self.global_params = new_params.into_iter().map(|x| x as f32).collect();

            // bookkeeping + clock: the round takes as long as its slowest
            // participant (synchronous FedAvg)
            let mut round_seconds = 0.0f64;
            let mut loss_sum = 0.0f32;
            for (id, _, loss) in &updates {
                round_seconds = round_seconds.max(self.expected_latency(*id));
                let c = &mut self.clients[*id];
                c.last_loss = Some(*loss);
                c.participation_count += 1;
                loss_sum += loss;
            }
            self.clock.advance(round_seconds);

            let losses: Vec<f32> = updates.iter().map(|(_, _, l)| *l).collect();
            let ids: Vec<usize> = updates.iter().map(|(id, _, _)| *id).collect();
            selector.observe_round(self.epoch, &ids, &losses);

            RoundRecord {
                epoch: self.epoch,
                time_s: self.clock.now(),
                round_seconds,
                participants: ids,
                mean_local_loss: loss_sum / updates.len() as f32,
            }
        };

        self.result.rounds.push(record.clone());
        self.epoch += 1;

        if self.epoch.is_multiple_of(self.cfg.eval_every) {
            let tp = self.evaluate_global();
            self.result.curve.push(tp);
        }
        record
    }

    /// Evaluates the current global model on the (sampled) pooled test set.
    pub fn evaluate_global(&mut self) -> TimePoint {
        self.eval_model.set_params(&self.global_params);
        let (x, y) = if self.cfg.train.wants_images {
            (self.eval_set.tensor_nchw(), self.eval_set.labels().to_vec())
        } else {
            (self.eval_set.tensor_flat(), self.eval_set.labels().to_vec())
        };
        let r = evaluate(&mut self.eval_model, &x, &y, self.cfg.eval_batch);
        TimePoint {
            time_s: self.clock.now(),
            epoch: self.epoch,
            accuracy: r.accuracy,
            loss: r.loss,
        }
    }

    /// Computes a per-client **gradient sketch**: the flat gradient of the
    /// loss at the *current global model* over (up to `max_examples` of)
    /// each client's training data. This is the alternative summary §IV-A
    /// discusses — "devices may have gradients that point in similar
    /// directions" — which must be recomputed every epoch because it
    /// changes with the model. In a deployment each client would compute
    /// and upload this (Θ(|w|) per client per epoch!); here the simulator
    /// evaluates it directly.
    pub fn gradient_sketches(&self, max_examples: usize) -> Vec<Vec<f32>> {
        let gp = &self.global_params;
        let f = &self.factory;
        let cfg = self.cfg;
        self.clients
            .par_iter()
            .map(|c| {
                let mut m = f();
                m.set_params(gp);
                let n = c.data.train.len().min(max_examples.max(1));
                let idx: Vec<usize> = (0..n).collect();
                let (x, y) = if cfg.train.wants_images {
                    c.data.train.batch_nchw(&idx)
                } else {
                    c.data.train.batch_flat(&idx)
                };
                let logits = m.forward(x);
                let (_, d) = haccs_nn::softmax_cross_entropy(&logits, &y);
                m.zero_grad();
                m.backward(d);
                m.get_grads()
            })
            .collect()
    }

    /// Evaluates the global model on every client's *local test* shard —
    /// the per-group accuracy readout of Fig. 1 and the per-device readout
    /// of Fig. 11. Clients with empty test shards get accuracy `NaN`.
    pub fn evaluate_per_client(&self) -> Vec<f32> {
        let gp = &self.global_params;
        let f = &self.factory;
        let cfg = self.cfg;
        self.clients
            .par_iter()
            .map(|c| {
                if c.data.test.is_empty() {
                    return f32::NAN;
                }
                let mut m = f();
                m.set_params(gp);
                let (x, y) = if cfg.train.wants_images {
                    (c.data.test.tensor_nchw(), c.data.test.labels().to_vec())
                } else {
                    (c.data.test.tensor_flat(), c.data.test.labels().to_vec())
                };
                evaluate(&mut m, &x, &y, cfg.eval_batch).accuracy
            })
            .collect()
    }

    /// Adds a client mid-training (§IV-C: devices may join while training
    /// is in progress). The new client's loss is probed against the current
    /// global model so selectors see a meaningful signal immediately.
    /// Returns the new client's id. Callers using HACCS should re-cluster
    /// (`HaccsSelector::recluster`) with the newcomer's summary included.
    pub fn add_client(&mut self, data: haccs_data::ClientData, profile: DeviceProfile) -> usize {
        let id = self.clients.len();
        let mut c = ClientState::new(id, data, profile);
        let mut m = (self.factory)();
        m.set_params(&self.global_params);
        c.last_loss = Some(probe_loss(&mut m, &c.data.train, &self.cfg.train, self.cfg.probe_max));
        self.clients.push(c);
        id
    }

    /// Replaces a client's local data mid-training (§IV-C: "the data
    /// distribution at a given client device could change over time").
    /// The client's loss is re-probed against the current global model.
    /// Callers should have the client send a fresh summary and re-cluster.
    pub fn replace_client_data(&mut self, id: usize, data: haccs_data::ClientData) {
        let mut m = (self.factory)();
        m.set_params(&self.global_params);
        let loss = probe_loss(&mut m, &data.train, &self.cfg.train, self.cfg.probe_max);
        let c = &mut self.clients[id];
        c.data = data;
        c.last_loss = Some(loss);
    }

    /// Runs `rounds` rounds and returns the accumulated result.
    pub fn run(&mut self, selector: &mut dyn Selector, rounds: usize) -> RunResult {
        for _ in 0..rounds {
            self.run_round(selector);
        }
        let mut out = self.result.clone();
        out.strategy = selector.name();
        out
    }

    /// Runs until `target` accuracy is reached (checked at each evaluation)
    /// or `max_rounds` elapse, whichever comes first.
    pub fn run_until(
        &mut self,
        selector: &mut dyn Selector,
        target: f32,
        max_rounds: usize,
    ) -> RunResult {
        for _ in 0..max_rounds {
            self.run_round(selector);
            if let Some(tp) = self.result.curve.last() {
                if tp.accuracy >= target {
                    break;
                }
            }
        }
        let mut out = self.result.clone();
        out.strategy = selector.name();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_data::{partition, SynthVision};
    use haccs_nn::mlp;

    /// Trivial selector: first k available.
    struct FirstK;
    impl Selector for FirstK {
        fn name(&self) -> String {
            "first-k".into()
        }
        fn select(&mut self, ctx: &SelectionContext<'_>, _rng: &mut StdRng) -> Vec<usize> {
            ctx.available.iter().take(ctx.k).map(|c| c.id).collect()
        }
    }

    fn build_sim(n_clients: usize, availability: Availability) -> FedSim {
        let gen = SynthVision::mnist_like(4, 8, 0);
        let specs = partition::iid(n_clients, 4, 60, 16);
        let fed = FederatedDataset::materialize(&gen, &specs, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let profiles = DeviceProfile::sample_many(n_clients, &mut rng);
        let factory: ModelFactory = Box::new(|| mlp(64, &[32], 4, &mut StdRng::seed_from_u64(7)));
        FedSim::new(
            factory,
            fed,
            profiles,
            LatencyModel::default(),
            availability,
            SimConfig { k: 3, seed: 5, ..Default::default() },
        )
    }

    #[test]
    fn initial_probe_fills_losses() {
        let sim = build_sim(6, Availability::AlwaysOn);
        for c in &sim.clients {
            let l = c.last_loss.expect("probed");
            assert!(l.is_finite() && l > 0.0);
        }
    }

    #[test]
    fn round_advances_clock_by_slowest() {
        let mut sim = build_sim(6, Availability::AlwaysOn);
        let rec = sim.run_round(&mut FirstK);
        assert_eq!(rec.participants.len(), 3);
        let slowest =
            rec.participants.iter().map(|&id| sim.expected_latency(id)).fold(0.0f64, f64::max);
        assert!((rec.round_seconds - slowest).abs() < 1e-9);
        assert!((sim.now() - rec.round_seconds).abs() < 1e-9);
    }

    #[test]
    fn training_improves_accuracy() {
        let mut sim = build_sim(6, Availability::AlwaysOn);
        let before = sim.evaluate_global();
        let result = sim.run(&mut FirstK, 15);
        let after = result.curve.last().unwrap();
        assert!(
            after.accuracy > before.accuracy + 0.1,
            "accuracy {} -> {}",
            before.accuracy,
            after.accuracy
        );
        assert!(after.loss < before.loss);
    }

    #[test]
    fn clock_is_monotone() {
        let mut sim = build_sim(6, Availability::AlwaysOn);
        let res = sim.run(&mut FirstK, 5);
        for w in res.rounds.windows(2) {
            assert!(w[1].time_s >= w[0].time_s);
        }
    }

    #[test]
    fn dropout_shrinks_available_pool() {
        let mut sim = build_sim(6, Availability::permanent([0, 1, 2, 3, 4]));
        let rec = sim.run_round(&mut FirstK);
        assert_eq!(rec.participants, vec![5]);
    }

    #[test]
    fn all_dropped_idles() {
        let mut sim = build_sim(3, Availability::permanent([0, 1, 2]));
        let rec = sim.run_round(&mut FirstK);
        assert!(rec.participants.is_empty());
        assert_eq!(rec.round_seconds, 1.0);
    }

    #[test]
    fn runs_are_reproducible() {
        let r1 = build_sim(6, Availability::AlwaysOn).run(&mut FirstK, 5);
        let r2 = build_sim(6, Availability::AlwaysOn).run(&mut FirstK, 5);
        assert_eq!(r1.rounds, r2.rounds);
        for (a, b) in r1.curve.iter().zip(&r2.curve) {
            assert_eq!(a.accuracy, b.accuracy);
        }
    }

    #[test]
    fn fedavg_of_identical_updates_is_identity() {
        // single client selected → global params become that client's params
        let mut sim = build_sim(2, Availability::permanent([1]));
        let before = sim.global_params().to_vec();
        sim.run_round(&mut FirstK);
        let after = sim.global_params().to_vec();
        assert_ne!(before, after, "params should move");
    }

    #[test]
    fn per_client_eval_has_one_entry_each() {
        let sim = build_sim(5, Availability::AlwaysOn);
        let accs = sim.evaluate_per_client();
        assert_eq!(accs.len(), 5);
        assert!(accs.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn clients_can_join_mid_training() {
        let mut sim = build_sim(4, Availability::AlwaysOn);
        sim.run(&mut FirstK, 2);
        // a new device joins with fresh data
        let gen = SynthVision::mnist_like(4, 8, 0);
        let specs = partition::iid(1, 4, 30, 8);
        let fed = FederatedDataset::materialize(&gen, &specs, 99);
        let id = sim.add_client(fed.clients[0].clone(), DeviceProfile::uniform_fast());
        assert_eq!(id, 4);
        assert_eq!(sim.clients.len(), 5);
        // probed against the *current* global model
        assert!(sim.clients[4].last_loss.unwrap().is_finite());
        // it is schedulable in the next round
        let infos = sim.client_infos(&[4]);
        assert_eq!(infos[0].id, 4);
        assert!(infos[0].est_latency > 0.0);
        sim.run_round(&mut FirstK); // engine still runs fine with 5 clients
    }

    #[test]
    fn client_data_can_be_replaced_mid_training() {
        let mut sim = build_sim(4, Availability::AlwaysOn);
        sim.run(&mut FirstK, 2);
        let old_loss = sim.clients[0].last_loss.unwrap();
        // replace client 0's shard with much bigger, differently-seeded data
        let gen = SynthVision::mnist_like(4, 8, 0);
        let specs = partition::iid(1, 4, 90, 5);
        let fed = FederatedDataset::materialize(&gen, &specs, 1234);
        sim.replace_client_data(0, fed.clients[0].clone());
        assert_eq!(sim.clients[0].data.n_train(), 90);
        let new_loss = sim.clients[0].last_loss.unwrap();
        assert!(new_loss.is_finite());
        assert_ne!(new_loss, old_loss, "loss must be re-probed on fresh data");
        sim.run_round(&mut FirstK);
    }

    #[test]
    fn participation_counts_recorded() {
        let mut sim = build_sim(6, Availability::AlwaysOn);
        let res = sim.run(&mut FirstK, 4);
        let counts = res.participation_counts(6);
        assert_eq!(counts[0], 4); // FirstK always picks client 0
        assert_eq!(counts[5], 0);
        assert_eq!(sim.clients[0].participation_count, 4);
    }
}
