//! The client-selection strategy interface.

use crate::client::ClientInfo;
use haccs_persist::{PersistError, SnapshotReader, SnapshotWriter};
use rand::rngs::StdRng;

/// Everything a selector sees when choosing participants for one epoch.
#[derive(Debug)]
pub struct SelectionContext<'a> {
    /// Current epoch (round) number, starting at 0.
    pub epoch: usize,
    /// Scheduling view of *available* clients this epoch (dropout applied).
    pub available: &'a [ClientInfo],
    /// Number of clients to select.
    pub k: usize,
}

/// A client-selection strategy. Implemented by Random/TiFL/Oort
/// (haccs-baselines) and HACCS itself (haccs-core).
pub trait Selector: Send {
    /// Strategy name for reports.
    fn name(&self) -> String;

    /// Picks up to `ctx.k` *distinct* client ids from `ctx.available`.
    /// Returning fewer than `k` is allowed (e.g. fewer clients available).
    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Vec<usize>;

    /// Feedback after the round: the ids that participated and their fresh
    /// local losses. Default: ignore.
    fn observe_round(&mut self, _epoch: usize, _participants: &[usize], _losses: &[f32]) {}

    /// Feedback after the round: ids that were selected but whose update
    /// was never aggregated (crashed, missed the deadline, or lost on the
    /// wire). Fault-aware selectors use this to steer away from unreliable
    /// devices; the default ignores it.
    fn observe_faults(&mut self, _epoch: usize, _failed: &[usize]) {}

    /// Whether this selector wants per-client model-update deltas via
    /// [`Selector::observe_update`]. Engines skip the (allocating) delta
    /// computation entirely when this is `false` — the default — so
    /// existing strategies stay bit-identical and pay nothing.
    fn wants_updates(&self) -> bool {
        false
    }

    /// Feedback during aggregation: the weight delta (`trained − global`,
    /// both pre-aggregation) of one admitted client update. Called once per
    /// admitted update, before FedAvg, only when
    /// [`Selector::wants_updates`] returns `true`. FedClust-style
    /// selectors cluster on these deltas; the default ignores them.
    fn observe_update(&mut self, _epoch: usize, _id: usize, _delta: &[f32]) {}

    /// Appends this selector's mutable state to a snapshot
    /// ([`crate::FedSim::snapshot`] / `Coordinator::snapshot`). Stateless
    /// selectors (the default) write nothing; stateful ones must write
    /// everything [`Selector::load_state`] needs to resume selection
    /// bit-identically.
    fn save_state(&self, _w: &mut SnapshotWriter) {}

    /// Restores the state written by [`Selector::save_state`], reading
    /// exactly the bytes it wrote. Called on a freshly constructed
    /// selector of the same strategy during snapshot restore.
    fn load_state(&mut self, _r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        Ok(())
    }
}

/// Boxed selectors forward every method, so a heterogeneous strategy
/// matrix (`Vec<Box<dyn Selector>>`) plugs into engines that are generic
/// over `S: Selector` — the coordinator runtime in particular.
impl Selector for Box<dyn Selector> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Vec<usize> {
        (**self).select(ctx, rng)
    }

    fn observe_round(&mut self, epoch: usize, participants: &[usize], losses: &[f32]) {
        (**self).observe_round(epoch, participants, losses)
    }

    fn observe_faults(&mut self, epoch: usize, failed: &[usize]) {
        (**self).observe_faults(epoch, failed)
    }

    fn wants_updates(&self) -> bool {
        (**self).wants_updates()
    }

    fn observe_update(&mut self, epoch: usize, id: usize, delta: &[f32]) {
        (**self).observe_update(epoch, id, delta)
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        (**self).save_state(w)
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        (**self).load_state(r)
    }
}

/// Validates and normalizes a selector's output: drops ids not available,
/// deduplicates preserving order, truncates to `k`.
pub fn sanitize_selection(selection: Vec<usize>, ctx: &SelectionContext<'_>) -> Vec<usize> {
    let mut seen = std::collections::HashSet::new();
    let available: std::collections::HashSet<usize> = ctx.available.iter().map(|c| c.id).collect();
    selection
        .into_iter()
        .filter(|id| available.contains(id) && seen.insert(*id))
        .take(ctx.k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(id: usize) -> ClientInfo {
        ClientInfo { id, est_latency: 1.0, last_loss: 1.0, n_train: 10, participation_count: 0 }
    }

    #[test]
    fn sanitize_dedupes_and_filters() {
        let avail = [info(1), info(2), info(3)];
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 2 };
        let out = sanitize_selection(vec![2, 9, 2, 1, 3], &ctx);
        assert_eq!(out, vec![2, 1]);
    }

    #[test]
    fn sanitize_allows_short_output() {
        let avail = [info(1)];
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 5 };
        assert_eq!(sanitize_selection(vec![1], &ctx), vec![1]);
    }
}
