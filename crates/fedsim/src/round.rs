//! Shared round accounting: the arithmetic of one synchronous round,
//! factored out of [`crate::engine::FedSim`] so the in-process loop engine
//! and the message-driven coordinator (`haccs-coord`) run **the same
//! numbers** — seeds, stream ids, deadline placement, admission checks,
//! FedAvg summation order and round-duration formulas all live here once.
//! The coordinator-vs-engine parity test is only possible because neither
//! driver owns a private copy of this logic.
//!
//! Everything here is pure: no clock, no channels, no threads. The
//! drivers decide *when* things happen; this module decides *what they
//! cost and what they produce*.

use crate::engine::{AggregationPolicy, RoundPolicy};
use crate::metrics::FaultStats;
use crate::trainer::TrainConfig;
use haccs_codec::CodecKind;
use haccs_sysmodel::{DeviceProfile, FaultModel, LatencyModel};
use haccs_wire::{
    control_bytes_per_client, ChannelError, FaultyChannel, Message, Transport, TransportError,
};

/// Salt separating heartbeat-ack wire streams from model-update streams
/// for the same `(epoch, client)`.
pub const HB_STREAM_SALT: u64 = 0x48EA_87BE_A700_0001;

/// The local-training seed for `(seed, epoch, id)`: the same id trains
/// identically whether the loop engine calls `train_local` in-process or
/// a `ClientAgent` thread does it after a `ModelPush`.
pub fn local_train_seed(seed: u64, epoch: usize, id: usize) -> u64 {
    seed ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9) ^ (id as u64 + 1).wrapping_mul(0x85EB_CA6B)
}

/// The wire stream id for `(epoch, id)`'s `ModelUpdate` transmission.
pub fn update_stream_id(epoch: usize, id: usize) -> u64 {
    (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (id as u64 + 1).wrapping_mul(0x85EB_CA6B_C2B2_AE63)
}

/// The wire stream id for `(epoch, id)`'s heartbeat ack.
pub fn hb_stream_id(epoch: usize, id: usize) -> u64 {
    update_stream_id(epoch, id) ^ HB_STREAM_SALT
}

/// The lossy channel a round's client → server traffic goes through,
/// derived from the fault schedule's seed and the policy's retry knobs.
pub fn wire_channel(faults: &FaultModel, policy: &RoundPolicy) -> FaultyChannel {
    FaultyChannel::lossy(
        faults.lossy_prob,
        faults.seed ^ 0x1055_11A7_0000_0003,
        policy.max_retries,
        policy.backoff_base_s,
    )
}

/// Expected §IV-D round latency of one client, *including* its share of
/// coordinator control traffic (`Schedule` + heartbeat probe/ack) charged
/// at the client's link speed — simulated comm time covers protocol
/// overhead, not just the model push/pull.
pub fn expected_round_latency(
    latency: &LatencyModel,
    profile: &DeviceProfile,
    train: &TrainConfig,
    n_train: usize,
) -> f64 {
    let effective = train.effective_examples(n_train);
    latency.round_seconds(profile, effective)
        + latency.bytes_seconds(profile, control_bytes_per_client())
}

/// [`expected_round_latency`] with a compressed uplink of `up_bits`
/// model bits. The addition order `(compute + transfer) + control` is
/// preserved, so with `up_bits == latency.model_bits` this is
/// bit-identical to the symmetric formula — the `Identity` codec's
/// latency trace never deviates from the uncompressed one.
pub fn expected_round_latency_coded(
    latency: &LatencyModel,
    profile: &DeviceProfile,
    train: &TrainConfig,
    n_train: usize,
    up_bits: f64,
) -> f64 {
    let effective = train.effective_examples(n_train);
    latency.round_seconds_split(profile, effective, up_bits)
        + latency.bytes_seconds(profile, control_bytes_per_client())
}

/// Uplink bits the latency model charges for one trained update under
/// `codec`. `Identity` (and no codec at all) charges the model's own
/// `model_bits` — *not* `8 × encoded_len` — because `LatencyModel` may
/// be calibrated to a different nominal size than the concrete
/// parameter vector (the default is sized for a 62k-param LeNet while
/// the demo model has 2212 params); anything else would silently move
/// every pre-codec latency trace. Compressing codecs charge the exact
/// encoded payload size, a pure function of `n_params`, so both ends
/// of a lossy link price even a *lost* update identically.
pub fn uplink_bits(latency: &LatencyModel, codec: Option<CodecKind>, n_params: usize) -> f64 {
    match codec {
        None | Some(CodecKind::Identity) => latency.model_bits,
        Some(kind) => 8.0 * kind.encoded_len(n_params) as f64,
    }
}

/// Model-update payload bytes one trained transmission puts on the
/// uplink under `codec` — the raw `f32` vector for `Identity`/no codec
/// (that is what the plain `ModelUpdate` frame carries), the exact
/// encoded payload otherwise. Pure in `n_params`, so drivers charge a
/// *lost* update exactly like a delivered one.
pub fn payload_encoded_bytes(codec: Option<CodecKind>, n_params: usize) -> usize {
    match codec {
        None | Some(CodecKind::Identity) => 4 * n_params,
        Some(kind) => kind.encoded_len(n_params),
    }
}

/// Deadline placement: the `q`-quantile (nearest-rank) of the expected
/// latencies over the available pool. An empty pool gets the idle-tick
/// duration of 1 second.
pub fn deadline_quantile(mut lats: Vec<f64>, q: f64) -> f64 {
    if lats.is_empty() {
        return 1.0;
    }
    lats.sort_by(f64::total_cmp);
    let qi = ((lats.len() as f64 - 1.0) * q).round() as usize;
    lats[qi]
}

/// How long the round lasted under `aggregation`.
///
/// * `WaitForAll` — the slowest selected client: every fault draw's
///   effective latency (casualties charge their timeout) and every
///   arrival (which includes wire backoff).
/// * `DeadlineDrop` — exactly the deadline.
/// * `Replace` — the deadline plus the slowest replacement arrival.
pub fn round_duration(
    aggregation: AggregationPolicy,
    deadline: Option<f64>,
    arrivals: &[f64],
    draw_latencies: &[f64],
    replacement_arrivals: &[f64],
) -> f64 {
    match aggregation {
        AggregationPolicy::WaitForAll => {
            let mut t = arrivals.iter().copied().fold(0.0f64, f64::max);
            for &lat in draw_latencies {
                t = t.max(lat);
            }
            t
        }
        AggregationPolicy::DeadlineDrop => deadline.expect("deadline policy requires a deadline"),
        AggregationPolicy::Replace => {
            deadline.expect("deadline policy requires a deadline")
                + replacement_arrivals.iter().copied().fold(0.0f64, f64::max)
        }
    }
}

/// One client's trained update, waiting for admission.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingUpdate {
    /// Client id.
    pub id: usize,
    /// Locally-trained parameters.
    pub params: Vec<f32>,
    /// Mean local training loss.
    pub loss: f32,
    /// Local sample count (the FedAvg weight).
    pub n_train: usize,
}

/// Accumulates one round's admissions and fault accounting in a fixed
/// order, so both drivers produce bit-identical [`FaultStats`], arrival
/// sets and FedAvg sums.
#[derive(Debug, Clone, Default)]
pub struct RoundAccumulator {
    /// Fault accounting so far.
    pub stats: FaultStats,
    /// Admitted updates, in admission order (selection order in both
    /// drivers — FedAvg float summation order depends on it).
    pub updates: Vec<PendingUpdate>,
    /// Arrival times of admitted non-replacement updates.
    pub arrivals: Vec<f64>,
    /// Arrival times of admitted replacement updates.
    pub replacement_arrivals: Vec<f64>,
}

impl RoundAccumulator {
    /// A fresh accumulator with the round deadline (if any) recorded.
    pub fn new(deadline: Option<f64>) -> Self {
        RoundAccumulator {
            stats: FaultStats { deadline_s: deadline, ..Default::default() },
            ..Default::default()
        }
    }

    /// A crashed selection: its timeout is wasted work.
    pub fn record_crash(&mut self, latency: f64) {
        self.stats.wasted_client_seconds += latency;
    }

    /// A selection whose compute alone overruns the deadline — discarded
    /// before training is even simulated.
    pub fn record_deadline_precut(&mut self, latency: f64) {
        self.stats.dropped_by_deadline += 1;
        self.stats.wasted_client_seconds += latency;
    }

    /// An update lost on the wire after exhausting its retry budget.
    pub fn record_wire_loss(&mut self, retries: usize, latency: f64, backoff_s: f64) {
        self.stats.retries += retries;
        self.stats.lossy_failures += 1;
        self.stats.wasted_client_seconds += latency + backoff_s;
    }

    /// A delivered update. Non-replacements are admitted only if their
    /// arrival (`latency + backoff_s`) makes the deadline; replacements
    /// skip the check (the server explicitly waits for them). Returns
    /// whether the update was admitted.
    pub fn record_delivery(
        &mut self,
        update: PendingUpdate,
        latency: f64,
        backoff_s: f64,
        retries: usize,
        replacement: bool,
    ) -> bool {
        self.stats.retries += retries;
        let t = latency + backoff_s;
        if replacement {
            self.stats.replacements.push(update.id);
            self.replacement_arrivals.push(t);
            self.updates.push(update);
            return true;
        }
        let deadline = self.stats.deadline_s;
        if deadline.is_some_and(|d| t > d) {
            self.stats.dropped_by_deadline += 1;
            self.stats.wasted_client_seconds += latency;
            false
        } else {
            self.arrivals.push(t);
            self.updates.push(update);
            true
        }
    }

    /// Ids of admitted updates, in admission order.
    pub fn participant_ids(&self) -> Vec<usize> {
        self.updates.iter().map(|u| u.id).collect()
    }

    /// FedAvg over the admitted updates, weighted by sample count, with
    /// `f64` accumulation in admission order. Leaves `global` untouched
    /// when nothing arrived.
    pub fn fedavg(&self, global: &mut Vec<f32>) {
        if self.updates.is_empty() {
            return;
        }
        let total_weight: f64 = self.updates.iter().map(|u| u.n_train as f64).sum();
        let mut new_params = vec![0.0f64; global.len()];
        for u in &self.updates {
            let w = u.n_train as f64 / total_weight;
            for (acc, &p) in new_params.iter_mut().zip(&u.params) {
                *acc += w * p as f64;
            }
        }
        *global = new_params.into_iter().map(|x| x as f32).collect();
    }

    /// Mean local loss across admitted updates (`NaN` when none arrived),
    /// summed in admission order.
    pub fn mean_local_loss(&self) -> f32 {
        if self.updates.is_empty() {
            return f32::NAN;
        }
        let sum: f32 = self.updates.iter().map(|u| u.loss).sum();
        sum / self.updates.len() as f32
    }
}

/// What one round's heartbeat sweep cost and revealed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeartbeatOutcome {
    /// Probed clients whose ack arrived.
    pub acked: usize,
    /// Probed clients that never acked: unavailable/departed ones plus
    /// acks lost on the wire.
    pub missed: usize,
    /// Wire retransmissions spent on acks.
    pub retries: usize,
    /// Bytes of probe + ack frames put on the wire (retransmissions
    /// included).
    pub bytes: usize,
}

/// Simulates one round's heartbeat sweep: the server probes `probed`
/// clients, each id in `responders` attempts an ack through the lossy
/// channel on its [`hb_stream_id`]. Wire outcomes are pure hashes of
/// `(seed, stream, attempt)` and the `Heartbeat` frame has a fixed size,
/// so this function and a real agent transmitting its ack produce
/// identical retry/byte traces — which is what keeps the loop engine and
/// the coordinator's heartbeat accounting in lockstep. Heartbeats ride
/// alongside the round off the critical path: they cost bytes, never
/// round time.
pub fn simulate_heartbeats(
    faults: &FaultModel,
    policy: &RoundPolicy,
    epoch: usize,
    probed: usize,
    responders: &[usize],
) -> HeartbeatOutcome {
    if faults.lossy_prob > 0.0 {
        let channel = wire_channel(faults, policy);
        simulate_heartbeats_with(&channel, epoch, probed, responders)
    } else {
        let hb_size =
            Message::Heartbeat { client_nonce: 0, round: epoch as u64, last_loss: 0.0 }.wire_size();
        HeartbeatOutcome {
            acked: responders.len(),
            missed: probed - responders.len(),
            retries: 0,
            bytes: (probed + responders.len()) * hb_size,
        }
    }
}

/// [`simulate_heartbeats`] with the wire abstracted behind a
/// [`Transport`]: every responder's ack rides `transport` on its
/// [`hb_stream_id`]. With the fault-schedule-derived [`FaultyChannel`]
/// this is exactly the lossy branch of [`simulate_heartbeats`]; a custom
/// transport (a mock, or a real socket) slots in with the same
/// accounting. Transport failures that carry no channel accounting
/// (frame/IO errors) count as a plain miss: the ack never arrived and no
/// simulated retries were spent.
pub fn simulate_heartbeats_with(
    transport: &dyn Transport,
    epoch: usize,
    probed: usize,
    responders: &[usize],
) -> HeartbeatOutcome {
    let hb = Message::Heartbeat { client_nonce: 0, round: epoch as u64, last_loss: 0.0 };
    let hb_size = hb.wire_size();
    let mut out = HeartbeatOutcome {
        bytes: probed * hb_size,
        missed: probed - responders.len(),
        ..Default::default()
    };
    for &id in responders {
        match transport.transmit(&hb, hb_stream_id(epoch, id)) {
            Ok(d) => {
                out.acked += 1;
                out.retries += d.retries as usize;
                out.bytes += d.bytes_sent;
            }
            Err(TransportError::Channel(ChannelError::RetryBudgetExhausted {
                attempts, ..
            })) => {
                out.missed += 1;
                out.retries += attempts as usize - 1;
                out.bytes += attempts as usize * hb_size;
            }
            Err(_) => out.missed += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(id: usize, loss: f32, n: usize) -> PendingUpdate {
        PendingUpdate { id, params: vec![id as f32; 3], loss, n_train: n }
    }

    #[test]
    fn seeds_and_streams_are_stable() {
        // pinned: the coordinator replays these exact values, so they must
        // never drift
        assert_eq!(local_train_seed(5, 0, 3), 5 ^ 0x9E37_79B9 ^ 4u64.wrapping_mul(0x85EB_CA6B));
        assert_ne!(update_stream_id(0, 1), update_stream_id(1, 0));
        assert_eq!(hb_stream_id(2, 7), update_stream_id(2, 7) ^ HB_STREAM_SALT);
    }

    #[test]
    fn coded_latency_matches_symmetric_for_identity() {
        let latency = LatencyModel::default();
        use rand::SeedableRng;
        let profile = DeviceProfile::sample_many(3, &mut rand::rngs::StdRng::seed_from_u64(2))[1];
        let train = TrainConfig::default();
        let plain = expected_round_latency(&latency, &profile, &train, 87);
        for codec in [None, Some(CodecKind::Identity)] {
            let bits = uplink_bits(&latency, codec, 2212);
            let coded = expected_round_latency_coded(&latency, &profile, &train, 87, bits);
            assert_eq!(plain.to_bits(), coded.to_bits());
        }
        // compressing codecs charge strictly less
        let int8 = uplink_bits(&latency, Some(CodecKind::Int8), 62_000);
        assert!(int8 < latency.model_bits / 3.0);
        assert!(
            expected_round_latency_coded(&latency, &profile, &train, 87, int8) < plain,
            "compressed uplink must shorten the round"
        );
    }

    #[test]
    fn quantile_is_nearest_rank() {
        let lats = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(deadline_quantile(lats.clone(), 0.0), 1.0);
        assert_eq!(deadline_quantile(lats.clone(), 1.0), 4.0);
        assert_eq!(deadline_quantile(lats, 0.5), 3.0); // round(1.5) = 2
        assert_eq!(deadline_quantile(vec![], 0.5), 1.0);
    }

    #[test]
    fn wait_for_all_takes_the_slowest() {
        let d = round_duration(AggregationPolicy::WaitForAll, None, &[1.0, 5.0], &[2.0, 7.0], &[]);
        assert_eq!(d, 7.0);
        let d = round_duration(AggregationPolicy::DeadlineDrop, Some(3.0), &[1.0], &[9.0], &[]);
        assert_eq!(d, 3.0);
        let d = round_duration(AggregationPolicy::Replace, Some(3.0), &[1.0], &[9.0], &[2.0, 4.0]);
        assert_eq!(d, 7.0);
    }

    #[test]
    fn deadline_admission_drops_late_arrivals() {
        let mut acc = RoundAccumulator::new(Some(2.0));
        assert!(acc.record_delivery(update(0, 1.0, 10), 1.5, 0.0, 0, false));
        assert!(!acc.record_delivery(update(1, 1.0, 10), 1.5, 1.0, 2, false));
        // replacements bypass the deadline check
        assert!(acc.record_delivery(update(2, 1.0, 10), 5.0, 0.0, 0, true));
        assert_eq!(acc.stats.dropped_by_deadline, 1);
        assert_eq!(acc.stats.retries, 2);
        assert_eq!(acc.stats.replacements, vec![2]);
        assert_eq!(acc.participant_ids(), vec![0, 2]);
    }

    #[test]
    fn fedavg_weights_by_sample_count() {
        let mut acc = RoundAccumulator::new(None);
        acc.record_delivery(
            PendingUpdate { id: 0, params: vec![1.0, 1.0], loss: 1.0, n_train: 30 },
            1.0,
            0.0,
            0,
            false,
        );
        acc.record_delivery(
            PendingUpdate { id: 1, params: vec![4.0, 4.0], loss: 3.0, n_train: 10 },
            1.0,
            0.0,
            0,
            false,
        );
        let mut global = vec![0.0f32; 2];
        acc.fedavg(&mut global);
        // (30*1 + 10*4) / 40 = 1.75
        assert_eq!(global, vec![1.75, 1.75]);
        assert_eq!(acc.mean_local_loss(), 2.0);
    }

    #[test]
    fn empty_round_leaves_globals_and_reports_nan() {
        let acc = RoundAccumulator::new(None);
        let mut global = vec![0.5f32; 2];
        acc.fedavg(&mut global);
        assert_eq!(global, vec![0.5, 0.5]);
        assert!(acc.mean_local_loss().is_nan());
    }

    #[test]
    fn heartbeat_sweep_counts_silent_clients() {
        let faults = FaultModel::none(3);
        let policy = RoundPolicy::default();
        let out = simulate_heartbeats(&faults, &policy, 0, 5, &[0, 2, 4]);
        assert_eq!(out.acked, 3);
        assert_eq!(out.missed, 2);
        assert_eq!(out.retries, 0);
        let hb_size = Message::Heartbeat { client_nonce: 0, round: 0, last_loss: 0.0 }.wire_size();
        assert_eq!(out.bytes, 5 * hb_size + 3 * hb_size);
    }

    #[test]
    fn lossy_heartbeats_are_deterministic() {
        use haccs_sysmodel::FaultSpec;
        let faults = FaultModel::none(9).with(FaultSpec::Lossy { prob: 0.6 });
        let policy = RoundPolicy::default();
        let responders: Vec<usize> = (0..20).collect();
        let a = simulate_heartbeats(&faults, &policy, 3, 20, &responders);
        let b = simulate_heartbeats(&faults, &policy, 3, 20, &responders);
        assert_eq!(a, b);
        assert!(a.retries > 0, "60% loss must force retransmissions");
    }
}
