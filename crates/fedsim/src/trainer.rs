//! Local training: real SGD on a client's shard.

use haccs_data::ImageSet;
use haccs_nn::{softmax_cross_entropy, Sequential, Sgd};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Local-training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Local epochs per round.
    pub local_epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay — important in federated runs where a selector may
    /// repeatedly train the same small shards (guards against memorizing
    /// per-shard noise).
    pub weight_decay: f32,
    /// Fixed mini-batch count per local epoch (`None` = one pass over the
    /// full local data). Practical FL systems run a fixed number of local
    /// steps per round (Oort's evaluation does exactly this): clients with
    /// small shards cycle their data, clients with large shards subsample.
    /// This also decorrelates a client's round time from its shard size —
    /// heterogeneity comes from Table II, not data volume.
    pub max_batches_per_epoch: Option<usize>,
    /// FedProx proximal coefficient μ (Li et al., MLSys'20 — the paper's
    /// \[36\]): adds `μ‖w − w_global‖²/2` to the local objective, pulling
    /// local updates toward the global model under statistical
    /// heterogeneity. `0.0` = plain FedAvg.
    pub prox_mu: f32,
    /// Whether the model consumes NCHW images (CNN) or flat rows (MLP).
    pub wants_images: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 32,
            local_epochs: 1,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-3,
            max_batches_per_epoch: Some(8),
            prox_mu: 0.0,
            wants_images: false,
        }
    }
}

impl TrainConfig {
    /// Examples actually trained per local epoch on a shard of `n` examples
    /// (exactly `cap·batch_size` under a fixed step count — small shards
    /// cycle, large shards subsample).
    pub fn effective_examples(&self, n: usize) -> usize {
        match self.max_batches_per_epoch {
            Some(cap) => cap * self.batch_size,
            None => n,
        }
    }
}

/// Runs `cfg.local_epochs` of SGD over `data` on `model` and returns the
/// mean training loss across all batches. The caller seeds determinism via
/// `seed` (shuffling only).
pub fn train_local(model: &mut Sequential, data: &ImageSet, cfg: &TrainConfig, seed: u64) -> f32 {
    assert!(cfg.batch_size >= 1);
    assert!(cfg.prox_mu >= 0.0, "proximal coefficient must be non-negative");
    assert!(!data.is_empty(), "cannot train on an empty shard");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opt = Sgd::with_options(cfg.lr, cfg.momentum, cfg.weight_decay);
    // FedProx anchor: the global parameters the client received
    let anchor = (cfg.prox_mu > 0.0).then(|| model.get_params());
    let mut idx: Vec<usize> = (0..data.len()).collect();
    let mut total_loss = 0.0f64;
    let mut batches = 0usize;
    for _ in 0..cfg.local_epochs {
        idx.shuffle(&mut rng);
        let chunks: Vec<Vec<usize>> = match cfg.max_batches_per_epoch {
            // fixed step count: cycle the shuffled shard to fill the quota
            Some(cap) => {
                let need = cap * cfg.batch_size;
                let cycled: Vec<usize> = idx.iter().cycle().take(need).copied().collect();
                cycled.chunks(cfg.batch_size).map(|c| c.to_vec()).collect()
            }
            None => idx.chunks(cfg.batch_size).map(|c| c.to_vec()).collect(),
        };
        for chunk in &chunks {
            let (x, y) =
                if cfg.wants_images { data.batch_nchw(chunk) } else { data.batch_flat(chunk) };
            let logits = model.forward(x);
            let (loss, dlogits) = softmax_cross_entropy(&logits, &y);
            model.zero_grad();
            model.backward(dlogits);
            opt.step(model);
            if let Some(anchor) = &anchor {
                // proximal step: w ← w − lr·μ·(w − w_global)
                let shrink = cfg.lr * cfg.prox_mu;
                let mut at = 0usize;
                model.for_each_param(|p, _| {
                    let n = p.len();
                    for (w, &a) in p.iter_mut().zip(&anchor[at..at + n]) {
                        *w -= shrink * (*w - a);
                    }
                    at += n;
                });
            }
            total_loss += loss as f64;
            batches += 1;
        }
    }
    (total_loss / batches as f64) as f32
}

/// Computes the mean loss of `model` on (a sample of) `data` without
/// updating parameters — the server's initial "probe" of client losses.
pub fn probe_loss(
    model: &mut Sequential,
    data: &ImageSet,
    cfg: &TrainConfig,
    max_examples: usize,
) -> f32 {
    assert!(!data.is_empty());
    let n = data.len().min(max_examples.max(1));
    let idx: Vec<usize> = (0..n).collect();
    let (x, y) = if cfg.wants_images { data.batch_nchw(&idx) } else { data.batch_flat(&idx) };
    let logits = model.forward(x);
    let (loss, _) = softmax_cross_entropy(&logits, &y);
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_data::SynthVision;
    use haccs_nn::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shard(seed: u64) -> ImageSet {
        let g = SynthVision::mnist_like(4, 8, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        g.generate(&[20, 20, 20, 20], 0.0, &mut rng)
    }

    fn model(seed: u64) -> Sequential {
        mlp(64, &[32], 4, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn training_reduces_loss() {
        let data = shard(0);
        let mut m = model(0);
        let cfg = TrainConfig { local_epochs: 1, lr: 0.1, ..Default::default() };
        let first = probe_loss(&mut m, &data, &cfg, 80);
        for round in 0..5 {
            train_local(&mut m, &data, &cfg, round);
        }
        let after = probe_loss(&mut m, &data, &cfg, 80);
        assert!(after < first * 0.8, "loss {first} -> {after}");
    }

    #[test]
    fn train_is_deterministic_given_seed() {
        let data = shard(1);
        let cfg = TrainConfig::default();
        let mut m1 = model(1);
        let mut m2 = model(1);
        let l1 = train_local(&mut m1, &data, &cfg, 42);
        let l2 = train_local(&mut m2, &data, &cfg, 42);
        assert_eq!(l1, l2);
        assert_eq!(m1.get_params(), m2.get_params());
    }

    #[test]
    fn probe_does_not_modify_params() {
        let data = shard(2);
        let mut m = model(2);
        let before = m.get_params();
        probe_loss(&mut m, &data, &TrainConfig::default(), 50);
        assert_eq!(m.get_params(), before);
    }

    #[test]
    fn multiple_local_epochs_train_more() {
        let data = shard(3);
        let cfg1 = TrainConfig { local_epochs: 1, lr: 0.05, ..Default::default() };
        let cfg4 = TrainConfig { local_epochs: 4, ..cfg1 };
        let mut m1 = model(3);
        let mut m4 = model(3);
        train_local(&mut m1, &data, &cfg1, 0);
        train_local(&mut m4, &data, &cfg4, 0);
        let l1 = probe_loss(&mut m1, &data, &cfg1, 80);
        let l4 = probe_loss(&mut m4, &data, &cfg4, 80);
        assert!(l4 < l1, "more local epochs should fit better: {l4} vs {l1}");
    }

    #[test]
    fn fedprox_pulls_updates_toward_global() {
        let data = shard(5);
        let plain_cfg = TrainConfig { prox_mu: 0.0, ..Default::default() };
        let prox_cfg = TrainConfig { prox_mu: 5.0, ..Default::default() };
        let mut plain = model(5);
        let mut prox = model(5);
        let start = plain.get_params();
        train_local(&mut plain, &data, &plain_cfg, 0);
        train_local(&mut prox, &data, &prox_cfg, 0);
        let drift = |m: &Sequential| -> f32 {
            m.get_params().iter().zip(&start).map(|(w, a)| (w - a) * (w - a)).sum::<f32>().sqrt()
        };
        assert!(
            drift(&prox) < drift(&plain) * 0.9,
            "prox drift {} should be well under plain drift {}",
            drift(&prox),
            drift(&plain)
        );
    }

    #[test]
    fn fedprox_zero_mu_is_plain_fedavg() {
        let data = shard(6);
        let cfg = TrainConfig::default();
        let mut a = model(6);
        let mut b = model(6);
        train_local(&mut a, &data, &cfg, 3);
        train_local(&mut b, &data, &TrainConfig { prox_mu: 0.0, ..cfg }, 3);
        assert_eq!(a.get_params(), b.get_params());
    }

    #[test]
    #[should_panic(expected = "empty shard")]
    fn empty_shard_panics() {
        let g = SynthVision::mnist_like(4, 8, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let empty = g.generate(&[0, 0, 0, 0], 0.0, &mut rng);
        train_local(&mut model(0), &empty, &TrainConfig::default(), 0);
    }
}
