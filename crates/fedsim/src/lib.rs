//! # haccs-fedsim
//!
//! The federated-learning simulation engine. This is the substrate the
//! paper built with PySyft + gRPC across two Xeon machines (§IV-F): a
//! central server running Federated Averaging over virtual clients, with
//! system heterogeneity accounted by [`haccs_sysmodel`]'s simulated clock
//! instead of injected sleeps (see DESIGN.md §2 for the substitution).
//!
//! Key pieces:
//!
//! * [`client::ClientState`] — a device: local shards, a Table II
//!   performance profile, and the server's view of its last observed loss,
//! * [`selector::Selector`] — the strategy interface every scheduler
//!   (Random/TiFL/Oort/HACCS) implements,
//! * [`trainer`] — real local SGD on the client's shard (clients train
//!   *for real*; only time is simulated), parallelized across clients with
//!   rayon,
//! * [`engine::FedSim`] — the synchronous round loop: select → train →
//!   FedAvg → advance clock by the slowest participant → evaluate. Faults
//!   (crash / straggler / lossy wire, from `haccs_sysmodel::faults`) can be
//!   injected mid-round, and an [`engine::RoundPolicy`] chooses between
//!   waiting for everyone, dropping late updates at a deadline, or drafting
//!   replacements for failed slots (see the [`engine`] module docs for the
//!   full taxonomy),
//! * [`metrics`] — time-to-accuracy curves, the TTA(target) readout the
//!   paper's evaluation reports, and per-round [`metrics::FaultStats`].

pub mod client;
pub mod engine;
pub mod metrics;
pub mod round;
pub mod selector;
pub mod trainer;

pub use client::{neutral_loss, ClientInfo, ClientState};
pub use engine::{AggregationPolicy, FedSim, RoundPolicy, SimConfig, SnapshotPolicy};
/// Re-export of the snapshot codec, so selector implementors can reach
/// the [`Selector::save_state`]/[`Selector::load_state`] types without a
/// direct `haccs-persist` dependency.
pub use haccs_persist as persist;
pub use metrics::{FaultStats, RoundRecord, RunResult, TimePoint};
pub use round::{HeartbeatOutcome, PendingUpdate, RoundAccumulator};
pub use selector::{SelectionContext, Selector};
