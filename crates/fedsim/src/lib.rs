//! # haccs-fedsim
//!
//! The federated-learning simulation engine. This is the substrate the
//! paper built with PySyft + gRPC across two Xeon machines (§IV-F): a
//! central server running Federated Averaging over virtual clients, with
//! system heterogeneity accounted by [`haccs_sysmodel`]'s simulated clock
//! instead of injected sleeps (see DESIGN.md §2 for the substitution).
//!
//! Key pieces:
//!
//! * [`client::ClientState`] — a device: local shards, a Table II
//!   performance profile, and the server's view of its last observed loss,
//! * [`selector::Selector`] — the strategy interface every scheduler
//!   (Random/TiFL/Oort/HACCS) implements,
//! * [`trainer`] — real local SGD on the client's shard (clients train
//!   *for real*; only time is simulated), parallelized across clients with
//!   rayon,
//! * [`engine::FedSim`] — the synchronous round loop: select → train →
//!   FedAvg → advance clock by the slowest participant → evaluate,
//! * [`metrics`] — time-to-accuracy curves and the TTA(target) readout the
//!   paper's evaluation reports.

pub mod client;
pub mod engine;
pub mod metrics;
pub mod selector;
pub mod trainer;

pub use client::{ClientInfo, ClientState};
pub use engine::{FedSim, SimConfig};
pub use metrics::{RoundRecord, RunResult, TimePoint};
pub use selector::{SelectionContext, Selector};
