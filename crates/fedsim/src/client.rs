//! Client-side state and the server's scheduling view of a client.

use haccs_data::ClientData;
use haccs_sysmodel::{DeviceProfile, LatencyModel};

/// A simulated device: its data, its system profile, and bookkeeping the
/// server maintains about it.
#[derive(Debug, Clone)]
pub struct ClientState {
    /// Stable client id (index into the federation).
    pub id: usize,
    /// Local train/test shards.
    pub data: ClientData,
    /// Table II system profile.
    pub profile: DeviceProfile,
    /// Last local training loss observed by the server (`None` until the
    /// client first participates or is probed).
    pub last_loss: Option<f32>,
    /// How many rounds this client has participated in.
    pub participation_count: usize,
}

impl ClientState {
    /// Creates a client.
    pub fn new(id: usize, data: ClientData, profile: DeviceProfile) -> Self {
        ClientState { id, data, profile, last_loss: None, participation_count: 0 }
    }

    /// Expected round latency for this client under `lat` (§IV-D).
    pub fn expected_latency(&self, lat: &LatencyModel) -> f64 {
        lat.round_seconds(&self.profile, self.data.n_train())
    }
}

/// The server's immutable scheduling view of one client for one epoch.
/// This is all a [`crate::Selector`] gets to see — mirroring what a real
/// central server would know (no raw data!).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientInfo {
    /// Client id.
    pub id: usize,
    /// Estimated §IV-D latency in seconds.
    pub est_latency: f64,
    /// Last observed local loss (initial probe or latest participation).
    pub last_loss: f32,
    /// Local training-set size (FedAvg weight, Oort's |B_i|).
    pub n_train: usize,
    /// Rounds participated so far.
    pub participation_count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_data::{partition, FederatedDataset, SynthVision};

    fn mk_client() -> ClientState {
        let gen = SynthVision::mnist_like(10, 8, 0);
        let specs = partition::iid(1, 10, 40, 10);
        let fed = FederatedDataset::materialize(&gen, &specs, 0);
        ClientState::new(0, fed.clients[0].clone(), DeviceProfile::uniform_fast())
    }

    #[test]
    fn new_client_has_no_loss() {
        let c = mk_client();
        assert!(c.last_loss.is_none());
        assert_eq!(c.participation_count, 0);
        assert_eq!(c.data.n_train(), 40);
    }

    #[test]
    fn expected_latency_positive_and_monotone_in_multiplier() {
        let mut c = mk_client();
        let lat = LatencyModel::default();
        let fast = c.expected_latency(&lat);
        assert!(fast > 0.0);
        c.profile.compute_multiplier = 3.0;
        assert!(c.expected_latency(&lat) > fast);
    }
}
