//! Client-side state and the server's scheduling view of a client.

use haccs_data::ClientData;
use haccs_sysmodel::{DeviceProfile, LatencyModel};

/// A simulated device: its data, its system profile, and bookkeeping the
/// server maintains about it.
#[derive(Debug, Clone)]
pub struct ClientState {
    /// Stable client id (index into the federation).
    pub id: usize,
    /// Local train/test shards.
    pub data: ClientData,
    /// Table II system profile.
    pub profile: DeviceProfile,
    /// Last local training loss observed by the server (`None` until the
    /// client first participates or is probed).
    pub last_loss: Option<f32>,
    /// How many rounds this client has participated in.
    pub participation_count: usize,
}

impl ClientState {
    /// Creates a client.
    pub fn new(id: usize, data: ClientData, profile: DeviceProfile) -> Self {
        ClientState { id, data, profile, last_loss: None, participation_count: 0 }
    }

    /// Expected round latency for this client under `lat` (§IV-D).
    pub fn expected_latency(&self, lat: &LatencyModel) -> f64 {
        lat.round_seconds(&self.profile, self.data.n_train())
    }
}

/// A finite, neutral stand-in loss for clients the server has never
/// probed: the mean of the finite observed losses in the scheduling pool
/// (1.0 when nothing has been observed yet).
///
/// The previous `f32::MAX` sentinel let a single unprobed client absorb
/// essentially all of Oort's utility mass and Eq. 7's loss
/// normalization; a pool-mean fallback keeps an unknown client ordinary
/// rather than infinitely attractive.
pub fn neutral_loss(observed: &[Option<f32>]) -> f32 {
    let finite: Vec<f32> = observed.iter().flatten().copied().filter(|l| l.is_finite()).collect();
    if finite.is_empty() {
        1.0
    } else {
        finite.iter().sum::<f32>() / finite.len() as f32
    }
}

/// The server's immutable scheduling view of one client for one epoch.
/// This is all a [`crate::Selector`] gets to see — mirroring what a real
/// central server would know (no raw data!).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientInfo {
    /// Client id.
    pub id: usize,
    /// Estimated §IV-D latency in seconds.
    pub est_latency: f64,
    /// Last observed local loss (initial probe or latest participation).
    pub last_loss: f32,
    /// Local training-set size (FedAvg weight, Oort's |B_i|).
    pub n_train: usize,
    /// Rounds participated so far.
    pub participation_count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_data::{partition, FederatedDataset, SynthVision};

    fn mk_client() -> ClientState {
        let gen = SynthVision::mnist_like(10, 8, 0);
        let specs = partition::iid(1, 10, 40, 10);
        let fed = FederatedDataset::materialize(&gen, &specs, 0);
        ClientState::new(0, fed.clients[0].clone(), DeviceProfile::uniform_fast())
    }

    #[test]
    fn new_client_has_no_loss() {
        let c = mk_client();
        assert!(c.last_loss.is_none());
        assert_eq!(c.participation_count, 0);
        assert_eq!(c.data.n_train(), 40);
    }

    #[test]
    fn expected_latency_positive_and_monotone_in_multiplier() {
        let mut c = mk_client();
        let lat = LatencyModel::default();
        let fast = c.expected_latency(&lat);
        assert!(fast > 0.0);
        c.profile.compute_multiplier = 3.0;
        assert!(c.expected_latency(&lat) > fast);
    }

    #[test]
    fn neutral_loss_is_pool_mean_of_finite_observations() {
        let pool = [Some(1.0), None, Some(3.0), Some(f32::NAN), Some(f32::INFINITY)];
        assert_eq!(neutral_loss(&pool), 2.0);
    }

    #[test]
    fn neutral_loss_defaults_to_one_when_nothing_observed() {
        assert_eq!(neutral_loss(&[]), 1.0);
        assert_eq!(neutral_loss(&[None, Some(f32::NAN)]), 1.0);
    }

    #[test]
    fn neutral_loss_keeps_unprobed_clients_ordinary() {
        // With the old f32::MAX sentinel a single unprobed client dominated
        // any loss-proportional weighting; the pool-mean fallback keeps it
        // comparable to its probed peers.
        let pool = [Some(0.9), Some(1.1), None];
        let fallback = neutral_loss(&pool);
        assert!(fallback.is_finite());
        let max_observed = 1.1f32;
        assert!(fallback <= max_observed, "fallback {fallback} must not dominate the pool");
    }
}
