//! Run records and time-to-accuracy curves.

use haccs_persist::{PersistError, SnapshotReader, SnapshotWriter};

/// One evaluation point on the training curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimePoint {
    /// Simulated seconds since training started.
    pub time_s: f64,
    /// Round index at which the evaluation happened.
    pub epoch: usize,
    /// Global test accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Global test loss.
    pub loss: f32,
}

/// Per-round fault accounting: what went wrong between selection and
/// aggregation, and what it cost.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultStats {
    /// Selected clients whose update never arrived (crash schedule).
    pub crashed: usize,
    /// Selected clients that ran at a straggler slowdown this round.
    pub stragglers: usize,
    /// Arrivals discarded because they missed the round deadline.
    pub dropped_by_deadline: usize,
    /// Updates lost on the wire after exhausting the retry budget.
    pub lossy_failures: usize,
    /// Total wire retransmissions across all participants.
    pub retries: usize,
    /// Clients drafted as mid-round replacements (Replace policy). Each was
    /// available and un-faulted at selection time.
    pub replacements: Vec<usize>,
    /// Client-seconds of local work whose result was never aggregated.
    pub wasted_client_seconds: f64,
    /// The round deadline, when a deadline policy was active.
    pub deadline_s: Option<f64>,
    /// Bytes of coordinator control traffic this round (`Schedule` frames
    /// plus the heartbeat sweep, retransmissions included).
    pub control_bytes: usize,
    /// Heartbeat probes that went unanswered this round (unavailable or
    /// departed clients, plus acks lost on the wire).
    pub hb_missed: usize,
    /// Raw model-update payload bytes clients produced this round
    /// (4 bytes per parameter per trained transmission, delivered or
    /// lost on the wire — crashed and deadline-precut clients never
    /// transmit). Counted whether or not a codec is attached, so a
    /// codec-free run and an `Identity` run stay byte-identical.
    pub payload_bytes_raw: usize,
    /// The same transmissions as charged on the wire: the codec's
    /// exact encoded size, or the raw size when no codec compresses.
    pub payload_bytes_encoded: usize,
}

impl FaultStats {
    /// Selected-but-not-aggregated count (crashes + deadline drops + wire
    /// losses).
    pub fn failures(&self) -> usize {
        self.crashed + self.dropped_by_deadline + self.lossy_failures
    }

    /// Appends this record to a snapshot payload.
    pub fn save(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.crashed);
        w.put_usize(self.stragglers);
        w.put_usize(self.dropped_by_deadline);
        w.put_usize(self.lossy_failures);
        w.put_usize(self.retries);
        w.put_usizes(&self.replacements);
        w.put_f64(self.wasted_client_seconds);
        match self.deadline_s {
            None => w.put_u8(0),
            Some(d) => {
                w.put_u8(1);
                w.put_f64(d);
            }
        }
        w.put_usize(self.control_bytes);
        w.put_usize(self.hb_missed);
        w.put_usize(self.payload_bytes_raw);
        w.put_usize(self.payload_bytes_encoded);
    }

    /// Reads back what [`FaultStats::save`] wrote.
    pub fn load(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(FaultStats {
            crashed: r.get_usize()?,
            stragglers: r.get_usize()?,
            dropped_by_deadline: r.get_usize()?,
            lossy_failures: r.get_usize()?,
            retries: r.get_usize()?,
            replacements: r.get_usizes()?,
            wasted_client_seconds: r.get_f64()?,
            deadline_s: match r.get_u8()? {
                0 => None,
                1 => Some(r.get_f64()?),
                t => return Err(PersistError::Malformed(format!("deadline tag {t}"))),
            },
            control_bytes: r.get_usize()?,
            hb_missed: r.get_usize()?,
            payload_bytes_raw: r.get_usize()?,
            payload_bytes_encoded: r.get_usize()?,
        })
    }
}

/// Bookkeeping for one round.
///
/// `PartialEq` compares `mean_local_loss` *bitwise* (`f32::to_bits`): a
/// round where nothing arrived records `NaN`, and IEEE `NaN != NaN` would
/// make two byte-identical runs compare unequal — exactly the comparison
/// the determinism suite relies on.
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// Round index.
    pub epoch: usize,
    /// Simulated time at the *end* of the round.
    pub time_s: f64,
    /// Duration of this round (slowest selected client).
    pub round_seconds: f64,
    /// Ids whose updates were aggregated this round.
    pub participants: Vec<usize>,
    /// Mean local training loss across participants.
    pub mean_local_loss: f32,
    /// Fault accounting (all-zero under a fault-free run).
    pub faults: FaultStats,
}

impl PartialEq for RoundRecord {
    fn eq(&self, other: &Self) -> bool {
        self.epoch == other.epoch
            && self.time_s == other.time_s
            && self.round_seconds == other.round_seconds
            && self.participants == other.participants
            && self.mean_local_loss.to_bits() == other.mean_local_loss.to_bits()
            && self.faults == other.faults
    }
}

impl RoundRecord {
    /// Appends this record to a snapshot payload. Floats are stored as
    /// bit patterns, so an idle round's `NaN` loss survives the round
    /// trip and the restored record stays `==` (bitwise) to the original.
    pub fn save(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.epoch);
        w.put_f64(self.time_s);
        w.put_f64(self.round_seconds);
        w.put_usizes(&self.participants);
        w.put_f32(self.mean_local_loss);
        self.faults.save(w);
    }

    /// Reads back what [`RoundRecord::save`] wrote.
    pub fn load(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(RoundRecord {
            epoch: r.get_usize()?,
            time_s: r.get_f64()?,
            round_seconds: r.get_f64()?,
            participants: r.get_usizes()?,
            mean_local_loss: r.get_f32()?,
            faults: FaultStats::load(r)?,
        })
    }
}

/// The full result of a simulated run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunResult {
    /// Strategy name.
    pub strategy: String,
    /// Accuracy/loss checkpoints over simulated time.
    pub curve: Vec<TimePoint>,
    /// Per-round records.
    pub rounds: Vec<RoundRecord>,
}

impl RunResult {
    /// Simulated seconds needed to *first* reach `target` accuracy, or
    /// `None` if the run never got there. This is the paper's TTA metric.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.curve.iter().find(|p| p.accuracy >= target).map(|p| p.time_s)
    }

    /// A copy of this run with the accuracy/loss curve replaced by a
    /// centered moving average of width `window` (the paper reports
    /// "smoothed curves"; TTA readouts on the smoothed curve are robust to
    /// single-evaluation spikes).
    pub fn smoothed(&self, window: usize) -> RunResult {
        assert!(window >= 1);
        let n = self.curve.len();
        let half = window / 2;
        let curve = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(n);
                let span = &self.curve[lo..hi];
                let m = span.len() as f32;
                TimePoint {
                    time_s: self.curve[i].time_s,
                    epoch: self.curve[i].epoch,
                    accuracy: span.iter().map(|p| p.accuracy).sum::<f32>() / m,
                    loss: span.iter().map(|p| p.loss).sum::<f32>() / m,
                }
            })
            .collect();
        RunResult { strategy: self.strategy.clone(), curve, rounds: self.rounds.clone() }
    }

    /// Best accuracy seen.
    pub fn best_accuracy(&self) -> f32 {
        self.curve.iter().map(|p| p.accuracy).fold(0.0, f32::max)
    }

    /// Final simulated time.
    pub fn total_time(&self) -> f64 {
        self.rounds.last().map(|r| r.time_s).unwrap_or(0.0)
    }

    /// How many times each client id participated.
    pub fn participation_counts(&self, n_clients: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_clients];
        for r in &self.rounds {
            for &p in &r.participants {
                counts[p] += 1;
            }
        }
        counts
    }

    /// Total crashed selections across the run.
    pub fn total_crashed(&self) -> usize {
        self.rounds.iter().map(|r| r.faults.crashed).sum()
    }

    /// Total wire retransmissions across the run.
    pub fn total_retries(&self) -> usize {
        self.rounds.iter().map(|r| r.faults.retries).sum()
    }

    /// Total mid-round replacements across the run.
    pub fn total_replacements(&self) -> usize {
        self.rounds.iter().map(|r| r.faults.replacements.len()).sum()
    }

    /// Total client-seconds of wasted (never-aggregated) local work.
    pub fn total_wasted_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.faults.wasted_client_seconds).sum()
    }

    /// Total raw model-update payload bytes across the run.
    pub fn total_payload_bytes_raw(&self) -> usize {
        self.rounds.iter().map(|r| r.faults.payload_bytes_raw).sum()
    }

    /// Total encoded (as-charged-on-the-wire) model-update payload bytes
    /// across the run.
    pub fn total_payload_bytes_encoded(&self) -> usize {
        self.rounds.iter().map(|r| r.faults.payload_bytes_encoded).sum()
    }

    /// Appends the full run history to a snapshot payload.
    pub fn save(&self, w: &mut SnapshotWriter) {
        w.put_str(&self.strategy);
        w.put_usize(self.curve.len());
        for p in &self.curve {
            w.put_f64(p.time_s);
            w.put_usize(p.epoch);
            w.put_f32(p.accuracy);
            w.put_f32(p.loss);
        }
        w.put_usize(self.rounds.len());
        for rec in &self.rounds {
            rec.save(w);
        }
    }

    /// Reads back what [`RunResult::save`] wrote.
    pub fn load(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        let strategy = r.get_str()?;
        let n_curve = r.get_usize()?;
        let mut curve = Vec::with_capacity(n_curve);
        for _ in 0..n_curve {
            curve.push(TimePoint {
                time_s: r.get_f64()?,
                epoch: r.get_usize()?,
                accuracy: r.get_f32()?,
                loss: r.get_f32()?,
            });
        }
        let n_rounds = r.get_usize()?;
        let mut rounds = Vec::with_capacity(n_rounds);
        for _ in 0..n_rounds {
            rounds.push(RoundRecord::load(r)?);
        }
        Ok(RunResult { strategy, curve, rounds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> RunResult {
        RunResult {
            strategy: "test".into(),
            curve: vec![
                TimePoint { time_s: 10.0, epoch: 0, accuracy: 0.3, loss: 2.0 },
                TimePoint { time_s: 20.0, epoch: 1, accuracy: 0.55, loss: 1.5 },
                TimePoint { time_s: 30.0, epoch: 2, accuracy: 0.5, loss: 1.6 },
                TimePoint { time_s: 40.0, epoch: 3, accuracy: 0.7, loss: 1.0 },
            ],
            rounds: vec![
                RoundRecord {
                    epoch: 0,
                    time_s: 10.0,
                    round_seconds: 10.0,
                    participants: vec![0, 1],
                    mean_local_loss: 2.0,
                    faults: FaultStats::default(),
                },
                RoundRecord {
                    epoch: 1,
                    time_s: 20.0,
                    round_seconds: 10.0,
                    participants: vec![1, 2],
                    mean_local_loss: 1.5,
                    faults: FaultStats { crashed: 1, retries: 2, ..Default::default() },
                },
            ],
        }
    }

    #[test]
    fn tta_finds_first_crossing() {
        let r = run();
        assert_eq!(r.time_to_accuracy(0.5), Some(20.0));
        assert_eq!(r.time_to_accuracy(0.7), Some(40.0));
        assert_eq!(r.time_to_accuracy(0.9), None);
    }

    #[test]
    fn best_accuracy_and_total_time() {
        let r = run();
        assert_eq!(r.best_accuracy(), 0.7);
        assert_eq!(r.total_time(), 20.0);
    }

    #[test]
    fn participation_counts() {
        let r = run();
        assert_eq!(r.participation_counts(4), vec![1, 2, 1, 0]);
    }

    #[test]
    fn fault_totals_aggregate_over_rounds() {
        let r = run();
        assert_eq!(r.total_crashed(), 1);
        assert_eq!(r.total_retries(), 2);
        assert_eq!(r.total_replacements(), 0);
        assert_eq!(r.total_wasted_seconds(), 0.0);
        assert_eq!(r.rounds[1].faults.failures(), 1);
    }

    #[test]
    fn run_results_compare_exactly() {
        assert_eq!(run(), run());
        let mut other = run();
        other.rounds[0].faults.crashed = 9;
        assert_ne!(run(), other);
    }

    #[test]
    fn run_result_snapshot_round_trip_is_bit_identical() {
        let mut r = run();
        // exercise the NaN-loss idle round and a deadline record
        r.rounds.push(RoundRecord {
            epoch: 2,
            time_s: 21.0,
            round_seconds: 1.0,
            participants: Vec::new(),
            mean_local_loss: f32::NAN,
            faults: FaultStats {
                replacements: vec![3, 4],
                deadline_s: Some(7.25),
                wasted_client_seconds: 1.5,
                payload_bytes_raw: 8848,
                payload_bytes_encoded: 2262,
                ..Default::default()
            },
        });
        let mut w = SnapshotWriter::new();
        r.save(&mut w);
        let bytes = w.finish();
        let mut reader = SnapshotReader::open(&bytes).unwrap();
        let back = RunResult::load(&mut reader).unwrap();
        reader.expect_end().unwrap();
        assert_eq!(back, r, "RoundRecord's bitwise PartialEq must hold through persistence");
    }
}
