//! Run records and time-to-accuracy curves.

/// One evaluation point on the training curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimePoint {
    /// Simulated seconds since training started.
    pub time_s: f64,
    /// Round index at which the evaluation happened.
    pub epoch: usize,
    /// Global test accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Global test loss.
    pub loss: f32,
}

/// Bookkeeping for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round index.
    pub epoch: usize,
    /// Simulated time at the *end* of the round.
    pub time_s: f64,
    /// Duration of this round (slowest selected client).
    pub round_seconds: f64,
    /// Ids that trained this round.
    pub participants: Vec<usize>,
    /// Mean local training loss across participants.
    pub mean_local_loss: f32,
}

/// The full result of a simulated run.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Strategy name.
    pub strategy: String,
    /// Accuracy/loss checkpoints over simulated time.
    pub curve: Vec<TimePoint>,
    /// Per-round records.
    pub rounds: Vec<RoundRecord>,
}

impl RunResult {
    /// Simulated seconds needed to *first* reach `target` accuracy, or
    /// `None` if the run never got there. This is the paper's TTA metric.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.curve.iter().find(|p| p.accuracy >= target).map(|p| p.time_s)
    }

    /// A copy of this run with the accuracy/loss curve replaced by a
    /// centered moving average of width `window` (the paper reports
    /// "smoothed curves"; TTA readouts on the smoothed curve are robust to
    /// single-evaluation spikes).
    pub fn smoothed(&self, window: usize) -> RunResult {
        assert!(window >= 1);
        let n = self.curve.len();
        let half = window / 2;
        let curve = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(n);
                let span = &self.curve[lo..hi];
                let m = span.len() as f32;
                TimePoint {
                    time_s: self.curve[i].time_s,
                    epoch: self.curve[i].epoch,
                    accuracy: span.iter().map(|p| p.accuracy).sum::<f32>() / m,
                    loss: span.iter().map(|p| p.loss).sum::<f32>() / m,
                }
            })
            .collect();
        RunResult { strategy: self.strategy.clone(), curve, rounds: self.rounds.clone() }
    }

    /// Best accuracy seen.
    pub fn best_accuracy(&self) -> f32 {
        self.curve.iter().map(|p| p.accuracy).fold(0.0, f32::max)
    }

    /// Final simulated time.
    pub fn total_time(&self) -> f64 {
        self.rounds.last().map(|r| r.time_s).unwrap_or(0.0)
    }

    /// How many times each client id participated.
    pub fn participation_counts(&self, n_clients: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_clients];
        for r in &self.rounds {
            for &p in &r.participants {
                counts[p] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> RunResult {
        RunResult {
            strategy: "test".into(),
            curve: vec![
                TimePoint { time_s: 10.0, epoch: 0, accuracy: 0.3, loss: 2.0 },
                TimePoint { time_s: 20.0, epoch: 1, accuracy: 0.55, loss: 1.5 },
                TimePoint { time_s: 30.0, epoch: 2, accuracy: 0.5, loss: 1.6 },
                TimePoint { time_s: 40.0, epoch: 3, accuracy: 0.7, loss: 1.0 },
            ],
            rounds: vec![
                RoundRecord {
                    epoch: 0,
                    time_s: 10.0,
                    round_seconds: 10.0,
                    participants: vec![0, 1],
                    mean_local_loss: 2.0,
                },
                RoundRecord {
                    epoch: 1,
                    time_s: 20.0,
                    round_seconds: 10.0,
                    participants: vec![1, 2],
                    mean_local_loss: 1.5,
                },
            ],
        }
    }

    #[test]
    fn tta_finds_first_crossing() {
        let r = run();
        assert_eq!(r.time_to_accuracy(0.5), Some(20.0));
        assert_eq!(r.time_to_accuracy(0.7), Some(40.0));
        assert_eq!(r.time_to_accuracy(0.9), None);
    }

    #[test]
    fn best_accuracy_and_total_time() {
        let r = run();
        assert_eq!(r.best_accuracy(), 0.7);
        assert_eq!(r.total_time(), 20.0);
    }

    #[test]
    fn participation_counts() {
        let r = run();
        assert_eq!(r.participation_counts(4), vec![1, 2, 1, 0]);
    }
}
