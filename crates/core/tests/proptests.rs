//! Property-based tests for the HACCS scheduler components.

use haccs_core::{cluster_weights, ClusterStats, HaccsSelector};
use haccs_fedsim::{ClientInfo, SelectionContext, Selector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn stats() -> impl Strategy<Value = Vec<ClusterStats>> {
    proptest::collection::vec(
        (0.01f64..100.0, 0.0f32..10.0)
            .prop_map(|(avg_latency, avg_loss)| ClusterStats { avg_latency, avg_loss }),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn weights_nonnegative_and_finite(s in stats(), rho_pct in 0usize..=100) {
        let rho = rho_pct as f32 / 100.0;
        let w = cluster_weights(&s, rho);
        prop_assert_eq!(w.len(), s.len());
        prop_assert!(w.iter().all(|&x| x >= 0.0 && x.is_finite()));
        prop_assert!(w.iter().sum::<f64>() > 0.0, "weights must be samplable");
    }

    #[test]
    fn rho_zero_weights_proportional_to_loss(s in stats()) {
        let w = cluster_weights(&s, 0.0);
        let loss_sum: f64 = s.iter().map(|x| x.avg_loss as f64).sum();
        if loss_sum > 0.0 {
            for (wi, si) in w.iter().zip(&s) {
                let expect = si.avg_loss as f64 / loss_sum;
                prop_assert!((wi - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rho_one_slowest_cluster_gets_zero(s in stats()) {
        prop_assume!(s.len() >= 2);
        // make latencies distinct enough to identify the strict max
        let max_lat = s.iter().map(|x| x.avg_latency).fold(0.0f64, f64::max);
        let w = cluster_weights(&s, 1.0);
        if w.iter().any(|&x| x > 0.0) && s.iter().filter(|x| x.avg_latency == max_lat).count() == 1 {
            let slowest = s.iter().position(|x| x.avg_latency == max_lat).unwrap();
            // unless the uniform fallback kicked in (all-zero θ)
            if w.iter().sum::<f64>() != w.len() as f64 {
                prop_assert_eq!(w[slowest], 0.0);
            }
        }
    }

    #[test]
    fn selection_is_distinct_and_available(
        n_clusters in 1usize..6,
        per_cluster in 1usize..5,
        k in 1usize..12,
        seed in any::<u64>(),
    ) {
        let groups: Vec<Vec<usize>> = (0..n_clusters)
            .map(|c| (0..per_cluster).map(|i| c * per_cluster + i).collect())
            .collect();
        let n = n_clusters * per_cluster;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let infos: Vec<ClientInfo> = (0..n)
            .map(|id| ClientInfo {
                id,
                est_latency: rng.gen_range(0.1..10.0),
                last_loss: rng.gen_range(0.1..5.0),
                n_train: rng.gen_range(10..100),
                participation_count: 0,
            })
            .collect();
        let mut sel = HaccsSelector::new(groups, 0.5, "P(y)");
        let ctx = SelectionContext { epoch: 0, available: &infos, k };
        let chosen = sel.select(&ctx, &mut rng);
        // distinct
        let mut uniq = chosen.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), chosen.len(), "duplicate selections");
        // within bounds and never more than min(k, n)
        prop_assert!(chosen.len() <= k.min(n));
        prop_assert!(chosen.iter().all(|&id| id < n));
        // if k >= n, everyone is selected (all clusters exhaust)
        if k >= n {
            prop_assert_eq!(chosen.len(), n);
        }
    }

    #[test]
    fn dropout_never_selects_unavailable(
        seed in any::<u64>(),
        unavailable in proptest::collection::hash_set(0usize..12, 0..8),
    ) {
        let groups: Vec<Vec<usize>> = vec![(0..6).collect(), (6..12).collect()];
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let infos: Vec<ClientInfo> = (0..12)
            .filter(|id| !unavailable.contains(id))
            .map(|id| ClientInfo {
                id,
                est_latency: rng.gen_range(0.1..10.0),
                last_loss: 1.0,
                n_train: 10,
                participation_count: 0,
            })
            .collect();
        let mut sel = HaccsSelector::new(groups, 0.5, "P(y)");
        let ctx = SelectionContext { epoch: 0, available: &infos, k: 5 };
        let chosen = sel.select(&ctx, &mut rng);
        prop_assert!(chosen.iter().all(|id| !unavailable.contains(id)));
    }
}
