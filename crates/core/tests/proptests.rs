//! Property-based tests for the HACCS scheduler components, including
//! the two-level [`ClusterCache`] parity suite: below the `flat_below`
//! gate the two-level cache must reproduce the flat §IV-C partition
//! bit-for-bit on arbitrary random summaries, and the forced-bucketed
//! path must recover the same partition (as a set of groups) whenever
//! the summaries are well-separated — across bucket (sketch level)
//! counts.

use haccs_core::{
    cluster_weights, ClusterCache, ClusterStats, ExtractionMethod, HaccsSelector, TwoLevelConfig,
};
use haccs_fedsim::{ClientInfo, SelectionContext, Selector};
use haccs_summary::summarizer::ClientSummary;
use haccs_summary::{Histogram, Summarizer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random label-distribution summaries: `n` clients over `classes`
/// labels, arbitrary nonnegative counts (including all-zero → null
/// histograms, the degenerate case the distance code must tolerate).
fn random_summaries() -> impl Strategy<Value = Vec<ClientSummary>> {
    (2usize..=6, 2usize..=256).prop_flat_map(|(classes, n)| {
        proptest::collection::vec(
            proptest::collection::vec(0.0f32..100.0, classes)
                .prop_map(|c| ClientSummary::LabelDist(Histogram::from_counts(&c))),
            n,
        )
    })
}

/// Well-separated summaries: `groups` one-hot label distributions with
/// `per` clients each (magnitudes vary, normalized histograms within a
/// group are identical; across groups they sit at Hellinger distance 1).
/// Returns `(summaries, group_of_client)`.
fn separated_summaries() -> impl Strategy<Value = (Vec<ClientSummary>, Vec<usize>)> {
    (2usize..=5, 2usize..=6).prop_flat_map(|(groups, per)| {
        proptest::collection::vec(1.0f32..100.0, groups * per).prop_map(move |mags| {
            let mut sums = Vec::with_capacity(groups * per);
            let mut owner = Vec::with_capacity(groups * per);
            for (i, mag) in mags.iter().enumerate() {
                let g = i % groups;
                let mut counts = vec![0.0f32; groups.max(2)];
                counts[g] = *mag;
                sums.push(ClientSummary::LabelDist(Histogram::from_counts(&counts)));
                owner.push(g);
            }
            (sums, owner)
        })
    })
}

/// Sorted set-of-groups view, for comparing partitions that may order
/// groups differently across modes.
fn normalized(mut groups: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for g in groups.iter_mut() {
        g.sort_unstable();
    }
    groups.sort();
    groups
}

fn stats() -> impl Strategy<Value = Vec<ClusterStats>> {
    proptest::collection::vec(
        (0.01f64..100.0, 0.0f32..10.0)
            .prop_map(|(avg_latency, avg_loss)| ClusterStats { avg_latency, avg_loss }),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn weights_nonnegative_and_finite(s in stats(), rho_pct in 0usize..=100) {
        let rho = rho_pct as f32 / 100.0;
        let w = cluster_weights(&s, rho);
        prop_assert_eq!(w.len(), s.len());
        prop_assert!(w.iter().all(|&x| x >= 0.0 && x.is_finite()));
        prop_assert!(w.iter().sum::<f64>() > 0.0, "weights must be samplable");
    }

    #[test]
    fn rho_zero_weights_proportional_to_loss(s in stats()) {
        let w = cluster_weights(&s, 0.0);
        let loss_sum: f64 = s.iter().map(|x| x.avg_loss as f64).sum();
        if loss_sum > 0.0 {
            for (wi, si) in w.iter().zip(&s) {
                let expect = si.avg_loss as f64 / loss_sum;
                prop_assert!((wi - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rho_one_slowest_cluster_gets_zero(s in stats()) {
        prop_assume!(s.len() >= 2);
        // make latencies distinct enough to identify the strict max
        let max_lat = s.iter().map(|x| x.avg_latency).fold(0.0f64, f64::max);
        let w = cluster_weights(&s, 1.0);
        if w.iter().any(|&x| x > 0.0) && s.iter().filter(|x| x.avg_latency == max_lat).count() == 1 {
            let slowest = s.iter().position(|x| x.avg_latency == max_lat).unwrap();
            // unless the uniform fallback kicked in (all-zero θ)
            if w.iter().sum::<f64>() != w.len() as f64 {
                prop_assert_eq!(w[slowest], 0.0);
            }
        }
    }

    #[test]
    fn selection_is_distinct_and_available(
        n_clusters in 1usize..6,
        per_cluster in 1usize..5,
        k in 1usize..12,
        seed in any::<u64>(),
    ) {
        let groups: Vec<Vec<usize>> = (0..n_clusters)
            .map(|c| (0..per_cluster).map(|i| c * per_cluster + i).collect())
            .collect();
        let n = n_clusters * per_cluster;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let infos: Vec<ClientInfo> = (0..n)
            .map(|id| ClientInfo {
                id,
                est_latency: rng.gen_range(0.1..10.0),
                last_loss: rng.gen_range(0.1..5.0),
                n_train: rng.gen_range(10..100),
                participation_count: 0,
            })
            .collect();
        let mut sel = HaccsSelector::new(groups, 0.5, "P(y)");
        let ctx = SelectionContext { epoch: 0, available: &infos, k };
        let chosen = sel.select(&ctx, &mut rng);
        // distinct
        let mut uniq = chosen.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), chosen.len(), "duplicate selections");
        // within bounds and never more than min(k, n)
        prop_assert!(chosen.len() <= k.min(n));
        prop_assert!(chosen.iter().all(|&id| id < n));
        // if k >= n, everyone is selected (all clusters exhaust)
        if k >= n {
            prop_assert_eq!(chosen.len(), n);
        }
    }

    #[test]
    fn dropout_never_selects_unavailable(
        seed in any::<u64>(),
        unavailable in proptest::collection::hash_set(0usize..12, 0..8),
    ) {
        let groups: Vec<Vec<usize>> = vec![(0..6).collect(), (6..12).collect()];
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let infos: Vec<ClientInfo> = (0..12)
            .filter(|id| !unavailable.contains(id))
            .map(|id| ClientInfo {
                id,
                est_latency: rng.gen_range(0.1..10.0),
                last_loss: 1.0,
                n_train: 10,
                participation_count: 0,
            })
            .collect();
        let mut sel = HaccsSelector::new(groups, 0.5, "P(y)");
        let ctx = SelectionContext { epoch: 0, available: &infos, k: 5 };
        let chosen = sel.select(&ctx, &mut rng);
        prop_assert!(chosen.iter().all(|id| !unavailable.contains(id)));
    }
}

proptest! {
    // n can reach 256, so the flat reference is ~32k distances per case —
    // keep the case count modest
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Below the `flat_below` gate the two-level cache runs the flat
    /// §IV-C path verbatim, so the partitions must be **bit-identical**
    /// (same groups, same order) for arbitrary summaries at n ≤ 256 —
    /// not merely equal as sets.
    #[test]
    fn two_level_gate_is_bit_identical_to_flat(
        sums in random_summaries(),
        min_pts in 2usize..=4,
    ) {
        let mut flat = ClusterCache::new(Summarizer::label_dist(), min_pts, ExtractionMethod::Auto);
        let mut two = ClusterCache::two_level(
            Summarizer::label_dist(),
            min_pts,
            ExtractionMethod::Auto,
            TwoLevelConfig { flat_below: 1024, ..TwoLevelConfig::default() },
        );
        for (id, s) in sums.iter().enumerate() {
            flat.add_client(id, s.clone());
            two.add_client(id, s.clone());
        }
        prop_assert!(!two.is_bucketed(), "n <= 256 must stay under the 1024 gate");
        prop_assert_eq!(two.recluster(), flat.recluster());

        // churn keeps them locked together
        let evict = sums.len() / 2;
        flat.remove_client(evict);
        two.remove_client(evict);
        prop_assert_eq!(two.recluster(), flat.recluster());
    }

    /// Forced-bucketed mode (`flat_below: 0`) must recover the flat
    /// partition as a set of groups whenever the summaries are
    /// well-separated relative to the sketch quantization — for every
    /// coarse bucket count.
    #[test]
    fn forced_bucketed_matches_flat_across_bucket_counts(
        (sums, owner) in separated_summaries(),
        coarse_levels in 2u16..=16,
    ) {
        // 2 groups × 2 members is below what the flat reference itself can
        // resolve (no reachability valley in 4 points) — skip that corner
        prop_assume!(sums.len() >= 6);
        let mut flat = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        let mut two = ClusterCache::two_level(
            Summarizer::label_dist(),
            2,
            ExtractionMethod::Auto,
            TwoLevelConfig { coarse_levels, flat_below: 0, ..TwoLevelConfig::default() },
        );
        for (id, s) in sums.iter().enumerate() {
            flat.add_client(id, s.clone());
            two.add_client(id, s.clone());
        }
        prop_assert!(two.is_bucketed());
        let groups_two = normalized(two.recluster());
        prop_assert_eq!(&groups_two, &normalized(flat.recluster()));

        // and both must equal the ground-truth grouping: every one-hot
        // group is a cluster
        let n_groups = owner.iter().max().unwrap() + 1;
        let mut truth: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
        for (id, &g) in owner.iter().enumerate() {
            truth[g].push(id);
        }
        prop_assert_eq!(groups_two, normalized(truth));
    }
}
