//! Inclusion telemetry for the paper's bias analysis (§V-E).
//!
//! Table III reports, per cluster, the fraction of member devices that were
//! included in training at least once over 200 epochs; Fig. 11 compares
//! the accuracy of each cluster's fastest and slowest devices.

use haccs_fedsim::persist::{PersistError, SnapshotReader, SnapshotWriter};
use std::collections::HashSet;

/// Tracks which members of each cluster have ever been selected.
#[derive(Debug, Clone, Default)]
pub struct InclusionTelemetry {
    /// cluster → members ever included
    included: Vec<HashSet<usize>>,
    /// cluster → full membership
    members: Vec<Vec<usize>>,
    /// records dropped because the (cluster, client) pair was stale —
    /// e.g. an id recorded against a pre-`recluster` membership view
    dropped: usize,
}

impl InclusionTelemetry {
    /// Telemetry for the given cluster membership.
    pub fn new(groups: &[Vec<usize>]) -> Self {
        InclusionTelemetry {
            included: vec![HashSet::new(); groups.len()],
            members: groups.to_vec(),
            dropped: 0,
        }
    }

    /// Records that `client` (a member of cluster `cluster`) trained.
    ///
    /// The membership check is unconditional: a stale pair — out-of-range
    /// cluster id or a client that is no longer (or never was) a member,
    /// both of which arise when a caller races a `recluster` — is ignored
    /// and counted in [`InclusionTelemetry::dropped_records`] instead of
    /// panicking with a bare index error mid-run.
    pub fn record(&mut self, cluster: usize, client: usize) {
        match self.members.get(cluster) {
            Some(members) if members.contains(&client) => {
                self.included[cluster].insert(client);
            }
            _ => self.dropped += 1,
        }
    }

    /// Records ignored by [`InclusionTelemetry::record`] because the
    /// cluster id was out of range or the client was not a member.
    pub fn dropped_records(&self) -> usize {
        self.dropped
    }

    /// Fraction of each cluster's members included at least once.
    pub fn inclusion_fractions(&self) -> Vec<f32> {
        self.members
            .iter()
            .zip(&self.included)
            .map(|(m, inc)| if m.is_empty() { 0.0 } else { inc.len() as f32 / m.len() as f32 })
            .collect()
    }

    /// Table III histogram: counts of clusters with inclusion in
    /// `[0, 50%)`, `[50%, 75%)` and `[75%, 100%]`.
    pub fn table_iii_histogram(&self) -> [usize; 3] {
        let mut out = [0usize; 3];
        for f in self.inclusion_fractions() {
            if f < 0.5 {
                out[0] += 1;
            } else if f < 0.75 {
                out[1] += 1;
            } else {
                out[2] += 1;
            }
        }
        out
    }

    /// Number of clusters tracked.
    pub fn n_clusters(&self) -> usize {
        self.members.len()
    }

    /// Appends the full telemetry state to a snapshot payload (inclusion
    /// sets are written id-sorted, so equal states serialize to equal
    /// bytes).
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.members.len());
        for m in &self.members {
            w.put_usizes(m);
        }
        for inc in &self.included {
            let mut ids: Vec<usize> = inc.iter().copied().collect();
            ids.sort_unstable();
            w.put_usizes(&ids);
        }
        w.put_usize(self.dropped);
    }

    /// Reads back what [`InclusionTelemetry::save_state`] wrote.
    pub fn load_state(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        let n = r.get_usize()?;
        let mut members = Vec::with_capacity(n);
        for _ in 0..n {
            members.push(r.get_usizes()?);
        }
        let mut included = Vec::with_capacity(n);
        for _ in 0..n {
            included.push(r.get_usizes()?.into_iter().collect::<HashSet<usize>>());
        }
        let dropped = r.get_usize()?;
        Ok(InclusionTelemetry { included, members, dropped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_track_inclusion() {
        let mut t = InclusionTelemetry::new(&[vec![0, 1, 2, 3], vec![4, 5]]);
        t.record(0, 0);
        t.record(0, 1);
        t.record(0, 0); // repeat doesn't double-count
        t.record(1, 4);
        assert_eq!(t.inclusion_fractions(), vec![0.5, 0.5]);
    }

    #[test]
    fn table_iii_buckets() {
        let mut t = InclusionTelemetry::new(&[vec![0, 1], vec![2, 3, 4, 5], vec![6]]);
        // cluster 0: 100%, cluster 1: 25%, cluster 2: 100%
        t.record(0, 0);
        t.record(0, 1);
        t.record(1, 2);
        t.record(2, 6);
        assert_eq!(t.table_iii_histogram(), [1, 0, 2]);
    }

    #[test]
    fn boundary_is_inclusive_at_75() {
        let mut t = InclusionTelemetry::new(&[vec![0, 1, 2, 3]]);
        for c in 0..3 {
            t.record(0, c);
        }
        assert_eq!(t.table_iii_histogram(), [0, 0, 1]); // 75% → top bucket
    }

    #[test]
    fn stale_records_are_dropped_not_panicked() {
        let mut t = InclusionTelemetry::new(&[vec![0, 1], vec![2]]);
        t.record(5, 0); // out-of-range cluster (stale id after recluster)
        t.record(0, 2); // client belongs to another cluster
        t.record(1, 99); // unknown client
        assert_eq!(t.dropped_records(), 3);
        assert_eq!(t.inclusion_fractions(), vec![0.0, 0.0]);
        t.record(0, 1);
        assert_eq!(t.inclusion_fractions(), vec![0.5, 0.0]);
        assert_eq!(t.dropped_records(), 3);
    }
}
