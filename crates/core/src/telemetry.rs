//! Inclusion telemetry for the paper's bias analysis (§V-E).
//!
//! Table III reports, per cluster, the fraction of member devices that were
//! included in training at least once over 200 epochs; Fig. 11 compares
//! the accuracy of each cluster's fastest and slowest devices.

use std::collections::HashSet;

/// Tracks which members of each cluster have ever been selected.
#[derive(Debug, Clone, Default)]
pub struct InclusionTelemetry {
    /// cluster → members ever included
    included: Vec<HashSet<usize>>,
    /// cluster → full membership
    members: Vec<Vec<usize>>,
}

impl InclusionTelemetry {
    /// Telemetry for the given cluster membership.
    pub fn new(groups: &[Vec<usize>]) -> Self {
        InclusionTelemetry {
            included: vec![HashSet::new(); groups.len()],
            members: groups.to_vec(),
        }
    }

    /// Records that `client` (a member of cluster `cluster`) trained.
    pub fn record(&mut self, cluster: usize, client: usize) {
        debug_assert!(
            self.members[cluster].contains(&client),
            "client {client} is not a member of cluster {cluster}"
        );
        self.included[cluster].insert(client);
    }

    /// Fraction of each cluster's members included at least once.
    pub fn inclusion_fractions(&self) -> Vec<f32> {
        self.members
            .iter()
            .zip(&self.included)
            .map(|(m, inc)| if m.is_empty() { 0.0 } else { inc.len() as f32 / m.len() as f32 })
            .collect()
    }

    /// Table III histogram: counts of clusters with inclusion in
    /// `[0, 50%)`, `[50%, 75%)` and `[75%, 100%]`.
    pub fn table_iii_histogram(&self) -> [usize; 3] {
        let mut out = [0usize; 3];
        for f in self.inclusion_fractions() {
            if f < 0.5 {
                out[0] += 1;
            } else if f < 0.75 {
                out[1] += 1;
            } else {
                out[2] += 1;
            }
        }
        out
    }

    /// Number of clusters tracked.
    pub fn n_clusters(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_track_inclusion() {
        let mut t = InclusionTelemetry::new(&[vec![0, 1, 2, 3], vec![4, 5]]);
        t.record(0, 0);
        t.record(0, 1);
        t.record(0, 0); // repeat doesn't double-count
        t.record(1, 4);
        assert_eq!(t.inclusion_fractions(), vec![0.5, 0.5]);
    }

    #[test]
    fn table_iii_buckets() {
        let mut t = InclusionTelemetry::new(&[vec![0, 1], vec![2, 3, 4, 5], vec![6]]);
        // cluster 0: 100%, cluster 1: 25%, cluster 2: 100%
        t.record(0, 0);
        t.record(0, 1);
        t.record(1, 2);
        t.record(2, 6);
        assert_eq!(t.table_iii_histogram(), [1, 0, 2]);
    }

    #[test]
    fn boundary_is_inclusive_at_75() {
        let mut t = InclusionTelemetry::new(&[vec![0, 1, 2, 3]]);
        for c in 0..3 {
            t.record(0, c);
        }
        assert_eq!(t.table_iii_histogram(), [0, 0, 1]); // 75% → top bucket
    }
}
