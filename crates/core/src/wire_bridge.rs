//! Lossless conversion between the in-memory summary types
//! ([`haccs_summary::ClientSummary`]) and their wire representation
//! ([`haccs_wire::WireSummary`]), plus the §IV-C re-clustering entry point
//! the coordinator calls when membership changes.
//!
//! The encoding rule mirrors the protocol docs: a `P(y)` summary is one
//! histogram with an **empty** prevalence vector; a `P(X|y)` summary is
//! one histogram per class (absent classes send all-zero bins) plus the
//! prevalence vector. Bins cross the wire already normalized and are
//! rehydrated verbatim ([`haccs_summary::Histogram::from_normalized`]),
//! so `from_wire(to_wire(s)) == s` bit-for-bit — the §IV-A Hellinger
//! distances computed server-side from wire summaries equal the ones
//! computed from the originals.

use crate::clusters::{build_clusters, ExtractionMethod};
use haccs_summary::{ClientSummary, Histogram, Summarizer};
use haccs_wire::WireSummary;

/// Encodes a summary for the wire.
pub fn summary_to_wire(summary: &ClientSummary) -> WireSummary {
    match summary {
        ClientSummary::LabelDist(h) => {
            WireSummary { histograms: vec![h.bins().to_vec()], prevalence: Vec::new() }
        }
        ClientSummary::CondDist { hists, prevalence } => WireSummary {
            histograms: hists.iter().map(|h| h.bins().to_vec()).collect(),
            prevalence: prevalence.clone(),
        },
    }
}

/// Rehydrates a summary received off the wire. An empty prevalence vector
/// marks a `P(y)` summary (which must then carry exactly one histogram);
/// anything else is `P(X|y)` with one histogram per class.
pub fn summary_from_wire(wire: &WireSummary) -> ClientSummary {
    if wire.prevalence.is_empty() {
        assert_eq!(wire.histograms.len(), 1, "P(y) summary must carry exactly one histogram");
        ClientSummary::LabelDist(Histogram::from_normalized(wire.histograms[0].clone()))
    } else {
        assert_eq!(
            wire.histograms.len(),
            wire.prevalence.len(),
            "P(X|y) summary needs one histogram per class"
        );
        ClientSummary::CondDist {
            hists: wire
                .histograms
                .iter()
                .map(|bins| Histogram::from_normalized(bins.clone()))
                .collect(),
            prevalence: wire.prevalence.clone(),
        }
    }
}

/// The §IV-C re-clustering hook, wire edition: clusters the summaries the
/// coordinator's registry holds (as received in `Join`/`SummaryUpdate`
/// frames) and returns schedulable groups of **client ids**. `entries`
/// need not be contiguous or sorted — ids index the live registry, and
/// cluster-local indices are mapped back before returning.
pub fn cluster_wire_summaries(
    summarizer: &Summarizer,
    entries: &[(usize, WireSummary)],
    min_pts: usize,
    extraction: ExtractionMethod,
) -> Vec<Vec<usize>> {
    if entries.is_empty() {
        return Vec::new();
    }
    let summaries: Vec<ClientSummary> = entries.iter().map(|(_, w)| summary_from_wire(w)).collect();
    let (_, groups) = build_clusters(summarizer, &summaries, min_pts, extraction);
    groups.into_iter().map(|g| g.into_iter().map(|local| entries[local].0).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_data::{partition, FederatedDataset, SynthVision};

    fn label_summary(bins: &[f32]) -> ClientSummary {
        ClientSummary::LabelDist(Histogram::from_normalized(bins.to_vec()))
    }

    #[test]
    fn label_dist_roundtrips_bit_for_bit() {
        // 1/3 is not exactly representable; from_counts would re-normalize
        // and perturb it, from_normalized must not
        let s = label_summary(&[1.0 / 3.0, 1.0 / 3.0, 1.0 - 2.0 / 3.0]);
        let w = summary_to_wire(&s);
        assert!(w.prevalence.is_empty());
        assert_eq!(summary_from_wire(&w), s);
    }

    #[test]
    fn cond_dist_roundtrips_with_null_classes() {
        let s = ClientSummary::CondDist {
            hists: vec![
                Histogram::from_normalized(vec![0.25, 0.75]),
                Histogram::from_normalized(vec![0.0, 0.0]), // absent class
            ],
            prevalence: vec![1.0, 0.0],
        };
        let w = summary_to_wire(&s);
        assert_eq!(w.histograms.len(), 2);
        assert_eq!(summary_from_wire(&w), s);
    }

    #[test]
    fn roundtrip_preserves_distances() {
        let s = Summarizer::label_dist();
        let a = label_summary(&[0.7, 0.3, 0.0]);
        let b = label_summary(&[0.1, 0.2, 0.7]);
        let a2 = summary_from_wire(&summary_to_wire(&a));
        let b2 = summary_from_wire(&summary_to_wire(&b));
        assert_eq!(s.distance_between(&a, &b), s.distance_between(&a2, &b2));
    }

    #[test]
    fn wire_clustering_maps_back_to_client_ids() {
        // 2 groups of 3 clients with disjoint labels; registry ids are
        // deliberately sparse and unsorted
        let gen = SynthVision::mnist_like(4, 8, 0);
        let mut specs = Vec::new();
        for g in 0..2 {
            for _ in 0..3 {
                let mut w = vec![0.0f32; 4];
                w[2 * g] = 0.5;
                w[2 * g + 1] = 0.5;
                specs.push(partition::ClientSpec {
                    label_weights: w,
                    n_train: 120,
                    n_test: 0,
                    rotation_deg: 0.0,
                    brightness: 0.0,
                    contrast: 1.0,
                    group: Some(g),
                });
            }
        }
        let fed = FederatedDataset::materialize(&gen, &specs, 0);
        let s = Summarizer::label_dist();
        let sums = crate::clusters::summarize_federation(&fed, &s, 0);
        let ids = [10usize, 3, 7, 22, 14, 9]; // first three = group 0
        let entries: Vec<(usize, WireSummary)> =
            ids.iter().zip(&sums).map(|(&id, sum)| (id, summary_to_wire(sum))).collect();
        let groups = cluster_wire_summaries(&s, &entries, 2, ExtractionMethod::Auto);
        assert_eq!(groups.len(), 2, "groups: {groups:?}");
        let mut flat: Vec<usize> = groups.iter().flatten().copied().collect();
        flat.sort_unstable();
        let mut want = ids.to_vec();
        want.sort_unstable();
        assert_eq!(flat, want, "every id schedulable exactly once");
        for grp in &groups {
            let g0 = grp.iter().filter(|id| [10, 3, 7].contains(id)).count();
            assert!(g0 == 0 || g0 == grp.len(), "mixed ground-truth groups: {groups:?}");
        }
    }

    #[test]
    fn empty_registry_clusters_to_nothing() {
        let s = Summarizer::label_dist();
        assert!(cluster_wire_summaries(&s, &[], 2, ExtractionMethod::Auto).is_empty());
    }

    #[test]
    #[should_panic(expected = "exactly one histogram")]
    fn malformed_py_summary_rejected() {
        summary_from_wire(&WireSummary {
            histograms: vec![vec![0.5, 0.5], vec![1.0]],
            prevalence: vec![],
        });
    }
}
