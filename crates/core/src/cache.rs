//! [`ClusterCache`]: the incremental §IV-C re-clustering state shared by
//! both runtimes.
//!
//! It pairs a [`DistanceCache`] (condensed pairwise-distance matrix, one
//! recomputed row per churn event) with a [`WarmOptics`] (incrementally
//! maintained sorted rows + prior ordering) and applies the configured
//! [`ExtractionMethod`] on top, producing the same schedulable id groups
//! as the from-scratch [`crate::clusters::build_clusters`] path —
//! **bit-identically**, at every churn step. The full-rebuild path stays
//! in the tree as the reference the parity suite (and the recluster
//! bench) compares against.
//!
//! Entry points per runtime:
//!
//! * the message-driven coordinator diffs its registry's wire summaries
//!   through [`ClusterCache::sync_wire`] (Join/Leave/eviction/drift all
//!   reduce to add/remove/update),
//! * the in-process loop engine uses [`engine_add_client`] /
//!   [`engine_replace_client_data`], which keep the cache and the
//!   [`FedSim`] membership in lockstep.

use crate::clusters::{client_summary_seed, summarize_federation, ExtractionMethod};
use crate::wire_bridge::summary_from_wire;
use haccs_cluster::{BucketedWarmOptics, WarmOptics};
use haccs_data::{ClientData, FederatedDataset};
use haccs_fedsim::persist::{PersistError, SnapshotReader, SnapshotWriter};
use haccs_fedsim::FedSim;
use haccs_obs::Recorder;
use haccs_summary::{sketch, ClientSummary, DistanceCache, SketchKey, Summarizer};
use haccs_sysmodel::DeviceProfile;
use haccs_wire::WireSummary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Configuration of the two-level (sketch-bucketed) clustering mode
/// (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoLevelConfig {
    /// Quantization resolution of the coarse sketch partitioning the
    /// federation into independently clustered buckets.
    pub coarse_levels: u16,
    /// Quantization resolution of the fine sketch partitioning each
    /// bucket into cells that share one representative.
    pub fine_levels: u16,
    /// Below this many cached clients the flat O(n²) path runs verbatim
    /// (bit-identical to [`ClusterCache::new`]); reaching it promotes the
    /// cache — one way — to the bucketed representation. `0` starts
    /// bucketed immediately.
    pub flat_below: usize,
}

impl Default for TwoLevelConfig {
    fn default() -> Self {
        TwoLevelConfig { coarse_levels: 4, fine_levels: 32, flat_below: 1024 }
    }
}

/// One coarse bucket: an exact condensed distance matrix over the
/// bucket's cell representatives, plus the cells themselves.
#[derive(Debug)]
struct Bucket {
    /// Distances between cell representatives (exact Hellinger).
    dist: DistanceCache,
    /// Fine sketch key → ascending member ids. The representative is the
    /// lowest id, so membership (not arrival order) determines it.
    cells: BTreeMap<SketchKey, Vec<usize>>,
}

/// The promoted two-level state: every cached summary, its sketch keys,
/// and the per-bucket representative matrices + warm OPTICS.
#[derive(Debug)]
struct Bucketed {
    summarizer: Summarizer,
    /// All cached ids, ascending ([`ClusterCache::ids`] in this mode).
    ids: Vec<usize>,
    summaries: BTreeMap<usize, ClientSummary>,
    /// id → (coarse bucket key, fine cell key).
    keys: BTreeMap<usize, (SketchKey, SketchKey)>,
    buckets: BTreeMap<SketchKey, Bucket>,
    warm: BucketedWarmOptics<SketchKey>,
}

impl Bucketed {
    fn new(summarizer: Summarizer, min_pts: usize) -> Self {
        Bucketed {
            summarizer,
            ids: Vec::new(),
            summaries: BTreeMap::new(),
            keys: BTreeMap::new(),
            buckets: BTreeMap::new(),
            warm: BucketedWarmOptics::new(f32::INFINITY, min_pts),
        }
    }

    fn add(&mut self, id: usize, summary: ClientSummary, cfg: &TwoLevelConfig) {
        let coarse = sketch(&summary, cfg.coarse_levels);
        let fine = sketch(&summary, cfg.fine_levels);
        let i = self.ids.binary_search(&id).expect_err("client already cached");
        self.ids.insert(i, id);
        let bucket = self.buckets.entry(coarse.clone()).or_insert_with(|| Bucket {
            dist: DistanceCache::new(self.summarizer),
            cells: BTreeMap::new(),
        });
        match bucket.cells.get_mut(&fine) {
            Some(members) => {
                let pos = members.binary_search(&id).expect_err("client already in cell");
                members.insert(pos, id);
                if pos == 0 {
                    // the newcomer has the lowest id: it takes over as the
                    // cell representative, so its (exact) summary replaces
                    // the old representative's row in the bucket matrix
                    let old_rep = members[1];
                    let (p, row) = bucket.dist.remove_client(old_rep);
                    self.warm.remove(&coarse, p, &row);
                    let (p, row) = bucket.dist.add_client(id, summary.clone());
                    self.warm.insert(coarse.clone(), p, &row);
                }
            }
            None => {
                bucket.cells.insert(fine.clone(), vec![id]);
                let (p, row) = bucket.dist.add_client(id, summary.clone());
                self.warm.insert(coarse.clone(), p, &row);
            }
        }
        self.keys.insert(id, (coarse, fine));
        self.summaries.insert(id, summary);
    }

    fn remove(&mut self, id: usize) {
        let (coarse, fine) = self.keys.remove(&id).expect("client not cached");
        self.summaries.remove(&id);
        let i = self.ids.binary_search(&id).expect("client not cached");
        self.ids.remove(i);
        let bucket = self.buckets.get_mut(&coarse).expect("bucket missing for cached key");
        let members = bucket.cells.get_mut(&fine).expect("cell missing for cached key");
        let pos = members.binary_search(&id).expect("client not in its cell");
        members.remove(pos);
        if pos == 0 {
            // the representative departs: drop its matrix row and, if the
            // cell survives, promote the next-lowest member
            let (p, row) = bucket.dist.remove_client(id);
            self.warm.remove(&coarse, p, &row);
            if members.is_empty() {
                bucket.cells.remove(&fine);
            } else {
                let new_rep = members[0];
                let s = self.summaries[&new_rep].clone();
                let (p, row) = bucket.dist.add_client(new_rep, s);
                self.warm.insert(coarse.clone(), p, &row);
            }
        }
        if bucket.cells.is_empty() {
            self.buckets.remove(&coarse);
        }
    }

    fn cell_count(&self) -> usize {
        self.buckets.values().map(|b| b.cells.len()).sum()
    }
}

/// Incremental clustering state: distance cache + warm-start OPTICS +
/// extraction. One instance serves a whole training run across arbitrary
/// membership churn.
///
/// Two operating modes share this type (DESIGN.md §15):
///
/// * **flat** (the [`ClusterCache::new`] default): one exact condensed
///   matrix over every client — bit-identical to the from-scratch
///   [`crate::clusters::build_clusters`] path at any size;
/// * **two-level** ([`ClusterCache::two_level`]): below
///   [`TwoLevelConfig::flat_below`] the flat path runs verbatim; at the
///   threshold the cache promotes (one way) to coarse sketch buckets of
///   fine sketch cells, clustering exact Hellinger distances between one
///   representative per cell — Σ_b R_b² work bounded by data diversity
///   instead of O(n²) in the client count.
#[derive(Debug)]
pub struct ClusterCache {
    dist: DistanceCache,
    warm: WarmOptics,
    extraction: ExtractionMethod,
    obs: Recorder,
    two_level: Option<TwoLevel>,
}

#[derive(Debug)]
struct TwoLevel {
    cfg: TwoLevelConfig,
    /// `None` until the membership reaches `cfg.flat_below`.
    bucketed: Option<Bucketed>,
}

impl ClusterCache {
    /// Empty cache. `min_pts` and `extraction` match the arguments the
    /// from-scratch [`crate::clusters::build_clusters`] call would take;
    /// the OPTICS generating radius is `f32::INFINITY`, HACCS's default.
    pub fn new(summarizer: Summarizer, min_pts: usize, extraction: ExtractionMethod) -> Self {
        ClusterCache {
            dist: DistanceCache::new(summarizer),
            warm: WarmOptics::new(f32::INFINITY, min_pts),
            extraction,
            obs: Recorder::disabled(),
            two_level: None,
        }
    }

    /// Empty cache in two-level mode: flat (bit-identical to
    /// [`ClusterCache::new`]) below `cfg.flat_below` clients, sketch-
    /// bucketed at and above it.
    pub fn two_level(
        summarizer: Summarizer,
        min_pts: usize,
        extraction: ExtractionMethod,
        cfg: TwoLevelConfig,
    ) -> Self {
        let bucketed = (cfg.flat_below == 0).then(|| Bucketed::new(summarizer, min_pts));
        let mut cache = ClusterCache::new(summarizer, min_pts, extraction);
        cache.two_level = Some(TwoLevel { cfg, bucketed });
        cache
    }

    /// Attaches an observability recorder. Instrumentation only *reads*
    /// cache state — [`ClusterCache::recluster`] output is bit-identical
    /// with the recorder enabled or disabled.
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Replaces the recorder on an already-constructed cache (the
    /// coordinator and engine hand theirs down after construction).
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// The promoted two-level state, if this cache is past its threshold.
    fn bucketed(&self) -> Option<&Bucketed> {
        self.two_level.as_ref().and_then(|tl| tl.bucketed.as_ref())
    }

    /// The two-level configuration, when constructed in that mode.
    pub fn two_level_config(&self) -> Option<&TwoLevelConfig> {
        self.two_level.as_ref().map(|tl| &tl.cfg)
    }

    /// True once the cache has promoted to the bucketed representation.
    pub fn is_bucketed(&self) -> bool {
        self.bucketed().is_some()
    }

    /// Live coarse buckets (0 while flat).
    pub fn bucket_count(&self) -> usize {
        self.bucketed().map_or(0, |b| b.buckets.len())
    }

    /// Live fine cells across every bucket (0 while flat).
    pub fn cell_count(&self) -> usize {
        self.bucketed().map_or(0, |b| b.cell_count())
    }

    /// Number of cached clients.
    pub fn len(&self) -> usize {
        match self.bucketed() {
            Some(b) => b.ids.len(),
            None => self.dist.len(),
        }
    }

    /// True when no clients are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cached client ids, ascending.
    pub fn ids(&self) -> &[usize] {
        match self.bucketed() {
            Some(b) => &b.ids,
            None => self.dist.ids(),
        }
    }

    /// True if `id` is cached.
    pub fn contains(&self, id: usize) -> bool {
        match self.bucketed() {
            Some(b) => b.summaries.contains_key(&id),
            None => self.dist.contains(id),
        }
    }

    /// The cached summary of `id`, in either mode.
    pub fn cached_summary(&self, id: usize) -> Option<&ClientSummary> {
        match self.bucketed() {
            Some(b) => b.summaries.get(&id),
            None => self.dist.summary(id),
        }
    }

    /// The summarizer distances are computed with.
    pub fn summarizer(&self) -> &Summarizer {
        self.dist.summarizer()
    }

    /// The underlying flat distance cache (read-only; edits must flow
    /// through this type so the warm OPTICS state stays consistent).
    /// Empty once a two-level cache has promoted to buckets.
    pub fn distances(&self) -> &DistanceCache {
        &self.dist
    }

    /// A client joined: computes its distance row (the only summary
    /// distances evaluated) and splices it into the warm OPTICS state. In
    /// bucketed mode the row spans only the client's bucket's cell
    /// representatives — and only if it founds (or takes over) a cell.
    pub fn add_client(&mut self, id: usize, summary: ClientSummary) {
        if let Some(tl) = &mut self.two_level {
            if let Some(b) = &mut tl.bucketed {
                b.add(id, summary, &tl.cfg);
                return;
            }
        }
        let (pos, row) = self.dist.add_client(id, summary);
        self.warm.insert(pos, &row);
        self.maybe_promote();
    }

    /// A client left (graceful `Leave` or eviction). No distances are
    /// recomputed in flat mode; in bucketed mode, only a departing cell
    /// representative costs its successor one recomputed bucket row.
    pub fn remove_client(&mut self, id: usize) {
        if let Some(tl) = &mut self.two_level {
            if let Some(b) = &mut tl.bucketed {
                b.remove(id);
                return;
            }
        }
        let (pos, row) = self.dist.remove_client(id);
        self.warm.remove(pos, &row);
    }

    /// A client's data drifted (§IV-C): recomputes its row only. In
    /// bucketed mode the client is re-sketched, since drift can move it
    /// across cells or buckets.
    pub fn update_summary(&mut self, id: usize, summary: ClientSummary) {
        if let Some(tl) = &mut self.two_level {
            if let Some(b) = &mut tl.bucketed {
                b.remove(id);
                b.add(id, summary, &tl.cfg);
                return;
            }
        }
        let (pos, old_row, new_row) = self.dist.update_summary(id, summary);
        self.warm.update(pos, &old_row, &new_row);
    }

    /// One-way flat → bucketed promotion at the configured threshold:
    /// every cached summary is re-inserted under its sketch keys and the
    /// flat accelerators are reset to empty.
    fn maybe_promote(&mut self) {
        let Some(tl) = &self.two_level else { return };
        if tl.bucketed.is_some() || self.dist.len() < tl.cfg.flat_below {
            return;
        }
        let cfg = tl.cfg;
        let min_pts = self.warm.min_pts();
        let summarizer = *self.dist.summarizer();
        let pairs: Vec<(usize, ClientSummary)> = self
            .dist
            .ids()
            .iter()
            .map(|&id| (id, self.dist.summary(id).unwrap().clone()))
            .collect();
        let mut b = Bucketed::new(summarizer, min_pts);
        for (id, s) in pairs {
            b.add(id, s, &cfg);
        }
        self.dist = DistanceCache::new(summarizer);
        self.warm = WarmOptics::new(f32::INFINITY, min_pts);
        self.two_level.as_mut().unwrap().bucketed = Some(b);
    }

    /// Seeds the cache with every client of a federation, using the same
    /// per-client DP noise streams as
    /// [`summarize_federation`] — so engine-side
    /// construction and cache construction agree bit-for-bit.
    pub fn insert_federation(&mut self, fed: &FederatedDataset, summary_seed: u64) {
        let summarizer = *self.dist.summarizer();
        for (i, s) in summarize_federation(fed, &summarizer, summary_seed).into_iter().enumerate() {
            self.add_client(i, s);
        }
    }

    /// Diffs the registry's current `(id, summary)` membership view
    /// against the cache and applies the minimal add/remove/update set.
    /// This is the coordinator-facing entry point: the §IV-C hook hands
    /// it `member_summaries()` and every kind of churn — mid-training
    /// joins, graceful leaves, evictions, drift — reduces to row edits.
    pub fn sync_wire(&mut self, entries: &[(usize, WireSummary)]) {
        let departed: Vec<usize> = {
            let mut present = entries.iter().map(|(id, _)| *id).collect::<Vec<_>>();
            present.sort_unstable();
            self.ids().iter().copied().filter(|id| present.binary_search(id).is_err()).collect()
        };
        for id in departed {
            self.remove_client(id);
        }
        for (id, wire) in entries {
            let summary = summary_from_wire(wire);
            match self.cached_summary(*id) {
                None => self.add_client(*id, summary),
                Some(cached) if *cached != summary => self.update_summary(*id, summary),
                Some(_) => {}
            }
        }
    }

    /// Re-clusters over the cached state: warm-start OPTICS (cold only on
    /// the edited rows' core distances; the prior ordering is reused
    /// outright when nothing changed) → extraction → schedulable groups
    /// of **client ids**. Bit-identical to
    /// `build_clusters(...).1` over the id-sorted summaries.
    pub fn recluster(&mut self) -> Vec<Vec<usize>> {
        if self.is_bucketed() {
            return self.recluster_bucketed();
        }
        if self.dist.is_empty() {
            return Vec::new();
        }
        let mut span = self.obs.span("cluster.recluster").u("members", self.dist.len() as u64);
        let warm_before = self.warm.stats();
        let dense = self.dist.dense();
        let o = self.warm.run(&dense);
        let clustering = self.extraction.extract(o);
        let warm_after = self.warm.stats();
        let groups: Vec<Vec<usize>> = clustering
            .to_schedulable_groups()
            .into_iter()
            .map(|g| g.into_iter().map(|local| self.dist.ids()[local]).collect())
            .collect();
        span.push_u("groups", groups.len() as u64);
        span.push_u("warm_hit", (warm_after.cached_reuses > warm_before.cached_reuses) as u64);
        span.finish();
        let d = self.dist.stats();
        self.obs.gauge("cluster_distances_computed", d.distances_computed as f64);
        self.obs.gauge("cluster_distance_entries_reused", d.entries_reused as f64);
        self.obs.gauge("cluster_cache_edits", d.edits as f64);
        self.obs.gauge("cluster_optics_expansions", warm_after.expansions as f64);
        self.obs.gauge("cluster_optics_cached_reuses", warm_after.cached_reuses as f64);
        groups
    }

    /// The bucketed §IV-C path: exact warm OPTICS per coarse bucket over
    /// that bucket's cell representatives, each representative group
    /// expanded to the union of its cells' members. Groups extracted as
    /// clusters come first (across buckets, in bucket-key order), then
    /// the noise-derived groups — mirroring
    /// [`haccs_cluster::Clustering::to_schedulable_groups`]'s clusters-
    /// then-noise layout. Deterministic for any insertion history,
    /// because buckets, cells and members are all kept in sorted order.
    fn recluster_bucketed(&mut self) -> Vec<Vec<usize>> {
        let extraction = self.extraction;
        let b = self
            .two_level
            .as_mut()
            .and_then(|tl| tl.bucketed.as_mut())
            .expect("recluster_bucketed on a flat cache");
        if b.ids.is_empty() {
            return Vec::new();
        }
        let mut span = self.obs.span("cluster.recluster").u("members", b.ids.len() as u64);
        let warm_before = b.warm.stats();
        let mut cluster_groups: Vec<Vec<usize>> = Vec::new();
        let mut noise_groups: Vec<Vec<usize>> = Vec::new();
        let mut dist_stats = haccs_summary::DistanceCacheStats::default();
        for (key, bucket) in b.buckets.iter_mut() {
            let dense = bucket.dist.dense();
            let o = b.warm.run(key, &dense);
            let clustering = extraction.extract(o);
            let n_clusters = clustering.n_clusters();
            for (gi, reps) in clustering.to_schedulable_groups().into_iter().enumerate() {
                let mut members: Vec<usize> = Vec::new();
                for local in reps {
                    let rep = bucket.dist.ids()[local];
                    let (_, fine) = &b.keys[&rep];
                    members.extend(bucket.cells[fine].iter().copied());
                }
                members.sort_unstable();
                if gi < n_clusters {
                    cluster_groups.push(members);
                } else {
                    noise_groups.push(members);
                }
            }
            let s = bucket.dist.stats();
            dist_stats.distances_computed += s.distances_computed;
            dist_stats.entries_reused += s.entries_reused;
            dist_stats.edits += s.edits;
        }
        let warm_after = b.warm.stats();
        let buckets = b.buckets.len();
        let cells = b.cell_count();
        let mut groups = cluster_groups;
        groups.extend(noise_groups);
        span.push_u("groups", groups.len() as u64);
        span.push_u("buckets", buckets as u64);
        span.push_u("cells", cells as u64);
        span.push_u("warm_hit", (warm_after.cached_reuses > warm_before.cached_reuses) as u64);
        span.finish();
        self.obs.gauge("cluster_two_level_buckets", buckets as f64);
        self.obs.gauge("cluster_two_level_cells", cells as f64);
        self.obs.gauge("cluster_distances_computed", dist_stats.distances_computed as f64);
        self.obs.gauge("cluster_distance_entries_reused", dist_stats.entries_reused as f64);
        self.obs.gauge("cluster_cache_edits", dist_stats.edits as f64);
        self.obs.gauge("cluster_optics_expansions", warm_after.expansions as f64);
        self.obs.gauge("cluster_optics_cached_reuses", warm_after.cached_reuses as f64);
        groups
    }

    /// Snapshot of the distance-cache reuse counters (observability
    /// only). Aggregated across buckets in two-level mode.
    pub fn distance_stats(&self) -> haccs_summary::DistanceCacheStats {
        match self.bucketed() {
            Some(b) => {
                let mut out = haccs_summary::DistanceCacheStats::default();
                for bucket in b.buckets.values() {
                    let s = bucket.dist.stats();
                    out.distances_computed += s.distances_computed;
                    out.entries_reused += s.entries_reused;
                    out.edits += s.edits;
                }
                out
            }
            None => self.dist.stats(),
        }
    }

    /// Snapshot of the warm-OPTICS expansion/reuse counters
    /// (observability only). Aggregated across buckets in two-level mode.
    pub fn warm_stats(&self) -> haccs_cluster::WarmOpticsStats {
        match self.bucketed() {
            Some(b) => b.warm.stats(),
            None => self.warm.stats(),
        }
    }

    /// Appends the cache state to a snapshot payload: `min_pts` as a
    /// fingerprint, a mode byte, then the mode-specific state. Flat (and
    /// not-yet-promoted two-level) caches write the full
    /// [`DistanceCache`] (ids, summaries, condensed matrix — all
    /// verbatim); a promoted two-level cache writes its `(id, summary)`
    /// pairs in ascending id order, since every sketch key, bucket, cell
    /// and representative distance is a deterministic pure function of
    /// that set. Neither the [`WarmOptics`] accelerator state nor the
    /// bucket matrices are serialized: they are pure performance caches
    /// whose [`ClusterCache::recluster`] output is pinned bit-identical
    /// to the cold path, so they are rebuilt on load by replaying the
    /// id-ascending insertion order.
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.warm.min_pts());
        match &self.two_level {
            None => {
                w.put_u8(0);
                self.dist.save_state(w);
            }
            Some(tl) => {
                w.put_u8(if tl.bucketed.is_some() { 2 } else { 1 });
                w.put_u32(tl.cfg.coarse_levels as u32);
                w.put_u32(tl.cfg.fine_levels as u32);
                w.put_usize(tl.cfg.flat_below);
                match &tl.bucketed {
                    None => self.dist.save_state(w),
                    Some(b) => {
                        // the empty flat cache still carries the
                        // summarizer fingerprint the load side validates
                        self.dist.save_state(w);
                        w.put_usize(b.ids.len());
                        for &id in &b.ids {
                            w.put_usize(id);
                            b.summaries[&id].save_state(w);
                        }
                    }
                }
            }
        }
    }

    /// Restores what [`ClusterCache::save_state`] wrote. The snapshot's
    /// `min_pts`, mode, two-level configuration and summarizer
    /// fingerprints must match this cache's construction parameters. The
    /// warm OPTICS state (and, in bucketed mode, the bucket/cell layout)
    /// is reconstructed by replaying inserts in ascending id order — no
    /// replay step recomputes a distance the flat path would have cached.
    pub fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        let min_pts = r.get_usize()?;
        if min_pts != self.warm.min_pts() {
            return Err(PersistError::Malformed(format!(
                "snapshot min_pts {min_pts} differs from this cache's {}",
                self.warm.min_pts()
            )));
        }
        let mode = r.get_u8()?;
        match (mode, &self.two_level) {
            (0, None) | (1, Some(_)) | (2, Some(_)) => {}
            (m @ (0..=2), _) => {
                return Err(PersistError::Malformed(format!(
                    "snapshot cache mode {m} differs from this cache's construction"
                )));
            }
            (m, _) => {
                return Err(PersistError::Malformed(format!("unknown cluster-cache mode {m}")));
            }
        }
        if mode >= 1 {
            let cfg = self.two_level.as_ref().unwrap().cfg;
            let coarse = r.get_u32()?;
            let fine = r.get_u32()?;
            let flat_below = r.get_usize()?;
            if coarse != cfg.coarse_levels as u32
                || fine != cfg.fine_levels as u32
                || flat_below != cfg.flat_below
            {
                return Err(PersistError::Malformed(format!(
                    "snapshot two-level config ({coarse}, {fine}, {flat_below}) differs \
                     from this cache's ({}, {}, {})",
                    cfg.coarse_levels, cfg.fine_levels, cfg.flat_below
                )));
            }
        }
        self.dist.load_state(r)?;
        self.warm = WarmOptics::new(f32::INFINITY, min_pts);
        for pos in 0..self.dist.len() {
            // the row the original `add_client(pos)` handed WarmOptics:
            // distances to the already-inserted prefix, self entry last
            let row: Vec<f32> = self.dist.row(pos)[..=pos].to_vec();
            self.warm.insert(pos, &row);
        }
        if mode == 2 {
            if !self.dist.is_empty() {
                return Err(PersistError::Malformed(
                    "bucketed snapshot carries a non-empty flat matrix".into(),
                ));
            }
            let tl = self.two_level.as_mut().unwrap();
            let cfg = tl.cfg;
            let summarizer = *self.dist.summarizer();
            let mut b = Bucketed::new(summarizer, min_pts);
            let n = r.get_usize()?;
            let mut last: Option<usize> = None;
            for _ in 0..n {
                let id = r.get_usize()?;
                if last.is_some_and(|p| p >= id) {
                    return Err(PersistError::Malformed(
                        "bucketed snapshot ids must be strictly ascending".into(),
                    ));
                }
                last = Some(id);
                b.add(id, ClientSummary::load_state(r)?, &cfg);
            }
            tl.bucketed = Some(b);
        } else {
            if let Some(tl) = &mut self.two_level {
                tl.bucketed = None;
            }
            self.maybe_promote();
        }
        Ok(())
    }
}

/// Adds a client to a running [`FedSim`] **and** the shared cluster
/// cache, computing its DP-noised summary with the same per-client seed
/// derivation ([`client_summary_seed`]) the initial
/// [`summarize_federation`] pass used. Returns the new client's id; call
/// [`ClusterCache::recluster`] next to refresh the selector's groups.
pub fn engine_add_client(
    sim: &mut FedSim,
    cache: &mut ClusterCache,
    data: ClientData,
    profile: DeviceProfile,
    summary_seed: u64,
) -> usize {
    let id = sim.n_clients();
    let mut rng = StdRng::seed_from_u64(client_summary_seed(summary_seed, id));
    let summary = cache.summarizer().summarize(&data.train, &mut rng);
    let assigned = sim.add_client(data, profile);
    debug_assert_eq!(assigned, id, "FedSim must assign dense ids");
    cache.add_client(id, summary);
    id
}

/// Replaces a client's local data in a running [`FedSim`] **and**
/// refreshes its cached summary row (§IV-C drift). The client re-noises
/// its summary with its own seed stream, exactly as a real device
/// shipping a `SummaryUpdate` frame would.
pub fn engine_replace_client_data(
    sim: &mut FedSim,
    cache: &mut ClusterCache,
    id: usize,
    data: ClientData,
    summary_seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(client_summary_seed(summary_seed, id));
    let summary = cache.summarizer().summarize(&data.train, &mut rng);
    sim.replace_client_data(id, data);
    cache.update_summary(id, summary);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::build_clusters;
    use crate::wire_bridge::summary_to_wire;
    use haccs_data::{partition, SynthVision};

    fn grouped_federation(groups: usize, per: usize) -> FederatedDataset {
        let gen = SynthVision::mnist_like(2 * groups, 8, 0);
        let mut specs = Vec::new();
        for g in 0..groups {
            for _ in 0..per {
                let mut w = vec![0.0f32; 2 * groups];
                w[2 * g] = 0.5;
                w[2 * g + 1] = 0.5;
                specs.push(partition::ClientSpec {
                    label_weights: w,
                    n_train: 100,
                    n_test: 0,
                    rotation_deg: 0.0,
                    brightness: 0.0,
                    contrast: 1.0,
                    group: Some(g),
                });
            }
        }
        FederatedDataset::materialize(&gen, &specs, 0)
    }

    /// From-scratch groups over the cache's own id-sorted summaries —
    /// the reference the incremental result must equal bit-for-bit.
    fn full_rebuild(cache: &ClusterCache, min_pts: usize) -> Vec<Vec<usize>> {
        let summaries: Vec<ClientSummary> =
            cache.ids().iter().map(|&id| cache.distances().summary(id).unwrap().clone()).collect();
        let (_, groups) =
            build_clusters(cache.summarizer(), &summaries, min_pts, ExtractionMethod::Auto);
        groups
            .into_iter()
            .map(|g| g.into_iter().map(|local| cache.ids()[local]).collect())
            .collect()
    }

    #[test]
    fn federation_insert_matches_full_build() {
        let fed = grouped_federation(3, 4);
        let mut cache = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        cache.insert_federation(&fed, 7);
        let groups = cache.recluster();
        assert_eq!(groups, full_rebuild(&cache, 2));
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn churn_stays_identical_to_rebuild() {
        let fed = grouped_federation(3, 4);
        let mut cache = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        cache.insert_federation(&fed, 7);

        cache.remove_client(5);
        assert_eq!(cache.recluster(), full_rebuild(&cache, 2));

        let extra = grouped_federation(3, 5); // a 13th client for group 0
        let mut rng = StdRng::seed_from_u64(client_summary_seed(7, 12));
        let s = cache.summarizer().summarize(&extra.clients[4].train, &mut rng);
        cache.add_client(12, s);
        assert_eq!(cache.recluster(), full_rebuild(&cache, 2));

        // client 0 drifts to group 1's distribution
        let mut rng = StdRng::seed_from_u64(client_summary_seed(7, 0));
        let drifted = cache.summarizer().summarize(&fed.clients[4].train, &mut rng);
        cache.update_summary(0, drifted);
        assert_eq!(cache.recluster(), full_rebuild(&cache, 2));
    }

    #[test]
    fn sync_wire_diffs_membership() {
        let fed = grouped_federation(2, 3);
        let summarizer = Summarizer::label_dist();
        let sums = summarize_federation(&fed, &summarizer, 3);
        let mut cache = ClusterCache::new(summarizer, 2, ExtractionMethod::Auto);

        let entries: Vec<(usize, WireSummary)> =
            sums.iter().enumerate().map(|(id, s)| (id, summary_to_wire(s))).collect();
        cache.sync_wire(&entries);
        assert_eq!(cache.ids(), &[0, 1, 2, 3, 4, 5]);

        // client 2 leaves, client 0 drifts to client 3's summary
        let mut next = entries.clone();
        next.remove(2);
        next[0].1 = summary_to_wire(&sums[3]);
        cache.sync_wire(&next);
        assert_eq!(cache.ids(), &[0, 1, 3, 4, 5]);
        assert_eq!(
            cache.distances().summary(0),
            cache.distances().summary(3),
            "drifted summary must be re-cached"
        );
        assert_eq!(cache.recluster(), full_rebuild(&cache, 2));
    }

    #[test]
    fn empty_cache_reclusters_to_nothing() {
        let mut cache = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        assert!(cache.recluster().is_empty());
    }

    #[test]
    fn save_load_round_trips_and_stays_bit_identical_under_churn() {
        let fed = grouped_federation(3, 4);
        let mut cache = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        cache.insert_federation(&fed, 7);
        cache.remove_client(5); // churn before the snapshot, so the warm
                                // state diverges from plain insertion order
        let groups_before = cache.recluster();

        let mut w = SnapshotWriter::new();
        cache.save_state(&mut w);
        let bytes = w.finish();

        let mut back = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        back.load_state(&mut r).unwrap();
        r.expect_end().unwrap();

        assert_eq!(back.ids(), cache.ids());
        assert_eq!(back.distances().condensed(), cache.distances().condensed());
        assert_eq!(back.recluster(), groups_before, "restored clustering must match");

        // churn after restore: still bit-identical to the cold rebuild
        let extra = grouped_federation(3, 5);
        let mut rng = StdRng::seed_from_u64(client_summary_seed(7, 12));
        let s = back.summarizer().summarize(&extra.clients[4].train, &mut rng);
        back.add_client(12, s);
        assert_eq!(back.recluster(), full_rebuild(&back, 2));
    }

    /// Sorted set-of-groups view, for comparing partitions that may order
    /// groups differently across modes.
    fn normalized(mut groups: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        for g in groups.iter_mut() {
            g.sort_unstable();
        }
        groups.sort();
        groups
    }

    #[test]
    fn two_level_below_threshold_is_bit_identical_to_flat() {
        let fed = grouped_federation(3, 4);
        let mut flat = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        let mut two = ClusterCache::two_level(
            Summarizer::label_dist(),
            2,
            ExtractionMethod::Auto,
            TwoLevelConfig { flat_below: 1024, ..TwoLevelConfig::default() },
        );
        flat.insert_federation(&fed, 7);
        two.insert_federation(&fed, 7);
        assert!(!two.is_bucketed());
        assert_eq!(two.recluster(), flat.recluster());

        // churn keeps them locked together
        flat.remove_client(5);
        two.remove_client(5);
        assert_eq!(two.recluster(), flat.recluster());
        let extra = grouped_federation(3, 5);
        let mut rng = StdRng::seed_from_u64(client_summary_seed(7, 12));
        let s = flat.summarizer().summarize(&extra.clients[4].train, &mut rng);
        flat.add_client(12, s.clone());
        two.add_client(12, s);
        assert_eq!(two.recluster(), flat.recluster());
    }

    /// A federation of single-label groups: every client of group `g`
    /// holds only label `g`, so summaries are identical within a group
    /// and at Hellinger distance 1 across groups — well-separated
    /// relative to any quantization step, the regime the bucketed mode's
    /// quality gate targets (DESIGN.md §15).
    fn onehot_federation(groups: usize, per: usize) -> FederatedDataset {
        let gen = SynthVision::mnist_like(groups, 8, 0);
        let mut specs = Vec::new();
        for g in 0..groups {
            for _ in 0..per {
                let mut w = vec![0.0f32; groups];
                w[g] = 1.0;
                specs.push(partition::ClientSpec {
                    label_weights: w,
                    n_train: 60,
                    n_test: 0,
                    rotation_deg: 0.0,
                    brightness: 0.0,
                    contrast: 1.0,
                    group: Some(g),
                });
            }
        }
        FederatedDataset::materialize(&gen, &specs, 0)
    }

    #[test]
    fn forced_bucketed_recovers_separated_groups() {
        // disjoint-support groups: the coarse sketch separates them into
        // their own buckets, and the bucketed partition must equal the
        // flat one as a set of groups
        let fed = onehot_federation(3, 4);
        let mut flat = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        let mut two = ClusterCache::two_level(
            Summarizer::label_dist(),
            2,
            ExtractionMethod::Auto,
            TwoLevelConfig { flat_below: 0, ..TwoLevelConfig::default() },
        );
        flat.insert_federation(&fed, 7);
        two.insert_federation(&fed, 7);
        assert!(two.is_bucketed());
        assert_eq!(two.len(), flat.len());
        assert_eq!(two.ids(), flat.ids());
        assert_eq!(two.bucket_count(), 3, "each group gets its own coarse bucket");
        assert_eq!(normalized(two.recluster()), normalized(flat.recluster()));
    }

    #[test]
    fn promotion_at_threshold_keeps_membership_and_determinism() {
        let fed = grouped_federation(3, 4); // 12 clients
        let cfg = TwoLevelConfig { flat_below: 8, ..TwoLevelConfig::default() };
        let mut two =
            ClusterCache::two_level(Summarizer::label_dist(), 2, ExtractionMethod::Auto, cfg);
        two.insert_federation(&fed, 7);
        assert!(two.is_bucketed(), "12 inserts must cross the flat_below=8 threshold");
        assert_eq!(two.len(), 12);
        assert_eq!(two.ids(), (0..12).collect::<Vec<_>>());

        // insertion order must not matter: reverse-order insertion yields
        // the same partition
        let summarizer = Summarizer::label_dist();
        let sums = summarize_federation(&fed, &summarizer, 7);
        let mut rev = ClusterCache::two_level(summarizer, 2, ExtractionMethod::Auto, cfg);
        for id in (0..12).rev() {
            rev.add_client(id, sums[id].clone());
        }
        assert_eq!(rev.recluster(), two.recluster());
    }

    #[test]
    fn bucketed_churn_keeps_cells_consistent() {
        let fed = grouped_federation(2, 5);
        let summarizer = Summarizer::label_dist();
        let sums = summarize_federation(&fed, &summarizer, 7);
        let cfg = TwoLevelConfig { flat_below: 0, ..TwoLevelConfig::default() };
        let mut two = ClusterCache::two_level(summarizer, 2, ExtractionMethod::Auto, cfg);
        for (id, s) in sums.iter().enumerate() {
            two.add_client(id, s.clone());
        }
        let before = two.recluster();

        // removing and re-adding the lowest id of each group exercises the
        // representative promotion / takeover paths both ways
        two.remove_client(0);
        two.remove_client(5);
        assert_eq!(two.len(), 8);
        two.add_client(0, sums[0].clone());
        two.add_client(5, sums[5].clone());
        assert_eq!(two.recluster(), before, "re-added members must restore the partition");

        // drift: client 0 moves to group 1's distribution and must land in
        // its group
        two.update_summary(0, sums[5].clone());
        let drifted = two.recluster();
        let g0 = drifted.iter().find(|g| g.contains(&0)).unwrap();
        assert!(g0.contains(&5), "drifted client must cluster with its new distribution");
    }

    #[test]
    fn bucketed_save_load_round_trips() {
        let fed = grouped_federation(3, 4);
        let cfg = TwoLevelConfig { flat_below: 4, ..TwoLevelConfig::default() };
        let mut two =
            ClusterCache::two_level(Summarizer::label_dist(), 2, ExtractionMethod::Auto, cfg);
        two.insert_federation(&fed, 7);
        two.remove_client(5); // churn before the snapshot
        assert!(two.is_bucketed());
        let groups_before = two.recluster();

        let mut w = SnapshotWriter::new();
        two.save_state(&mut w);
        let bytes = w.finish();

        let mut back =
            ClusterCache::two_level(Summarizer::label_dist(), 2, ExtractionMethod::Auto, cfg);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        back.load_state(&mut r).unwrap();
        r.expect_end().unwrap();
        assert!(back.is_bucketed());
        assert_eq!(back.ids(), two.ids());
        assert_eq!(back.bucket_count(), two.bucket_count());
        assert_eq!(back.cell_count(), two.cell_count());
        assert_eq!(back.recluster(), groups_before, "restored partition must match");

        // a flat cache must refuse a bucketed payload, and vice versa
        let mut flat = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(flat.load_state(&mut r), Err(PersistError::Malformed(_))));
        let mut w = SnapshotWriter::new();
        flat.save_state(&mut w);
        let flat_bytes = w.finish();
        let mut two2 =
            ClusterCache::two_level(Summarizer::label_dist(), 2, ExtractionMethod::Auto, cfg);
        let mut r = SnapshotReader::open(&flat_bytes).unwrap();
        assert!(matches!(two2.load_state(&mut r), Err(PersistError::Malformed(_))));
    }

    #[test]
    fn load_rejects_mismatched_min_pts() {
        let fed = grouped_federation(2, 3);
        let mut cache = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        cache.insert_federation(&fed, 7);
        let mut w = SnapshotWriter::new();
        cache.save_state(&mut w);
        let bytes = w.finish();

        let mut other = ClusterCache::new(Summarizer::label_dist(), 3, ExtractionMethod::Auto);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(other.load_state(&mut r), Err(PersistError::Malformed(_))));
    }
}
