//! [`ClusterCache`]: the incremental §IV-C re-clustering state shared by
//! both runtimes.
//!
//! It pairs a [`DistanceCache`] (condensed pairwise-distance matrix, one
//! recomputed row per churn event) with a [`WarmOptics`] (incrementally
//! maintained sorted rows + prior ordering) and applies the configured
//! [`ExtractionMethod`] on top, producing the same schedulable id groups
//! as the from-scratch [`crate::clusters::build_clusters`] path —
//! **bit-identically**, at every churn step. The full-rebuild path stays
//! in the tree as the reference the parity suite (and the recluster
//! bench) compares against.
//!
//! Entry points per runtime:
//!
//! * the message-driven coordinator diffs its registry's wire summaries
//!   through [`ClusterCache::sync_wire`] (Join/Leave/eviction/drift all
//!   reduce to add/remove/update),
//! * the in-process loop engine uses [`engine_add_client`] /
//!   [`engine_replace_client_data`], which keep the cache and the
//!   [`FedSim`] membership in lockstep.

use crate::clusters::{client_summary_seed, summarize_federation, ExtractionMethod};
use crate::wire_bridge::summary_from_wire;
use haccs_cluster::WarmOptics;
use haccs_data::{ClientData, FederatedDataset};
use haccs_fedsim::persist::{PersistError, SnapshotReader, SnapshotWriter};
use haccs_fedsim::FedSim;
use haccs_obs::Recorder;
use haccs_summary::{ClientSummary, DistanceCache, Summarizer};
use haccs_sysmodel::DeviceProfile;
use haccs_wire::WireSummary;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Incremental clustering state: distance cache + warm-start OPTICS +
/// extraction. One instance serves a whole training run across arbitrary
/// membership churn.
#[derive(Debug)]
pub struct ClusterCache {
    dist: DistanceCache,
    warm: WarmOptics,
    extraction: ExtractionMethod,
    obs: Recorder,
}

impl ClusterCache {
    /// Empty cache. `min_pts` and `extraction` match the arguments the
    /// from-scratch [`crate::clusters::build_clusters`] call would take;
    /// the OPTICS generating radius is `f32::INFINITY`, HACCS's default.
    pub fn new(summarizer: Summarizer, min_pts: usize, extraction: ExtractionMethod) -> Self {
        ClusterCache {
            dist: DistanceCache::new(summarizer),
            warm: WarmOptics::new(f32::INFINITY, min_pts),
            extraction,
            obs: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder. Instrumentation only *reads*
    /// cache state — [`ClusterCache::recluster`] output is bit-identical
    /// with the recorder enabled or disabled.
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Replaces the recorder on an already-constructed cache (the
    /// coordinator and engine hand theirs down after construction).
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// Number of cached clients.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// True when no clients are cached.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// Cached client ids, ascending.
    pub fn ids(&self) -> &[usize] {
        self.dist.ids()
    }

    /// True if `id` is cached.
    pub fn contains(&self, id: usize) -> bool {
        self.dist.contains(id)
    }

    /// The summarizer distances are computed with.
    pub fn summarizer(&self) -> &Summarizer {
        self.dist.summarizer()
    }

    /// The underlying distance cache (read-only; edits must flow through
    /// this type so the warm OPTICS state stays consistent).
    pub fn distances(&self) -> &DistanceCache {
        &self.dist
    }

    /// A client joined: computes its distance row (the only `n` summary
    /// distances evaluated) and splices it into the warm OPTICS state.
    pub fn add_client(&mut self, id: usize, summary: ClientSummary) {
        let (pos, row) = self.dist.add_client(id, summary);
        self.warm.insert(pos, &row);
    }

    /// A client left (graceful `Leave` or eviction). No distances are
    /// recomputed.
    pub fn remove_client(&mut self, id: usize) {
        let (pos, row) = self.dist.remove_client(id);
        self.warm.remove(pos, &row);
    }

    /// A client's data drifted (§IV-C): recomputes its row only.
    pub fn update_summary(&mut self, id: usize, summary: ClientSummary) {
        let (pos, old_row, new_row) = self.dist.update_summary(id, summary);
        self.warm.update(pos, &old_row, &new_row);
    }

    /// Seeds the cache with every client of a federation, using the same
    /// per-client DP noise streams as
    /// [`summarize_federation`] — so engine-side
    /// construction and cache construction agree bit-for-bit.
    pub fn insert_federation(&mut self, fed: &FederatedDataset, summary_seed: u64) {
        let summarizer = *self.dist.summarizer();
        for (i, s) in summarize_federation(fed, &summarizer, summary_seed).into_iter().enumerate() {
            self.add_client(i, s);
        }
    }

    /// Diffs the registry's current `(id, summary)` membership view
    /// against the cache and applies the minimal add/remove/update set.
    /// This is the coordinator-facing entry point: the §IV-C hook hands
    /// it `member_summaries()` and every kind of churn — mid-training
    /// joins, graceful leaves, evictions, drift — reduces to row edits.
    pub fn sync_wire(&mut self, entries: &[(usize, WireSummary)]) {
        let departed: Vec<usize> = {
            let mut present = entries.iter().map(|(id, _)| *id).collect::<Vec<_>>();
            present.sort_unstable();
            self.dist
                .ids()
                .iter()
                .copied()
                .filter(|id| present.binary_search(id).is_err())
                .collect()
        };
        for id in departed {
            self.remove_client(id);
        }
        for (id, wire) in entries {
            let summary = summary_from_wire(wire);
            match self.dist.summary(*id) {
                None => self.add_client(*id, summary),
                Some(cached) if *cached != summary => self.update_summary(*id, summary),
                Some(_) => {}
            }
        }
    }

    /// Re-clusters over the cached state: warm-start OPTICS (cold only on
    /// the edited rows' core distances; the prior ordering is reused
    /// outright when nothing changed) → extraction → schedulable groups
    /// of **client ids**. Bit-identical to
    /// `build_clusters(...).1` over the id-sorted summaries.
    pub fn recluster(&mut self) -> Vec<Vec<usize>> {
        if self.dist.is_empty() {
            return Vec::new();
        }
        let mut span = self.obs.span("cluster.recluster").u("members", self.dist.len() as u64);
        let warm_before = self.warm.stats();
        let dense = self.dist.dense();
        let o = self.warm.run(&dense);
        let clustering = self.extraction.extract(o);
        let warm_after = self.warm.stats();
        let groups: Vec<Vec<usize>> = clustering
            .to_schedulable_groups()
            .into_iter()
            .map(|g| g.into_iter().map(|local| self.dist.ids()[local]).collect())
            .collect();
        span.push_u("groups", groups.len() as u64);
        span.push_u("warm_hit", (warm_after.cached_reuses > warm_before.cached_reuses) as u64);
        span.finish();
        let d = self.dist.stats();
        self.obs.gauge("cluster_distances_computed", d.distances_computed as f64);
        self.obs.gauge("cluster_distance_entries_reused", d.entries_reused as f64);
        self.obs.gauge("cluster_cache_edits", d.edits as f64);
        self.obs.gauge("cluster_optics_expansions", warm_after.expansions as f64);
        self.obs.gauge("cluster_optics_cached_reuses", warm_after.cached_reuses as f64);
        groups
    }

    /// Snapshot of the distance-cache reuse counters (observability only).
    pub fn distance_stats(&self) -> haccs_summary::DistanceCacheStats {
        self.dist.stats()
    }

    /// Snapshot of the warm-OPTICS expansion/reuse counters
    /// (observability only).
    pub fn warm_stats(&self) -> haccs_cluster::WarmOpticsStats {
        self.warm.stats()
    }

    /// Appends the cache state to a snapshot payload: `min_pts` as a
    /// fingerprint, then the full [`DistanceCache`] (ids, summaries,
    /// condensed matrix — all verbatim). The [`WarmOptics`] accelerator
    /// state is *not* serialized: it is a pure performance cache whose
    /// [`ClusterCache::recluster`] output is pinned bit-identical to the
    /// cold full-rebuild path, so it can be rebuilt on load by replaying
    /// the id-ascending insertion order over the restored distances.
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.warm.min_pts());
        self.dist.save_state(w);
    }

    /// Restores what [`ClusterCache::save_state`] wrote. The snapshot's
    /// `min_pts` and summarizer fingerprints must match this cache's
    /// construction parameters. The warm OPTICS state is reconstructed by
    /// replaying inserts over the restored distance rows — no summary
    /// distance is recomputed.
    pub fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        let min_pts = r.get_usize()?;
        if min_pts != self.warm.min_pts() {
            return Err(PersistError::Malformed(format!(
                "snapshot min_pts {min_pts} differs from this cache's {}",
                self.warm.min_pts()
            )));
        }
        self.dist.load_state(r)?;
        self.warm = WarmOptics::new(f32::INFINITY, min_pts);
        for pos in 0..self.dist.len() {
            // the row the original `add_client(pos)` handed WarmOptics:
            // distances to the already-inserted prefix, self entry last
            let row: Vec<f32> = self.dist.row(pos)[..=pos].to_vec();
            self.warm.insert(pos, &row);
        }
        Ok(())
    }
}

/// Adds a client to a running [`FedSim`] **and** the shared cluster
/// cache, computing its DP-noised summary with the same per-client seed
/// derivation ([`client_summary_seed`]) the initial
/// [`summarize_federation`] pass used. Returns the new client's id; call
/// [`ClusterCache::recluster`] next to refresh the selector's groups.
pub fn engine_add_client(
    sim: &mut FedSim,
    cache: &mut ClusterCache,
    data: ClientData,
    profile: DeviceProfile,
    summary_seed: u64,
) -> usize {
    let id = sim.n_clients();
    let mut rng = StdRng::seed_from_u64(client_summary_seed(summary_seed, id));
    let summary = cache.summarizer().summarize(&data.train, &mut rng);
    let assigned = sim.add_client(data, profile);
    debug_assert_eq!(assigned, id, "FedSim must assign dense ids");
    cache.add_client(id, summary);
    id
}

/// Replaces a client's local data in a running [`FedSim`] **and**
/// refreshes its cached summary row (§IV-C drift). The client re-noises
/// its summary with its own seed stream, exactly as a real device
/// shipping a `SummaryUpdate` frame would.
pub fn engine_replace_client_data(
    sim: &mut FedSim,
    cache: &mut ClusterCache,
    id: usize,
    data: ClientData,
    summary_seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(client_summary_seed(summary_seed, id));
    let summary = cache.summarizer().summarize(&data.train, &mut rng);
    sim.replace_client_data(id, data);
    cache.update_summary(id, summary);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::build_clusters;
    use crate::wire_bridge::summary_to_wire;
    use haccs_data::{partition, SynthVision};

    fn grouped_federation(groups: usize, per: usize) -> FederatedDataset {
        let gen = SynthVision::mnist_like(2 * groups, 8, 0);
        let mut specs = Vec::new();
        for g in 0..groups {
            for _ in 0..per {
                let mut w = vec![0.0f32; 2 * groups];
                w[2 * g] = 0.5;
                w[2 * g + 1] = 0.5;
                specs.push(partition::ClientSpec {
                    label_weights: w,
                    n_train: 100,
                    n_test: 0,
                    rotation_deg: 0.0,
                    brightness: 0.0,
                    contrast: 1.0,
                    group: Some(g),
                });
            }
        }
        FederatedDataset::materialize(&gen, &specs, 0)
    }

    /// From-scratch groups over the cache's own id-sorted summaries —
    /// the reference the incremental result must equal bit-for-bit.
    fn full_rebuild(cache: &ClusterCache, min_pts: usize) -> Vec<Vec<usize>> {
        let summaries: Vec<ClientSummary> =
            cache.ids().iter().map(|&id| cache.distances().summary(id).unwrap().clone()).collect();
        let (_, groups) =
            build_clusters(cache.summarizer(), &summaries, min_pts, ExtractionMethod::Auto);
        groups
            .into_iter()
            .map(|g| g.into_iter().map(|local| cache.ids()[local]).collect())
            .collect()
    }

    #[test]
    fn federation_insert_matches_full_build() {
        let fed = grouped_federation(3, 4);
        let mut cache = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        cache.insert_federation(&fed, 7);
        let groups = cache.recluster();
        assert_eq!(groups, full_rebuild(&cache, 2));
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn churn_stays_identical_to_rebuild() {
        let fed = grouped_federation(3, 4);
        let mut cache = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        cache.insert_federation(&fed, 7);

        cache.remove_client(5);
        assert_eq!(cache.recluster(), full_rebuild(&cache, 2));

        let extra = grouped_federation(3, 5); // a 13th client for group 0
        let mut rng = StdRng::seed_from_u64(client_summary_seed(7, 12));
        let s = cache.summarizer().summarize(&extra.clients[4].train, &mut rng);
        cache.add_client(12, s);
        assert_eq!(cache.recluster(), full_rebuild(&cache, 2));

        // client 0 drifts to group 1's distribution
        let mut rng = StdRng::seed_from_u64(client_summary_seed(7, 0));
        let drifted = cache.summarizer().summarize(&fed.clients[4].train, &mut rng);
        cache.update_summary(0, drifted);
        assert_eq!(cache.recluster(), full_rebuild(&cache, 2));
    }

    #[test]
    fn sync_wire_diffs_membership() {
        let fed = grouped_federation(2, 3);
        let summarizer = Summarizer::label_dist();
        let sums = summarize_federation(&fed, &summarizer, 3);
        let mut cache = ClusterCache::new(summarizer, 2, ExtractionMethod::Auto);

        let entries: Vec<(usize, WireSummary)> =
            sums.iter().enumerate().map(|(id, s)| (id, summary_to_wire(s))).collect();
        cache.sync_wire(&entries);
        assert_eq!(cache.ids(), &[0, 1, 2, 3, 4, 5]);

        // client 2 leaves, client 0 drifts to client 3's summary
        let mut next = entries.clone();
        next.remove(2);
        next[0].1 = summary_to_wire(&sums[3]);
        cache.sync_wire(&next);
        assert_eq!(cache.ids(), &[0, 1, 3, 4, 5]);
        assert_eq!(
            cache.distances().summary(0),
            cache.distances().summary(3),
            "drifted summary must be re-cached"
        );
        assert_eq!(cache.recluster(), full_rebuild(&cache, 2));
    }

    #[test]
    fn empty_cache_reclusters_to_nothing() {
        let mut cache = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        assert!(cache.recluster().is_empty());
    }

    #[test]
    fn save_load_round_trips_and_stays_bit_identical_under_churn() {
        let fed = grouped_federation(3, 4);
        let mut cache = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        cache.insert_federation(&fed, 7);
        cache.remove_client(5); // churn before the snapshot, so the warm
                                // state diverges from plain insertion order
        let groups_before = cache.recluster();

        let mut w = SnapshotWriter::new();
        cache.save_state(&mut w);
        let bytes = w.finish();

        let mut back = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        back.load_state(&mut r).unwrap();
        r.expect_end().unwrap();

        assert_eq!(back.ids(), cache.ids());
        assert_eq!(back.distances().condensed(), cache.distances().condensed());
        assert_eq!(back.recluster(), groups_before, "restored clustering must match");

        // churn after restore: still bit-identical to the cold rebuild
        let extra = grouped_federation(3, 5);
        let mut rng = StdRng::seed_from_u64(client_summary_seed(7, 12));
        let s = back.summarizer().summarize(&extra.clients[4].train, &mut rng);
        back.add_client(12, s);
        assert_eq!(back.recluster(), full_rebuild(&back, 2));
    }

    #[test]
    fn load_rejects_mismatched_min_pts() {
        let fed = grouped_federation(2, 3);
        let mut cache = ClusterCache::new(Summarizer::label_dist(), 2, ExtractionMethod::Auto);
        cache.insert_federation(&fed, 7);
        let mut w = SnapshotWriter::new();
        cache.save_state(&mut w);
        let bytes = w.finish();

        let mut other = ClusterCache::new(Summarizer::label_dist(), 3, ExtractionMethod::Auto);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(other.load_state(&mut r), Err(PersistError::Malformed(_))));
    }
}
