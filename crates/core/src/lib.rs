//! # haccs-core
//!
//! The paper's primary contribution: **H**eterogeneity-**A**ware
//! **C**lustered **C**lient **S**election.
//!
//! Pipeline (Fig. 2 / Algorithm 1):
//!
//! 1. at join time each client computes a privacy-preserving summary of its
//!    local data ([`haccs_summary`]) and ships it to the server,
//! 2. the server computes pairwise Hellinger distances and clusters the
//!    summaries with OPTICS ([`haccs_cluster`]) — [`clusters::build_clusters`],
//! 3. every epoch, clusters are sampled by Weighted-SRSWR with the Eq. 7
//!    weights `θ_i = ρ·τ_i + (1−ρ)·ACL_i/ΣACL_j` ([`weights`]),
//! 4. within each sampled cluster the lowest-latency available device is
//!    chosen and removed from further consideration this epoch
//!    ([`selector::HaccsSelector`]).
//!
//! The selector is robust to dropout by construction: when a device
//! disappears, the next-best device *from the same cluster* (≈ same data
//! distribution) replaces it. Inclusion telemetry for the paper's bias
//! analysis (Table III, Fig. 11) is collected by [`telemetry`].

pub mod cache;
pub mod clusters;
pub mod selector;
pub mod telemetry;
pub mod weights;
pub mod wire_bridge;

pub use cache::{engine_add_client, engine_replace_client_data, ClusterCache, TwoLevelConfig};
pub use clusters::{
    build_clusters, build_gradient_clusters, client_summary_seed, cosine_distance,
    summarize_federation, ExtractionMethod,
};
pub use selector::{HaccsSelector, WithinClusterPolicy};
pub use telemetry::InclusionTelemetry;
pub use weights::{cluster_weights, ClusterStats};
pub use wire_bridge::{cluster_wire_summaries, summary_from_wire, summary_to_wire};
