//! [`HaccsSelector`]: Algorithm 1 — Weighted-SRSWR over clusters, then the
//! lowest-latency available device within each sampled cluster.

use crate::telemetry::InclusionTelemetry;
use crate::weights::{cluster_weights, ClusterStats};
use haccs_fedsim::persist::{PersistError, SnapshotReader, SnapshotWriter};
use haccs_fedsim::{ClientInfo, SelectionContext, Selector};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// How a device is picked inside a sampled cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WithinClusterPolicy {
    /// Take the minimum-latency available device (Algorithm 1).
    #[default]
    MinLatency,
    /// Sample uniformly inside the cluster — the §V-E mitigation for
    /// straggler bias ("perform sampling within a cluster, rather than
    /// simply using the current ordering based on latency").
    Uniform,
}

/// The HACCS client selector.
pub struct HaccsSelector {
    /// Cluster membership (client ids per cluster), from
    /// [`crate::clusters::build_clusters`].
    groups: Vec<Vec<usize>>,
    /// ρ: latency-vs-loss trade-off (Eq. 7).
    rho: f32,
    /// Within-cluster device policy.
    policy: WithinClusterPolicy,
    /// Inclusion telemetry for the bias analysis.
    telemetry: InclusionTelemetry,
    /// Human-readable summary label ("P(y)", "P(X|y)"), used in reports.
    label: String,
}

impl HaccsSelector {
    /// Builds the selector from cluster membership. `label` names the
    /// summary the clusters were derived from (for reports).
    pub fn new(groups: Vec<Vec<usize>>, rho: f32, label: impl Into<String>) -> Self {
        assert!((0.0..=1.0).contains(&rho), "rho must be in [0, 1]");
        assert!(!groups.is_empty(), "need at least one cluster");
        assert!(groups.iter().all(|g| !g.is_empty()), "clusters must be non-empty");
        let telemetry = InclusionTelemetry::new(&groups);
        HaccsSelector {
            groups,
            rho,
            policy: WithinClusterPolicy::MinLatency,
            telemetry,
            label: label.into(),
        }
    }

    /// Sets the within-cluster policy (builder style).
    pub fn with_policy(mut self, policy: WithinClusterPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The cluster membership.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// ρ parameter.
    pub fn rho(&self) -> f32 {
        self.rho
    }

    /// The inclusion telemetry collected so far.
    pub fn telemetry(&self) -> &InclusionTelemetry {
        &self.telemetry
    }

    /// Replaces the cluster structure (re-clustering after joins/leaves or
    /// updated summaries, §IV-C). Telemetry restarts for the new structure.
    pub fn recluster(&mut self, groups: Vec<Vec<usize>>) {
        assert!(!groups.is_empty());
        self.telemetry = InclusionTelemetry::new(&groups);
        self.groups = groups;
    }
}

impl Selector for HaccsSelector {
    fn name(&self) -> String {
        format!("haccs-{}", self.label)
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Vec<usize> {
        let info_of: HashMap<usize, &ClientInfo> =
            ctx.available.iter().map(|c| (c.id, c)).collect();

        // available members per cluster (dropout robustness: missing
        // devices simply vanish from their cluster this epoch)
        let mut live: Vec<(usize, Vec<&ClientInfo>)> = self
            .groups
            .iter()
            .enumerate()
            .filter_map(|(gi, members)| {
                let infos: Vec<&ClientInfo> =
                    members.iter().filter_map(|id| info_of.get(id).copied()).collect();
                if infos.is_empty() {
                    None
                } else {
                    Some((gi, infos))
                }
            })
            .collect();
        if live.is_empty() {
            return Vec::new();
        }

        // Eq. 6/7 inputs over available members
        let stats: Vec<ClusterStats> = live
            .iter()
            .map(|(_, infos)| ClusterStats {
                avg_latency: infos.iter().map(|c| c.est_latency).sum::<f64>() / infos.len() as f64,
                avg_loss: infos.iter().map(|c| c.last_loss).sum::<f32>() / infos.len() as f32,
            })
            .collect();
        let mut theta = cluster_weights(&stats, self.rho);

        // order members by ascending latency so "best" pops cheaply
        for (_, infos) in &mut live {
            infos.sort_by(|a, b| a.est_latency.total_cmp(&b.est_latency));
        }

        // Weighted-SRSWR: sample clusters with replacement; take one device
        // per draw and remove it from the cluster (Algorithm 1). A cluster
        // whose devices are exhausted gets weight zero.
        let mut selection = Vec::with_capacity(ctx.k);
        while selection.len() < ctx.k {
            let total: f64 = theta.iter().sum();
            if total <= 0.0 {
                break;
            }
            let mut u = rng.gen_range(0.0..total);
            let mut pick = live.len() - 1;
            for (i, &t) in theta.iter().enumerate() {
                if u < t {
                    pick = i;
                    break;
                }
                u -= t;
            }
            let (gi, infos) = &mut live[pick];
            let chosen = match self.policy {
                WithinClusterPolicy::MinLatency => infos.remove(0),
                WithinClusterPolicy::Uniform => {
                    let j = rng.gen_range(0..infos.len());
                    infos.remove(j)
                }
            };
            self.telemetry.record(*gi, chosen.id);
            selection.push(chosen.id);
            if infos.is_empty() {
                theta[pick] = 0.0;
            }
        }
        selection
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.groups.len());
        for g in &self.groups {
            w.put_usizes(g);
        }
        self.telemetry.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        let n = r.get_usize()?;
        let mut groups = Vec::with_capacity(n);
        for _ in 0..n {
            groups.push(r.get_usizes()?);
        }
        if groups.is_empty() || groups.iter().any(|g| g.is_empty()) {
            return Err(PersistError::Malformed("snapshot has empty cluster structure".into()));
        }
        let telemetry = InclusionTelemetry::load_state(r)?;
        if telemetry.n_clusters() != groups.len() {
            return Err(PersistError::Malformed("telemetry/group cluster count mismatch".into()));
        }
        self.groups = groups;
        self.telemetry = telemetry;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn info(id: usize, lat: f64, loss: f32) -> ClientInfo {
        ClientInfo { id, est_latency: lat, last_loss: loss, n_train: 10, participation_count: 0 }
    }

    /// Two clusters: {0,1,2} fast→slow, {3,4,5} fast→slow.
    fn pool() -> Vec<ClientInfo> {
        vec![
            info(0, 1.0, 1.0),
            info(1, 2.0, 1.0),
            info(2, 3.0, 1.0),
            info(3, 1.5, 1.0),
            info(4, 2.5, 1.0),
            info(5, 3.5, 1.0),
        ]
    }

    fn selector(rho: f32) -> HaccsSelector {
        HaccsSelector::new(vec![vec![0, 1, 2], vec![3, 4, 5]], rho, "P(y)")
    }

    #[test]
    fn picks_min_latency_within_cluster() {
        let avail = pool();
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 2 };
        let mut s = selector(0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let sel = s.select(&ctx, &mut rng);
        assert_eq!(sel.len(), 2);
        // whichever clusters were sampled, the chosen devices must be the
        // fastest *remaining* members of their cluster: a slower member may
        // only appear if its faster sibling was already taken
        for &id in &sel {
            assert!([0, 1, 3, 4].contains(&id), "unexpected pick {id} in {sel:?}");
        }
        if sel.contains(&1) {
            assert!(sel.contains(&0), "1 before 0 in {sel:?}");
        }
        if sel.contains(&4) {
            assert!(sel.contains(&3), "4 before 3 in {sel:?}");
        }
    }

    #[test]
    fn exhausted_cluster_resamples_other() {
        // k = 4 from two clusters of 3: both clusters must contribute
        let avail = pool();
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 6 };
        let mut s = selector(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sel = s.select(&ctx, &mut rng);
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2, 3, 4, 5], "all devices selectable when k = n");
    }

    #[test]
    fn dropout_falls_back_to_cluster_sibling() {
        // device 0 (fastest of cluster A) unavailable → 1 takes its place
        let avail: Vec<ClientInfo> = pool().into_iter().filter(|c| c.id != 0).collect();
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 6 };
        let mut s = selector(0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let sel = s.select(&ctx, &mut rng);
        assert!(!sel.contains(&0));
        assert!(sel.contains(&1), "cluster sibling should replace the dropout");
    }

    #[test]
    fn rho_zero_prefers_high_loss_cluster() {
        // cluster B has 9× the loss; at ρ=0 it should be sampled first far
        // more often
        let avail =
            vec![info(0, 1.0, 0.5), info(1, 1.0, 0.5), info(2, 1.0, 4.5), info(3, 1.0, 4.5)];
        let mut hits_b = 0;
        for seed in 0..200 {
            let mut s = HaccsSelector::new(vec![vec![0, 1], vec![2, 3]], 0.0, "P(y)");
            let ctx = SelectionContext { epoch: 0, available: &avail, k: 1 };
            let mut rng = StdRng::seed_from_u64(seed);
            let sel = s.select(&ctx, &mut rng);
            if sel[0] >= 2 {
                hits_b += 1;
            }
        }
        assert!(hits_b > 150, "high-loss cluster picked only {hits_b}/200");
    }

    #[test]
    fn rho_one_prefers_fast_cluster() {
        let avail =
            vec![info(0, 1.0, 1.0), info(1, 1.0, 1.0), info(2, 10.0, 1.0), info(3, 10.0, 1.0)];
        let mut hits_fast = 0;
        for seed in 0..200 {
            let mut s = HaccsSelector::new(vec![vec![0, 1], vec![2, 3]], 1.0, "P(y)");
            let ctx = SelectionContext { epoch: 0, available: &avail, k: 1 };
            let mut rng = StdRng::seed_from_u64(seed);
            let sel = s.select(&ctx, &mut rng);
            if sel[0] < 2 {
                hits_fast += 1;
            }
        }
        // τ_slow = 0 → fast cluster always wins at ρ = 1
        assert_eq!(hits_fast, 200);
    }

    #[test]
    fn uniform_policy_spreads_within_cluster() {
        let avail = pool();
        let mut s = selector(0.5).with_policy(WithinClusterPolicy::Uniform);
        let mut seen = std::collections::HashSet::new();
        for seed in 0..60 {
            let ctx = SelectionContext { epoch: 0, available: &avail, k: 2 };
            let mut rng = StdRng::seed_from_u64(seed);
            seen.extend(s.select(&ctx, &mut rng));
        }
        // uniform within-cluster should reach slow devices too
        assert!(seen.contains(&2) || seen.contains(&5), "slowest never sampled: {seen:?}");
    }

    #[test]
    fn telemetry_records_inclusions() {
        let avail = pool();
        let mut s = selector(0.5);
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 6 };
        let mut rng = StdRng::seed_from_u64(3);
        s.select(&ctx, &mut rng);
        assert_eq!(s.telemetry().inclusion_fractions(), vec![1.0, 1.0]);
    }

    #[test]
    fn recluster_resets_structure() {
        let mut s = selector(0.5);
        s.recluster(vec![vec![0], vec![1, 2, 3, 4, 5]]);
        assert_eq!(s.groups().len(), 2);
        assert_eq!(s.telemetry().n_clusters(), 2);
    }

    #[test]
    fn empty_available_returns_empty() {
        let mut s = selector(0.5);
        let ctx = SelectionContext { epoch: 0, available: &[], k: 3 };
        let mut rng = StdRng::seed_from_u64(4);
        assert!(s.select(&ctx, &mut rng).is_empty());
    }

    #[test]
    fn name_includes_summary_label() {
        assert_eq!(selector(0.5).name(), "haccs-P(y)");
    }

    #[test]
    fn save_load_round_trips_groups_and_telemetry() {
        let avail = pool();
        let mut s = selector(0.5);
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 4 };
        let mut rng = StdRng::seed_from_u64(7);
        s.select(&ctx, &mut rng);
        s.telemetry.record(9, 0); // stale record — dropped counter must survive too

        let mut w = SnapshotWriter::new();
        s.save_state(&mut w);
        let bytes = w.finish();

        // restore into a fresh selector with a *different* structure: the
        // snapshot must fully overwrite it
        let mut fresh = HaccsSelector::new(vec![vec![0, 1, 2, 3, 4, 5]], 0.5, "P(y)");
        let mut r = SnapshotReader::open(&bytes).unwrap();
        fresh.load_state(&mut r).unwrap();
        r.expect_end().unwrap();

        assert_eq!(fresh.groups(), s.groups());
        assert_eq!(fresh.telemetry().inclusion_fractions(), s.telemetry().inclusion_fractions());
        assert_eq!(fresh.telemetry().dropped_records(), 1);

        // and the serialized form is deterministic
        let mut w2 = SnapshotWriter::new();
        fresh.save_state(&mut w2);
        assert_eq!(w2.finish(), bytes);
    }
}
