//! Building clusters from client summaries (steps 1–2 of the pipeline).

use haccs_cluster::optics::{optics, Optics};
use haccs_cluster::Clustering;
use haccs_data::FederatedDataset;
use haccs_summary::{pairwise_distances, ClientSummary, Summarizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How clusters are extracted from the OPTICS ordering.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ExtractionMethod {
    /// Threshold chosen automatically from the reachability plot (default —
    /// this is what keeps HACCS free of a radius hyperparameter).
    #[default]
    Auto,
    /// Fixed ε′ DBSCAN-equivalent extraction.
    Eps(f32),
    /// ξ-steep extraction (ablation).
    Xi(f32),
}

impl ExtractionMethod {
    /// Applies the extraction to an OPTICS result. Labels are always
    /// relabelled into the canonical assignment (clusters numbered by
    /// ascending lowest member index): extraction visits points in
    /// reachability order, so raw ids could silently permute between two
    /// runs that found the *same partition* via different orderings —
    /// e.g. a re-cluster after an unrelated join. Canonical ids make
    /// cluster identity stable across equal re-cluster runs.
    pub fn extract(self, o: &Optics) -> Clustering {
        let raw = match self {
            ExtractionMethod::Auto => o.extract_auto(),
            ExtractionMethod::Eps(e) => o.extract_dbscan(e),
            ExtractionMethod::Xi(x) => o.extract_xi(x),
        };
        raw.canonical()
    }
}

/// The per-client RNG seed for DP summary noise: client `i` derives its
/// own stream from the federation seed. Exposed so the message-driven
/// coordinator's agents produce the exact summaries the in-process path
/// does.
pub fn client_summary_seed(seed: u64, client: usize) -> u64 {
    seed ^ (client as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Computes every client's summary **client-side**: each client uses its
/// own seeded RNG for the DP noise, and only the (noised) summary would
/// cross the network in a deployment.
pub fn summarize_federation(
    fed: &FederatedDataset,
    summarizer: &Summarizer,
    seed: u64,
) -> Vec<ClientSummary> {
    fed.clients
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut rng = StdRng::seed_from_u64(client_summary_seed(seed, i));
            summarizer.summarize(&c.train, &mut rng)
        })
        .collect()
}

/// Clusters client summaries: pairwise distance matrix → OPTICS →
/// extraction → schedulable groups (noise points become singleton
/// clusters, because every device must stay schedulable).
///
/// `min_pts` is OPTICS's density parameter; the paper's deployments use
/// small clusters, so 2 is the natural floor.
pub fn build_clusters(
    summarizer: &Summarizer,
    summaries: &[ClientSummary],
    min_pts: usize,
    extraction: ExtractionMethod,
) -> (Clustering, Vec<Vec<usize>>) {
    let dist = pairwise_distances(summarizer, summaries);
    let o = optics(&dist, f32::INFINITY, min_pts);
    let clustering = extraction.extract(&o);
    let groups = clustering.to_schedulable_groups();
    (clustering, groups)
}

/// Cosine distance `1 − cos(a, b)`, rescaled to `[0, 1]`, between gradient
/// sketches. Zero-norm sketches are maximally distant from everything
/// (they carry no direction).
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sketches must have equal dimension");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    let cos = (dot / (na * nb)).clamp(-1.0, 1.0);
    (1.0 - cos) / 2.0
}

/// Clusters clients by the cosine distance between their gradient sketches
/// (the §IV-A alternative summary). Must be re-run every epoch, since
/// gradients change with the model — exactly the overhead the paper warns
/// about; the `ablation_gradient` experiment quantifies it.
pub fn build_gradient_clusters(
    sketches: &[Vec<f32>],
    min_pts: usize,
    extraction: ExtractionMethod,
) -> (Clustering, Vec<Vec<usize>>) {
    let n = sketches.len();
    let dist: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i == j { 0.0 } else { cosine_distance(&sketches[i], &sketches[j]) })
                .collect()
        })
        .collect();
    let o = optics(&dist, f32::INFINITY, min_pts);
    let clustering = extraction.extract(&o);
    let groups = clustering.to_schedulable_groups();
    (clustering, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_data::{partition, SynthVision};

    /// 3 groups of 4 clients each, disjoint label pairs.
    fn grouped_federation() -> FederatedDataset {
        let gen = SynthVision::mnist_like(6, 8, 0);
        let mut specs = Vec::new();
        for g in 0..3 {
            for _ in 0..4 {
                let mut w = vec![0.0f32; 6];
                w[2 * g] = 0.5;
                w[2 * g + 1] = 0.5;
                specs.push(partition::ClientSpec {
                    label_weights: w,
                    n_train: 120,
                    n_test: 0,
                    rotation_deg: 0.0,
                    brightness: 0.0,
                    contrast: 1.0,
                    group: Some(g),
                });
            }
        }
        FederatedDataset::materialize(&gen, &specs, 0)
    }

    #[test]
    fn recovers_label_groups_with_py_summary() {
        let fed = grouped_federation();
        let s = Summarizer::label_dist();
        let sums = summarize_federation(&fed, &s, 0);
        let (clustering, groups) = build_clusters(&s, &sums, 2, ExtractionMethod::Auto);
        assert_eq!(clustering.n_clusters(), 3, "labels: {:?}", clustering.labels());
        assert_eq!(groups.len(), 3);
        // each recovered cluster must be exactly one ground-truth group
        for g in 0..3 {
            let truth: Vec<usize> = (g * 4..(g + 1) * 4).collect();
            assert!(
                groups.iter().any(|grp| {
                    let mut sorted = grp.clone();
                    sorted.sort_unstable();
                    sorted == truth
                }),
                "group {g} not recovered: {groups:?}"
            );
        }
    }

    #[test]
    fn iid_data_collapses_to_one_cluster() {
        let gen = SynthVision::mnist_like(6, 8, 0);
        let specs = partition::iid(10, 6, 150, 0);
        let fed = FederatedDataset::materialize(&gen, &specs, 1);
        let s = Summarizer::label_dist();
        let sums = summarize_federation(&fed, &s, 0);
        let (clustering, groups) = build_clusters(&s, &sums, 2, ExtractionMethod::Auto);
        assert_eq!(clustering.n_clusters(), 1, "IID should give one cluster");
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 10);
    }

    #[test]
    fn summaries_are_deterministic_per_seed() {
        let fed = grouped_federation();
        let s = Summarizer::label_dist().with_epsilon(0.1);
        let a = summarize_federation(&fed, &s, 42);
        let b = summarize_federation(&fed, &s, 42);
        assert_eq!(a, b);
        let c = summarize_federation(&fed, &s, 43);
        assert_ne!(a, c, "different seeds must change DP noise");
    }

    #[test]
    fn heavy_dp_noise_degrades_clusters() {
        let fed = grouped_federation();
        let clean = Summarizer::label_dist();
        let noisy = Summarizer::label_dist().with_epsilon(0.002);
        let (c_clean, _) = build_clusters(
            &clean,
            &summarize_federation(&fed, &clean, 0),
            2,
            ExtractionMethod::Auto,
        );
        let (c_noisy, _) = build_clusters(
            &noisy,
            &summarize_federation(&fed, &noisy, 0),
            2,
            ExtractionMethod::Auto,
        );
        // exact recovery with clean summaries, degraded with ε=0.002
        assert_eq!(c_clean.n_clusters(), 3);
        let truth: Vec<Vec<usize>> = (0..3).map(|g| (g * 4..(g + 1) * 4).collect()).collect();
        let acc_noisy = haccs_cluster::quality::cluster_identification_accuracy(&c_noisy, &truth);
        assert!(acc_noisy < 1.0, "extreme noise should break at least one cluster");
    }

    #[test]
    fn cosine_distance_properties() {
        let a = vec![1.0, 0.0, 0.0];
        let b = vec![0.0, 1.0, 0.0];
        let c = vec![-1.0, 0.0, 0.0];
        assert!(cosine_distance(&a, &a) < 1e-6);
        assert!((cosine_distance(&a, &b) - 0.5).abs() < 1e-6, "orthogonal = 0.5");
        assert!((cosine_distance(&a, &c) - 1.0).abs() < 1e-6, "opposite = 1.0");
        assert_eq!(cosine_distance(&a, &[0.0; 3]), 1.0, "zero sketch is maximally distant");
        // scale invariance
        let a2: Vec<f32> = a.iter().map(|x| x * 7.5).collect();
        assert!(cosine_distance(&a, &a2) < 1e-6);
    }

    #[test]
    fn gradient_clusters_group_parallel_sketches() {
        // two directions, three sketches each (scaled copies + jitter)
        let mut sketches = Vec::new();
        for s in [1.0f32, 2.0, 0.5] {
            sketches.push(vec![s, 0.01 * s, 0.0, 0.0]);
        }
        for s in [1.0f32, 3.0, 0.7] {
            sketches.push(vec![0.0, 0.0, s, -0.01 * s]);
        }
        let (clustering, groups) = build_gradient_clusters(&sketches, 2, ExtractionMethod::Auto);
        assert_eq!(clustering.n_clusters(), 2, "labels: {:?}", clustering.labels());
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn cond_summary_separates_rotated_clients() {
        // same labels everywhere; half the clients rotated 45°
        let gen = SynthVision::mnist_like(4, 8, 0);
        let mut specs = partition::iid(8, 4, 120, 0);
        for (i, s) in specs.iter_mut().enumerate() {
            s.rotation_deg = if i < 4 { 0.0 } else { 45.0 };
        }
        let fed = FederatedDataset::materialize(&gen, &specs, 2);
        let s = Summarizer::cond_dist(16);
        let sums = summarize_federation(&fed, &s, 0);
        let (clustering, _) = build_clusters(&s, &sums, 2, ExtractionMethod::Auto);
        // P(X|y) must distinguish rotated from unrotated
        assert!(clustering.n_clusters() >= 2, "labels: {:?}", clustering.labels());
        // and must not put a rotated client with an unrotated one
        for i in 0..4 {
            for j in 4..8 {
                if let (Some(a), Some(b)) = (clustering.labels()[i], clustering.labels()[j]) {
                    assert_ne!(a, b, "client {i} (0°) clustered with {j} (45°)");
                }
            }
        }
    }
}
