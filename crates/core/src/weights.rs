//! The Eq. 6 / Eq. 7 cluster sampling weights.

/// Per-cluster scheduling statistics for one epoch, computed over the
/// cluster's *available* members.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterStats {
    /// Mean §IV-D latency of available members, seconds.
    pub avg_latency: f64,
    /// Average client loss in the cluster (ACL_i).
    pub avg_loss: f32,
}

/// Computes the Eq. 7 sampling weights:
///
/// ```text
/// τ_i = 1 − Latency_i / Latency_max                (Eq. 6)
/// θ_i = ρ·τ_i + (1−ρ)·ACL_i / Σ_j ACL_j            (Eq. 7)
/// ```
///
/// `ρ ∈ [0, 1]` trades latency optimization (ρ→1) against loss
/// optimization (ρ→0). If every weight degenerates to zero (e.g. ρ=1 with
/// all-equal latencies), the weights fall back to uniform so sampling stays
/// well-defined.
///
/// Non-finite inputs are sanitized before normalization: a cluster whose
/// `avg_loss` diverged to NaN/∞ contributes nothing to `Σ_j ACL_j` and
/// draws zero loss weight itself (rather than turning *every* θ_i NaN and
/// silently degenerating the SRSWR draw), and a non-finite `avg_latency`
/// is treated as slowest (τ = 0).
pub fn cluster_weights(stats: &[ClusterStats], rho: f32) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&rho), "rho must be in [0, 1]");
    if stats.is_empty() {
        return Vec::new();
    }
    let lat_max =
        stats.iter().map(|s| s.avg_latency).filter(|l| l.is_finite()).fold(0.0f64, f64::max);
    let loss_sum: f64 = stats.iter().map(|s| s.avg_loss as f64).filter(|l| l.is_finite()).sum();
    let rho = rho as f64;
    let mut theta: Vec<f64> = stats
        .iter()
        .map(|s| {
            let tau = if lat_max > 0.0 && s.avg_latency.is_finite() {
                1.0 - s.avg_latency / lat_max
            } else {
                0.0
            };
            let norm_loss = if loss_sum > 0.0 && (s.avg_loss as f64).is_finite() {
                s.avg_loss as f64 / loss_sum
            } else {
                0.0
            };
            rho * tau + (1.0 - rho) * norm_loss
        })
        .collect();
    if theta.iter().all(|&t| t <= 0.0) {
        theta = vec![1.0; stats.len()];
    }
    theta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(lat: f64, loss: f32) -> ClusterStats {
        ClusterStats { avg_latency: lat, avg_loss: loss }
    }

    #[test]
    fn rho_one_rewards_fast_clusters() {
        let s = [stats(1.0, 1.0), stats(10.0, 1.0)];
        let w = cluster_weights(&s, 1.0);
        assert!(w[0] > w[1], "{w:?}");
        assert!((w[0] - 0.9).abs() < 1e-9); // 1 - 1/10
        assert!(w[1].abs() < 1e-9); // slowest cluster: τ = 0
    }

    #[test]
    fn rho_zero_rewards_lossy_clusters() {
        let s = [stats(1.0, 3.0), stats(10.0, 1.0)];
        let w = cluster_weights(&s, 0.0);
        assert!((w[0] - 0.75).abs() < 1e-9);
        assert!((w[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn convex_combination() {
        let s = [stats(2.0, 2.0), stats(4.0, 2.0)];
        let w_half = cluster_weights(&s, 0.5);
        let w_lat = cluster_weights(&s, 1.0);
        let w_loss = cluster_weights(&s, 0.0);
        for i in 0..2 {
            let expect = 0.5 * w_lat[i].max(0.0) + 0.5 * w_loss[i];
            // note: fall-back kicks in for the all-zero ρ=1 edge only when
            // *all* weights vanish, which is not the case here
            assert!((w_half[i] - expect).abs() < 1e-9, "{w_half:?}");
        }
    }

    #[test]
    fn weights_nonnegative() {
        let s = [stats(5.0, 0.5), stats(2.0, 4.0), stats(9.0, 1.5)];
        for rho in [0.0, 0.25, 0.5, 0.75, 1.0] {
            for w in cluster_weights(&s, rho) {
                assert!(w >= 0.0);
            }
        }
    }

    #[test]
    fn degenerate_all_zero_falls_back_uniform() {
        // single cluster at ρ = 1: τ = 0 → all-zero θ → uniform fallback
        let s = [stats(3.0, 1.0)];
        let w = cluster_weights(&s, 1.0);
        assert_eq!(w, vec![1.0]);
    }

    #[test]
    fn empty_input() {
        assert!(cluster_weights(&[], 0.5).is_empty());
    }

    #[test]
    fn one_diverged_cluster_cannot_zero_out_the_others() {
        // cluster 1 diverged: without sanitization loss_sum (and thus
        // every θ_i) would be NaN and SRSWR would silently degenerate
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let s = [stats(1.0, 3.0), stats(2.0, bad), stats(4.0, 1.0)];
            for rho in [0.0, 0.5, 1.0] {
                let w = cluster_weights(&s, rho);
                assert!(w.iter().all(|t| t.is_finite()), "rho={rho} bad={bad}: {w:?}");
                assert!(w.iter().any(|&t| t > 0.0), "rho={rho} bad={bad}: {w:?}");
            }
            // at ρ=0 the healthy clusters keep their relative loss shares
            let w = cluster_weights(&s, 0.0);
            assert!((w[0] - 0.75).abs() < 1e-9, "{w:?}");
            assert_eq!(w[1], 0.0, "diverged cluster draws no loss weight");
            assert!((w[2] - 0.25).abs() < 1e-9, "{w:?}");
        }
    }

    #[test]
    fn non_finite_latency_counts_as_slowest() {
        let s = [stats(1.0, 1.0), stats(f64::NAN, 1.0), stats(f64::INFINITY, 1.0)];
        let w = cluster_weights(&s, 1.0);
        assert!(w.iter().all(|t| t.is_finite()), "{w:?}");
        // lat_max over the finite latencies is 1.0 → uniform fallback
        // (all τ = 0); the point is no NaN escapes
        let s2 = [stats(1.0, 1.0), stats(4.0, 1.0), stats(f64::NAN, 1.0)];
        let w2 = cluster_weights(&s2, 1.0);
        assert!((w2[0] - 0.75).abs() < 1e-9, "{w2:?}");
        assert_eq!(w2[2], 0.0, "NaN latency ranks slowest (τ = 0)");
    }

    #[test]
    #[should_panic(expected = "rho must be in")]
    fn bad_rho_rejected() {
        cluster_weights(&[stats(1.0, 1.0)], 1.5);
    }
}
