//! The core [`Tensor`] type: a row-major, contiguous `f32` array with shape.

use std::fmt;

/// A dense, row-major `f32` tensor of arbitrary rank.
///
/// Storage is always contiguous; views and broadcasting are deliberately not
/// implemented — the NN stack copies instead, which keeps every kernel a
/// simple loop over a contiguous slice (and lets LLVM vectorize it).
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from raw parts. Panics if `data.len()` does not match
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?} (numel {})",
            data.len(),
            shape,
            numel
        );
        Tensor { data, shape: shape.to_vec() }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Tensor { data: vec![0.0; numel], shape: shape.to_vec() }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Tensor { data: vec![value; numel], shape: shape.to_vec() }
    }

    /// A rank-1 tensor wrapping `data`.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { data: data.to_vec(), shape: vec![data.len()] }
    }

    /// The shape (dimensions) of the tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Rank (number of dimensions).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Immutable access to the backing storage.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            numel,
            "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
            self.shape,
            self.data.len(),
            shape,
            numel
        );
        self.shape = shape.to_vec();
        self
    }

    /// Row `i` of a rank-2 tensor, as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape[1];
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Mutable row `i` of a rank-2 tensor.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert_eq!(self.rank(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.shape[1];
        &mut self.data[i * cols..(i + 1) * cols]
    }

    /// Element accessor for a rank-2 tensor.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Element accessor for a rank-4 tensor `[n, c, h, w]`.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.rank(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Transpose of a rank-2 tensor (copies).
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2() requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor { data: out, shape: vec![c, r] }
    }

    /// Euclidean (L2) norm of all elements.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{} elems])", self.numel())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_shape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.numel(), 4);
        assert_eq!(t.rank(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_panics_on_mismatch() {
        Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]);
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[3, 4]);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[2], 7.5);
        assert_eq!(f.data(), &[7.5, 7.5]);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let r = t.clone().reshape(&[6, 4]);
        assert_eq!(r.shape(), &[6, 4]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_panics_on_numel_change() {
        Tensor::zeros(&[2, 3]).reshape(&[4, 2]);
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(t.row(0), &[1., 2., 3.]);
        assert_eq!(t.row(1), &[4., 5., 6.]);
        assert_eq!(t.at2(1, 2), 6.0);
    }

    #[test]
    fn at4_indexing() {
        let t = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[2, 2, 2, 2]);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        assert_eq!(t.at4(1, 1, 1, 1), 15.0);
        assert_eq!(t.at4(1, 0, 1, 0), 10.0);
    }

    #[test]
    fn transpose2_involution() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let tt = t.transpose2().transpose2();
        assert_eq!(t, tt);
    }

    #[test]
    fn transpose2_values() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let tr = t.transpose2();
        assert_eq!(tr.shape(), &[3, 2]);
        assert_eq!(tr.data(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn l2_norm() {
        let t = Tensor::from_slice(&[3.0, 4.0]);
        assert!((t.l2_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
