//! Weight initializers. All take an explicit RNG so experiments are
//! reproducible end-to-end from a single seed.

use crate::Tensor;
use rand::Rng;

/// Uniform initialization over `[lo, hi)`.
pub fn uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Tensor {
    assert!(lo < hi, "uniform bounds must satisfy lo < hi");
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

/// Normal initialization via Box–Muller (avoids a rand_distr dependency).
pub fn normal<R: Rng>(shape: &[usize], mean: f32, std: f32, rng: &mut R) -> Tensor {
    assert!(std >= 0.0, "std must be non-negative");
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let (z0, z1) = box_muller(rng);
        data.push(mean + std * z0);
        if data.len() < n {
            data.push(mean + std * z1);
        }
    }
    Tensor::from_vec(data, shape)
}

/// One Box–Muller draw: two independent standard normals.
#[inline]
pub fn box_muller<R: Rng>(rng: &mut R) -> (f32, f32) {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -a, a, rng)
}

/// Kaiming/He normal: `N(0, sqrt(2 / fan_in))`, suited to ReLU networks.
pub fn kaiming_normal<R: Rng>(shape: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    normal(shape, 0.0, (2.0 / fan_in as f32).sqrt(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = normal(&[20000], 3.0, 2.0, &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / t.numel() as f32;
        let var: f32 =
            t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / t.numel() as f32;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn normal_odd_element_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = normal(&[7], 0.0, 1.0, &mut rng);
        assert_eq!(t.numel(), 7);
        assert!(!t.has_non_finite());
    }

    #[test]
    fn xavier_bound_formula() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = xavier_uniform(&[100, 50], 100, 50, &mut rng);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn kaiming_std_is_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = kaiming_normal(&[50000], 8, &mut rng);
        let var: f32 = t.data().iter().map(|x| x * x).sum::<f32>() / t.numel() as f32;
        assert!((var - 0.25).abs() < 0.02, "var {var} expected 0.25");
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = uniform(&[32], 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        let b = uniform(&[32], 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
