//! Element-wise kernels, reductions, matrix multiplication and softmax.

use crate::Tensor;
use rayon::prelude::*;

/// Threshold (rows of the left operand) above which matmul parallelizes
/// across rayon. Below it the sequential kernel avoids fork/join overhead.
const PAR_ROWS: usize = 16;

/// `C = A · B` for rank-2 tensors, parallelized over rows of `A`.
///
/// The inner kernel iterates `k` in the outer loop and accumulates into the
/// output row, which keeps both `B` and `C` accesses sequential (the standard
/// ikj loop order) and lets LLVM vectorize the innermost loop.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank-2");
    let (m, ka) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(ka, kb, "matmul inner dims differ: {ka} vs {kb}");

    let mut out = vec![0.0f32; m * n];
    let bd = b.data();
    let kernel = |(i, out_row): (usize, &mut [f32])| {
        let a_row = a.row(i);
        for (k, &aik) in a_row.iter().enumerate() {
            let b_row = &bd[k * n..(k + 1) * n];
            for (o, &bkj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += aik * bkj;
            }
        }
    };
    if m >= PAR_ROWS {
        out.par_chunks_mut(n).enumerate().for_each(kernel);
    } else {
        out.chunks_mut(n).enumerate().for_each(kernel);
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ` without materializing the transpose.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (m, ka) = (a.shape()[0], a.shape()[1]);
    let (n, kb) = (b.shape()[0], b.shape()[1]);
    assert_eq!(ka, kb, "matmul_bt inner dims differ: {ka} vs {kb}");

    let mut out = vec![0.0f32; m * n];
    let kernel = |(i, out_row): (usize, &mut [f32])| {
        let a_row = a.row(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            *o = dot(a_row, b_row);
        }
    };
    if m >= PAR_ROWS {
        out.par_chunks_mut(n).enumerate().for_each(kernel);
    } else {
        out.chunks_mut(n).enumerate().for_each(kernel);
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ · B` without materializing the transpose.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (ka, m) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(ka, kb, "matmul_at inner dims differ: {ka} vs {kb}");

    // out[i][j] = sum_k a[k][i] * b[k][j]; accumulate row-by-row of a/b.
    let mut out = vec![0.0f32; m * n];
    for k in 0..ka {
        let a_row = a.row(k);
        let b_row = b.row(k);
        for (i, &aki) in a_row.iter().enumerate() {
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bkj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += aki * bkj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Element-wise `a + b` (shapes must match).
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
    Tensor::from_vec(data, a.shape())
}

/// Element-wise `a - b` (shapes must match).
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "sub shape mismatch");
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x - y).collect();
    Tensor::from_vec(data, a.shape())
}

/// In-place `a += alpha * b`.
pub fn axpy(a: &mut Tensor, alpha: f32, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "axpy shape mismatch");
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += alpha * y;
    }
}

/// In-place scalar multiply.
pub fn scale(a: &mut Tensor, alpha: f32) {
    for x in a.data_mut() {
        *x *= alpha;
    }
}

/// Adds a bias vector (length = cols) to every row of a rank-2 tensor.
pub fn add_bias_rows(a: &mut Tensor, bias: &[f32]) {
    assert_eq!(a.rank(), 2);
    let cols = a.shape()[1];
    assert_eq!(bias.len(), cols, "bias length must equal column count");
    for row in a.data_mut().chunks_mut(cols) {
        for (x, b) in row.iter_mut().zip(bias) {
            *x += b;
        }
    }
}

/// Column-wise sum of a rank-2 tensor (used for bias gradients).
pub fn sum_rows(a: &Tensor) -> Vec<f32> {
    assert_eq!(a.rank(), 2);
    let cols = a.shape()[1];
    let mut out = vec![0.0f32; cols];
    for row in a.data().chunks(cols) {
        for (o, x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
    out
}

/// Row-wise softmax of a rank-2 tensor, numerically stabilized by the
/// max-subtraction trick.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.rank(), 2);
    let cols = logits.shape()[1];
    let mut out = logits.data().to_vec();
    for row in out.chunks_mut(cols) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        let inv = 1.0 / sum;
        for x in row.iter_mut() {
            *x *= inv;
        }
    }
    Tensor::from_vec(out, logits.shape())
}

/// ReLU applied out-of-place.
pub fn relu(a: &Tensor) -> Tensor {
    let data = a.data().iter().map(|&x| x.max(0.0)).collect();
    Tensor::from_vec(data, a.shape())
}

/// Backward pass for ReLU: `dx = dy ⊙ 1[x > 0]`.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(x.shape(), dy.shape());
    let data =
        x.data().iter().zip(dy.data()).map(|(&xi, &gi)| if xi > 0.0 { gi } else { 0.0 }).collect();
    Tensor::from_vec(data, x.shape())
}

/// Mean of all elements.
pub fn mean(a: &Tensor) -> f32 {
    if a.numel() == 0 {
        return 0.0;
    }
    a.data().iter().sum::<f32>() / a.numel() as f32
}

/// Argmax index of each row of a rank-2 tensor.
pub fn argmax_rows(a: &Tensor) -> Vec<usize> {
    assert_eq!(a.rank(), 2);
    let cols = a.shape()[1];
    a.data()
        .chunks(cols)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|(_, x), (_, y)| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Naive O(n³) reference matmul, used by tests to validate the fast kernels.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    assert_eq!(k, b.shape()[0]);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a.at2(i, kk) * b.at2(kk, j);
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_close, TEST_EPS};

    fn seq_tensor(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|x| (x as f32) * 0.1 - 1.0).collect(), shape)
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = seq_tensor(&[3, 4]);
        let b = seq_tensor(&[4, 5]);
        assert_close(matmul(&a, &b).data(), matmul_naive(&a, &b).data(), TEST_EPS);
    }

    #[test]
    fn matmul_matches_naive_parallel_path() {
        let a = seq_tensor(&[33, 17]);
        let b = seq_tensor(&[17, 29]);
        assert_close(matmul(&a, &b).data(), matmul_naive(&a, &b).data(), 1e-3);
    }

    #[test]
    fn matmul_identity() {
        let a = seq_tensor(&[4, 4]);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.data_mut()[i * 4 + i] = 1.0;
        }
        assert_close(matmul(&a, &eye).data(), a.data(), TEST_EPS);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = seq_tensor(&[5, 7]);
        let b = seq_tensor(&[6, 7]);
        let expected = matmul(&a, &b.transpose2());
        assert_close(matmul_bt(&a, &b).data(), expected.data(), TEST_EPS);
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = seq_tensor(&[7, 5]);
        let b = seq_tensor(&[7, 6]);
        let expected = matmul(&a.transpose2(), &b);
        assert_close(matmul_at(&a, &b).data(), expected.data(), TEST_EPS);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_dim_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = seq_tensor(&[2, 3]);
        let b = seq_tensor(&[2, 3]);
        let s = add(&a, &b);
        let back = sub(&s, &b);
        assert_close(back.data(), a.data(), TEST_EPS);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        axpy(&mut a, 0.5, &b);
        assert_close(a.data(), &[6.0, 12.0], TEST_EPS);
        scale(&mut a, 2.0);
        assert_close(a.data(), &[12.0, 24.0], TEST_EPS);
    }

    #[test]
    fn bias_and_sum_rows() {
        let mut a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        add_bias_rows(&mut a, &[10.0, 20.0]);
        assert_close(a.data(), &[11., 22., 13., 24.], TEST_EPS);
        let s = sum_rows(&a);
        assert_close(&s, &[24.0, 46.0], TEST_EPS);
    }

    #[test]
    fn softmax_rows_is_distribution() {
        let t = Tensor::from_vec(vec![1., 2., 3., 1000., 1001., 1002.], &[2, 3]);
        let s = softmax_rows(&t);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            assert!(s.row(r).iter().all(|&x| x.is_finite() && x >= 0.0));
        }
        // Both rows have the same relative logits, so identical softmax.
        assert_close(s.row(0), s.row(1), 1e-5);
    }

    #[test]
    fn relu_and_backward() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = relu(&x);
        assert_close(y.data(), &[0.0, 0.0, 2.0], TEST_EPS);
        let dy = Tensor::from_slice(&[5.0, 5.0, 5.0]);
        let dx = relu_backward(&x, &dy);
        assert_close(dx.data(), &[0.0, 0.0, 5.0], TEST_EPS);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&Tensor::zeros(&[0])), 0.0);
    }
}
