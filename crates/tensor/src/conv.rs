//! 2-D convolution (via im2col + matmul) and max pooling, with backward
//! passes. Layout is NCHW throughout.

use crate::ops;
use crate::Tensor;
use rayon::prelude::*;

/// Shape bookkeeping for a conv layer application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvDims {
    pub batch: usize,
    pub in_ch: usize,
    pub in_h: usize,
    pub in_w: usize,
    pub out_ch: usize,
    pub k: usize,
    pub stride: usize,
    pub pad: usize,
    pub out_h: usize,
    pub out_w: usize,
}

impl ConvDims {
    /// Computes output dims for input `[n, c, h, w]`, square kernel `k`.
    pub fn infer(
        input_shape: &[usize],
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert_eq!(input_shape.len(), 4, "conv input must be NCHW");
        let (batch, in_ch, in_h, in_w) =
            (input_shape[0], input_shape[1], input_shape[2], input_shape[3]);
        assert!(in_h + 2 * pad >= k && in_w + 2 * pad >= k, "kernel larger than padded input");
        let out_h = (in_h + 2 * pad - k) / stride + 1;
        let out_w = (in_w + 2 * pad - k) / stride + 1;
        ConvDims { batch, in_ch, in_h, in_w, out_ch, k, stride, pad, out_h, out_w }
    }
}

/// Unfolds one image `[c, h, w]` into columns `[c*k*k, out_h*out_w]`,
/// writing into `cols` (which must be pre-sized).
fn im2col_single(img: &[f32], d: &ConvDims, cols: &mut [f32]) {
    let (c, h, w, k) = (d.in_ch, d.in_h, d.in_w, d.k);
    let (oh, ow) = (d.out_h, d.out_w);
    let n_spatial = oh * ow;
    for ci in 0..c {
        for ki in 0..k {
            for kj in 0..k {
                let row = (ci * k + ki) * k + kj;
                let out_row = &mut cols[row * n_spatial..(row + 1) * n_spatial];
                for oi in 0..oh {
                    let ii = (oi * d.stride + ki) as isize - d.pad as isize;
                    for oj in 0..ow {
                        let jj = (oj * d.stride + kj) as isize - d.pad as isize;
                        out_row[oi * ow + oj] =
                            if ii >= 0 && jj >= 0 && (ii as usize) < h && (jj as usize) < w {
                                img[(ci * h + ii as usize) * w + jj as usize]
                            } else {
                                0.0
                            };
                    }
                }
            }
        }
    }
}

/// Folds columns `[c*k*k, out_h*out_w]` back into an image gradient
/// `[c, h, w]` (the adjoint of im2col; overlapping patches accumulate).
fn col2im_single(cols: &[f32], d: &ConvDims, img: &mut [f32]) {
    let (c, h, w, k) = (d.in_ch, d.in_h, d.in_w, d.k);
    let (oh, ow) = (d.out_h, d.out_w);
    let n_spatial = oh * ow;
    img.fill(0.0);
    for ci in 0..c {
        for ki in 0..k {
            for kj in 0..k {
                let row = (ci * k + ki) * k + kj;
                let col_row = &cols[row * n_spatial..(row + 1) * n_spatial];
                for oi in 0..oh {
                    let ii = (oi * d.stride + ki) as isize - d.pad as isize;
                    if ii < 0 || ii as usize >= h {
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * d.stride + kj) as isize - d.pad as isize;
                        if jj < 0 || jj as usize >= w {
                            continue;
                        }
                        img[(ci * h + ii as usize) * w + jj as usize] += col_row[oi * ow + oj];
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// * `input`: `[n, in_ch, h, w]`
/// * `weight`: `[out_ch, in_ch, k, k]`
/// * `bias`: `[out_ch]`
///
/// Returns `(output [n, out_ch, out_h, out_w], cols)` where `cols` holds the
/// per-image im2col buffers needed by [`conv2d_backward`].
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &[f32],
    stride: usize,
    pad: usize,
) -> (Tensor, Vec<Tensor>) {
    let out_ch = weight.shape()[0];
    let d = ConvDims::infer(input.shape(), out_ch, weight.shape()[2], stride, pad);
    assert_eq!(weight.shape()[1], d.in_ch, "weight in_ch mismatch");
    assert_eq!(bias.len(), out_ch, "bias length mismatch");

    let col_rows = d.in_ch * d.k * d.k;
    let n_spatial = d.out_h * d.out_w;
    let w_mat = weight.clone().reshape(&[out_ch, col_rows]);
    let img_len = d.in_ch * d.in_h * d.in_w;

    let per_image: Vec<(Vec<f32>, Tensor)> = (0..d.batch)
        .into_par_iter()
        .map(|n| {
            let img = &input.data()[n * img_len..(n + 1) * img_len];
            let mut cols = vec![0.0f32; col_rows * n_spatial];
            im2col_single(img, &d, &mut cols);
            let cols_t = Tensor::from_vec(cols, &[col_rows, n_spatial]);
            // [out_ch, col_rows] x [col_rows, n_spatial] = [out_ch, n_spatial]
            let mut out = ops::matmul(&w_mat, &cols_t);
            for (oc, row) in out.data_mut().chunks_mut(n_spatial).enumerate() {
                let b = bias[oc];
                for x in row.iter_mut() {
                    *x += b;
                }
            }
            (out.into_vec(), cols_t)
        })
        .collect();

    let mut out_data = Vec::with_capacity(d.batch * out_ch * n_spatial);
    let mut cols_all = Vec::with_capacity(d.batch);
    for (o, c) in per_image {
        out_data.extend_from_slice(&o);
        cols_all.push(c);
    }
    (Tensor::from_vec(out_data, &[d.batch, out_ch, d.out_h, d.out_w]), cols_all)
}

/// Gradients of a 2-D convolution.
///
/// Returns `(d_input, d_weight, d_bias)`.
pub fn conv2d_backward(
    input_shape: &[usize],
    weight: &Tensor,
    cols: &[Tensor],
    d_out: &Tensor,
    stride: usize,
    pad: usize,
) -> (Tensor, Tensor, Vec<f32>) {
    let out_ch = weight.shape()[0];
    let d = ConvDims::infer(input_shape, out_ch, weight.shape()[2], stride, pad);
    let col_rows = d.in_ch * d.k * d.k;
    let n_spatial = d.out_h * d.out_w;
    let w_mat = weight.clone().reshape(&[out_ch, col_rows]);
    let img_len = d.in_ch * d.in_h * d.in_w;

    let results: Vec<(Vec<f32>, Tensor, Vec<f32>)> = (0..d.batch)
        .into_par_iter()
        .map(|n| {
            let dy = &d_out.data()[n * out_ch * n_spatial..(n + 1) * out_ch * n_spatial];
            let dy_t = Tensor::from_vec(dy.to_vec(), &[out_ch, n_spatial]);
            // dW contribution: dy [out_ch, S] x colsᵀ [S, col_rows]
            let dw = ops::matmul_bt(&dy_t, &cols[n]);
            // dCols: Wᵀ [col_rows, out_ch] x dy [out_ch, S]
            let dcols = ops::matmul_at(&w_mat, &dy_t);
            let mut dimg = vec![0.0f32; img_len];
            col2im_single(dcols.data(), &d, &mut dimg);
            let db: Vec<f32> = dy.chunks(n_spatial).map(|row| row.iter().sum::<f32>()).collect();
            (dimg, dw, db)
        })
        .collect();

    let mut d_input = Vec::with_capacity(d.batch * img_len);
    let mut d_weight = Tensor::zeros(&[out_ch, col_rows]);
    let mut d_bias = vec![0.0f32; out_ch];
    for (dimg, dw, db) in results {
        d_input.extend_from_slice(&dimg);
        ops::axpy(&mut d_weight, 1.0, &dw);
        for (acc, x) in d_bias.iter_mut().zip(db) {
            *acc += x;
        }
    }
    (Tensor::from_vec(d_input, input_shape), d_weight.reshape(weight.shape()), d_bias)
}

/// Forward max pooling with square window `k` and stride `k` (non-overlapping).
///
/// Returns `(output, argmax_indices)`; indices address the flattened input
/// and are consumed by [`maxpool_backward`].
pub fn maxpool_forward(input: &Tensor, k: usize) -> (Tensor, Vec<u32>) {
    assert_eq!(input.rank(), 4, "maxpool input must be NCHW");
    let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let (oh, ow) = (h / k, w / k);
    assert!(oh > 0 && ow > 0, "pool window larger than input");
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut idx = vec![0u32; n * c * oh * ow];
    let data = input.data();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_at = 0usize;
                    for di in 0..k {
                        for dj in 0..k {
                            let at = base + (oi * k + di) * w + (oj * k + dj);
                            if data[at] > best {
                                best = data[at];
                                best_at = at;
                            }
                        }
                    }
                    let o = ((ni * c + ci) * oh + oi) * ow + oj;
                    out[o] = best;
                    idx[o] = best_at as u32;
                }
            }
        }
    }
    (Tensor::from_vec(out, &[n, c, oh, ow]), idx)
}

/// Backward max pooling: routes each output gradient to the argmax position.
pub fn maxpool_backward(input_shape: &[usize], idx: &[u32], d_out: &Tensor) -> Tensor {
    let numel: usize = input_shape.iter().product();
    let mut dx = vec![0.0f32; numel];
    for (i, &g) in d_out.data().iter().enumerate() {
        dx[idx[i] as usize] += g;
    }
    Tensor::from_vec(dx, input_shape)
}

/// Direct (definition-level) convolution used by tests to validate the
/// im2col path. O(n·c·k²·h·w); not for production use.
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: &[f32],
    stride: usize,
    pad: usize,
) -> Tensor {
    let out_ch = weight.shape()[0];
    let d = ConvDims::infer(input.shape(), out_ch, weight.shape()[2], stride, pad);
    let mut out = Tensor::zeros(&[d.batch, out_ch, d.out_h, d.out_w]);
    for n in 0..d.batch {
        for (oc, &bias_oc) in bias.iter().enumerate().take(out_ch) {
            for oi in 0..d.out_h {
                for oj in 0..d.out_w {
                    let mut acc = bias_oc;
                    for ic in 0..d.in_ch {
                        for ki in 0..d.k {
                            for kj in 0..d.k {
                                let ii = (oi * d.stride + ki) as isize - d.pad as isize;
                                let jj = (oj * d.stride + kj) as isize - d.pad as isize;
                                if ii >= 0
                                    && jj >= 0
                                    && (ii as usize) < d.in_h
                                    && (jj as usize) < d.in_w
                                {
                                    acc += input.at4(n, ic, ii as usize, jj as usize)
                                        * weight.at4(oc, ic, ki, kj);
                                }
                            }
                        }
                    }
                    let o = ((n * out_ch + oc) * d.out_h + oi) * d.out_w + oj;
                    out.data_mut()[o] = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_close, init, TEST_EPS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_tensor(shape: &[usize], rng: &mut StdRng) -> Tensor {
        init::uniform(shape, -1.0, 1.0, rng)
    }

    #[test]
    fn conv_matches_direct_no_pad() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = rand_tensor(&[2, 3, 8, 8], &mut rng);
        let w = rand_tensor(&[4, 3, 3, 3], &mut rng);
        let b = vec![0.1, -0.2, 0.3, 0.0];
        let (y, _) = conv2d_forward(&x, &w, &b, 1, 0);
        let y_ref = conv2d_direct(&x, &w, &b, 1, 0);
        assert_eq!(y.shape(), &[2, 4, 6, 6]);
        assert_close(y.data(), y_ref.data(), 1e-3);
    }

    #[test]
    fn conv_matches_direct_with_pad_stride() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = rand_tensor(&[1, 2, 7, 7], &mut rng);
        let w = rand_tensor(&[3, 2, 3, 3], &mut rng);
        let b = vec![0.0; 3];
        let (y, _) = conv2d_forward(&x, &w, &b, 2, 1);
        let y_ref = conv2d_direct(&x, &w, &b, 2, 1);
        assert_eq!(y.shape(), &[1, 3, 4, 4]);
        assert_close(y.data(), y_ref.data(), 1e-3);
    }

    /// Central finite differences against analytic gradients for conv.
    #[test]
    fn conv_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = rand_tensor(&[1, 2, 5, 5], &mut rng);
        let w = rand_tensor(&[2, 2, 3, 3], &mut rng);
        let b = vec![0.05, -0.05];

        // Loss = sum of outputs, so d_out = ones.
        let loss = |x: &Tensor, w: &Tensor, b: &[f32]| -> f32 {
            conv2d_direct(x, w, b, 1, 0).data().iter().sum()
        };

        let (y, cols) = conv2d_forward(&x, &w, &b, 1, 0);
        let d_out = Tensor::full(y.shape(), 1.0);
        let (dx, dw, db) = conv2d_backward(x.shape(), &w, &cols, &d_out, 1, 0);

        let h = 1e-2f32;
        // spot-check several coordinates of each gradient
        for &i in &[0usize, 7, 19, 33, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += h;
            let mut xm = x.clone();
            xm.data_mut()[i] -= h;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * h);
            assert!(
                (fd - dx.data()[i]).abs() < 2e-2,
                "dx[{i}]: fd {fd} vs analytic {}",
                dx.data()[i]
            );
        }
        for &i in &[0usize, 5, 17, 35] {
            let mut wp = w.clone();
            wp.data_mut()[i] += h;
            let mut wm = w.clone();
            wm.data_mut()[i] -= h;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * h);
            assert!(
                (fd - dw.data()[i]).abs() < 2e-2,
                "dw[{i}]: fd {fd} vs analytic {}",
                dw.data()[i]
            );
        }
        for i in 0..2 {
            let mut bp = b.clone();
            bp[i] += h;
            let mut bm = b.clone();
            bm[i] -= h;
            let fd = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * h);
            assert!((fd - db[i]).abs() < 2e-2, "db[{i}]: fd {fd} vs analytic {}", db[i]);
        }
    }

    #[test]
    fn maxpool_forward_picks_max() {
        let x = Tensor::from_vec(
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
            &[1, 1, 4, 4],
        );
        let (y, idx) = maxpool_forward(&x, 2);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_close(y.data(), &[4., 8., 12., 16.], TEST_EPS);
        assert_eq!(idx, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_backward_routes_gradient() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let (y, idx) = maxpool_forward(&x, 2);
        let dy = Tensor::full(y.shape(), 2.0);
        let dx = maxpool_backward(x.shape(), &idx, &dy);
        // gradient lands only on the max of each window (indices 5,7,13,15)
        let expect: Vec<f32> =
            (0..16).map(|i| if [5, 7, 13, 15].contains(&i) { 2.0 } else { 0.0 }).collect();
        assert_close(dx.data(), &expect, TEST_EPS);
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // <im2col(x), c> == <x, col2im(c)> for all x, c (adjointness).
        let mut rng = StdRng::seed_from_u64(10);
        let d = ConvDims::infer(&[1, 2, 5, 5], 1, 3, 1, 1);
        let x = rand_tensor(&[1, 2, 5, 5], &mut rng);
        let col_rows = d.in_ch * d.k * d.k;
        let n_spatial = d.out_h * d.out_w;
        let c = rand_tensor(&[col_rows, n_spatial], &mut rng);

        let mut cols = vec![0.0f32; col_rows * n_spatial];
        im2col_single(x.data(), &d, &mut cols);
        let lhs: f32 = cols.iter().zip(c.data()).map(|(a, b)| a * b).sum();

        let mut img = vec![0.0f32; 2 * 5 * 5];
        col2im_single(c.data(), &d, &mut img);
        let rhs: f32 = x.data().iter().zip(&img).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "kernel larger than padded input")]
    fn conv_panics_on_tiny_input() {
        ConvDims::infer(&[1, 1, 2, 2], 1, 5, 1, 0);
    }
}
