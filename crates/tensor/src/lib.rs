//! # haccs-tensor
//!
//! A small, dependency-light dense tensor library used as the numeric
//! substrate for the HACCS reproduction. It provides exactly what the
//! LeNet-style models in `haccs-nn` need:
//!
//! * row-major `f32` tensors of arbitrary rank ([`Tensor`]),
//! * rayon-parallel blocked matrix multiplication ([`ops::matmul`]),
//! * 2-D convolution via im2col and max pooling ([`conv`]),
//! * element-wise kernels, reductions and softmax ([`ops`]),
//! * standard initializers (Xavier/Kaiming/uniform/normal) ([`init`]).
//!
//! The library favours clarity over peak FLOPs but is careful about the
//! things the Rust Performance Book calls out: no allocation inside hot
//! loops, contiguous row-major layout, iterator-based kernels that vectorize,
//! and rayon parallelism across the batch/row dimension.

pub mod conv;
pub mod init;
pub mod ops;
pub mod tensor;

pub use tensor::Tensor;

/// Absolute tolerance used by the test-suite when comparing float tensors.
pub const TEST_EPS: f32 = 1e-4;

/// Asserts that two slices are element-wise equal within `tol`.
///
/// Panics with a useful message identifying the first offending index.
pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(a.len(), b.len(), "length mismatch: {} vs {}", a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!((x - y).abs() <= tol, "mismatch at index {i}: {x} vs {y} (tol {tol})");
    }
}
