//! Property-based tests for the tensor substrate.

use haccs_tensor::{conv, ops, Tensor};
use proptest::prelude::*;

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..8
}

fn tensor_with(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-10.0f32..10.0, n)
        .prop_map(move |data| Tensor::from_vec(data, &shape))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_matches_naive((m, k, n) in (small_dim(), small_dim(), small_dim()),
                            seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_vec((0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect(), &[k, n]);
        let fast = ops::matmul(&a, &b);
        let slow = ops::matmul_naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_transpose_variants_agree((m, k, n) in (small_dim(), small_dim(), small_dim())) {
        let a = Tensor::from_vec((0..m * k).map(|i| (i as f32).sin()).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * n).map(|i| (i as f32).cos()).collect(), &[k, n]);
        // (A·B) == (Aᵀᵀ·B) via matmul_at and == A·(Bᵀ)ᵀ via matmul_bt
        let direct = ops::matmul(&a, &b);
        let via_at = ops::matmul_at(&a.transpose2(), &b);
        let via_bt = ops::matmul_bt(&a, &b.transpose2());
        for ((x, y), z) in direct.data().iter().zip(via_at.data()).zip(via_bt.data()) {
            prop_assert!((x - y).abs() < 1e-3);
            prop_assert!((x - z).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_is_involution(t in (small_dim(), small_dim())
        .prop_flat_map(|(r, c)| tensor_with(vec![r, c]))) {
        prop_assert_eq!(t.transpose2().transpose2(), t);
    }

    #[test]
    fn softmax_rows_are_distributions(t in (1usize..6, 2usize..8)
        .prop_flat_map(|(r, c)| tensor_with(vec![r, c]))) {
        let s = ops::softmax_rows(&t);
        let cols = s.shape()[1];
        for row in s.data().chunks(cols) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
            prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn add_sub_inverse(pair in (1usize..6, 1usize..6)
        .prop_flat_map(|(r, c)| (tensor_with(vec![r, c]), tensor_with(vec![r, c])))) {
        let (a, b) = pair;
        let back = ops::sub(&ops::add(&a, &b), &b);
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn relu_output_nonnegative_and_sparse_grad(t in (1usize..5, 1usize..10)
        .prop_flat_map(|(r, c)| tensor_with(vec![r, c]))) {
        let y = ops::relu(&t);
        prop_assert!(y.data().iter().all(|&x| x >= 0.0));
        let dy = Tensor::full(t.shape(), 1.0);
        let dx = ops::relu_backward(&t, &dy);
        for (xi, gi) in t.data().iter().zip(dx.data()) {
            prop_assert_eq!(*gi, if *xi > 0.0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn conv_matches_direct(
        (n, cin, cout) in (1usize..3, 1usize..3, 1usize..3),
        hw in 5usize..8,
        pad in 0usize..2,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(hw as u64 * 31 + pad as u64);
        let x = Tensor::from_vec(
            (0..n * cin * hw * hw).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[n, cin, hw, hw],
        );
        let w = Tensor::from_vec(
            (0..cout * cin * 9).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[cout, cin, 3, 3],
        );
        let b: Vec<f32> = (0..cout).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let (fast, _) = conv::conv2d_forward(&x, &w, &b, 1, pad);
        let slow = conv::conv2d_direct(&x, &w, &b, 1, pad);
        prop_assert_eq!(fast.shape(), slow.shape());
        for (a, c) in fast.data().iter().zip(slow.data()) {
            prop_assert!((a - c).abs() < 1e-3, "{a} vs {c}");
        }
    }

    #[test]
    fn maxpool_output_dominates_inputs(hw in 4usize..9) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(hw as u64);
        let x = Tensor::from_vec(
            (0..hw * hw).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[1, 1, hw, hw],
        );
        let (y, idx) = conv::maxpool_forward(&x, 2);
        // every output equals the input at its argmax index
        for (o, &i) in y.data().iter().zip(&idx) {
            prop_assert_eq!(*o, x.data()[i as usize]);
        }
    }

    #[test]
    fn argmax_rows_within_bounds(t in (1usize..6, 1usize..9)
        .prop_flat_map(|(r, c)| tensor_with(vec![r, c]))) {
        let cols = t.shape()[1];
        for a in ops::argmax_rows(&t) {
            prop_assert!(a < cols);
        }
    }
}
