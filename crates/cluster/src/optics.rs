//! OPTICS (Ankerst et al., SIGMOD'99) over a precomputed distance matrix.
//!
//! [`optics`] computes the cluster-ordering with per-point reachability and
//! core distances. Two extraction methods turn the ordering into a
//! [`Clustering`]:
//!
//! * [`Optics::extract_dbscan`] — ε′-thresholding, equivalent to DBSCAN at
//!   radius ε′ (up to border-point assignment),
//! * [`Optics::extract_xi`] — a compact variant of the paper's ξ-steep
//!   extraction (used by the `ablation_extraction` bench),
//! * [`Optics::auto_eps`] — picks ε′ automatically from the largest gap in
//!   the reachability plot, which is what lets HACCS run OPTICS with *no*
//!   radius hyperparameter (§IV-C: "one less hyperparameter than DBSCAN").

use crate::dbscan::validate_matrix;
use crate::Clustering;

/// OPTICS output: the cluster-ordering plus reachability/core distances.
#[derive(Debug, Clone, PartialEq)]
pub struct Optics {
    /// Visit order of point indices.
    pub order: Vec<usize>,
    /// Reachability distance of `order[i]`, `f32::INFINITY` if undefined.
    pub reachability: Vec<f32>,
    /// Core distance per *point index* (not order position), `INFINITY` if
    /// the point never had `min_pts` neighbors within `eps`.
    pub core_dist: Vec<f32>,
    min_pts: usize,
}

/// Runs OPTICS with generating radius `eps` (use `f32::INFINITY` for the
/// unbounded version — the usual choice, and HACCS's default) and density
/// threshold `min_pts` (neighborhood size including the point itself).
pub fn optics(dist: &[Vec<f32>], eps: f32, min_pts: usize) -> Optics {
    validate_matrix(dist);
    assert!(min_pts >= 1, "min_pts must be at least 1");
    assert!(eps >= 0.0, "eps must be non-negative");
    let n = dist.len();
    let core_dist: Vec<f32> = (0..n)
        .map(|i| {
            let mut ds: Vec<f32> = dist[i].clone();
            ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
            core_from_sorted(&ds, eps, min_pts)
        })
        .collect();
    expand(dist, eps, min_pts, core_dist)
}

/// Core distance from a point's *sorted* distance row (self included):
/// distance to the `min_pts`-th nearest neighbor, undefined (`INFINITY`)
/// if that exceeds `eps`. The warm-start path maintains sorted rows
/// incrementally and feeds them through this exact function, so its core
/// distances are bit-identical to the cold path's.
pub(crate) fn core_from_sorted(sorted_row: &[f32], eps: f32, min_pts: usize) -> f32 {
    if sorted_row.len() >= min_pts && sorted_row[min_pts - 1] <= eps {
        sorted_row[min_pts - 1]
    } else {
        f32::INFINITY
    }
}

/// The OPTICS expansion loop over precomputed core distances. Shared
/// between [`optics`] and the warm-start path
/// ([`crate::warm::WarmOptics`]): given the same matrix and core
/// distances, the ordering is a deterministic function — no RNG, ties
/// broken by index.
pub(crate) fn expand(dist: &[Vec<f32>], eps: f32, min_pts: usize, core_dist: Vec<f32>) -> Optics {
    let n = dist.len();
    let mut processed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut reachability = Vec::with_capacity(n);
    // pending reachability per point (min over emitted updates)
    let mut reach = vec![f32::INFINITY; n];

    for start in 0..n {
        if processed[start] {
            continue;
        }
        processed[start] = true;
        order.push(start);
        reachability.push(f32::INFINITY);
        if core_dist[start].is_finite() {
            update_seeds(dist, eps, &core_dist, start, &processed, &mut reach);
        }
        // expand: repeatedly take the unprocessed point with min pending
        // reachability among those touched so far
        loop {
            let next =
                (0..n).filter(|&j| !processed[j] && reach[j].is_finite()).min_by(|&a, &b| {
                    reach[a].partial_cmp(&reach[b]).unwrap().then(a.cmp(&b)) // deterministic tie-break
                });
            let Some(q) = next else { break };
            processed[q] = true;
            order.push(q);
            reachability.push(reach[q]);
            if core_dist[q].is_finite() {
                update_seeds(dist, eps, &core_dist, q, &processed, &mut reach);
            }
        }
    }
    Optics { order, reachability, core_dist, min_pts }
}

/// Relaxes pending reachability of every unprocessed neighbor of `p`.
fn update_seeds(
    dist: &[Vec<f32>],
    eps: f32,
    core_dist: &[f32],
    p: usize,
    processed: &[bool],
    reach: &mut [f32],
) {
    let cd = core_dist[p];
    for (j, &d) in dist[p].iter().enumerate() {
        if processed[j] || d > eps {
            continue;
        }
        let new_reach = cd.max(d);
        if new_reach < reach[j] {
            reach[j] = new_reach;
        }
    }
}

impl Optics {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// DBSCAN-equivalent extraction at radius `eps_prime`.
    pub fn extract_dbscan(&self, eps_prime: f32) -> Clustering {
        let n = self.len();
        let mut labels: Vec<Option<usize>> = vec![None; n];
        let mut cluster: Option<usize> = None;
        let mut next = 0usize;
        for (pos, &point) in self.order.iter().enumerate() {
            if self.reachability[pos] > eps_prime {
                if self.core_dist[point] <= eps_prime {
                    cluster = Some(next);
                    next += 1;
                    labels[point] = cluster;
                } else {
                    cluster = None; // noise
                }
            } else {
                labels[point] = cluster;
            }
        }
        Clustering::new(labels)
    }

    /// Picks an extraction radius from the reachability plot: the midpoint
    /// of the largest gap between sorted finite reachability values,
    /// provided that gap (a) sits in the **upper half** of the plot — a
    /// threshold below the median would mark most points noise, which
    /// contradicts density clustering — and (b) clearly dominates the
    /// typical spacing. Otherwise returns a value above every reachability
    /// (→ a single cluster), which is the correct behaviour when the data
    /// is homogeneous (the paper's IID case, where "the clustering for
    /// P(y) groups all of the clients into a single cluster").
    pub fn auto_eps(&self) -> f32 {
        let mut rs: Vec<f32> =
            self.reachability.iter().copied().filter(|r| r.is_finite()).collect();
        if rs.len() < 2 {
            return f32::MAX;
        }
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let gaps: Vec<f32> = rs.windows(2).map(|w| w[1] - w[0]).collect();
        // only gaps at or above the median reachability are cluster splits;
        // anything lower is variation *inside* the dense region
        let min_i = (gaps.len().saturating_sub(1)) / 2;
        let (best_i, &best_gap) = gaps
            .iter()
            .enumerate()
            .skip(min_i)
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .expect("non-empty by construction");
        let mut sorted_gaps = gaps.clone();
        sorted_gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_gap = sorted_gaps[sorted_gaps.len() / 2];
        let range = rs[rs.len() - 1] - rs[0];
        // (1) a meaningful split must clearly dominate typical spacing AND
        // actually produce ≥2 clusters — the largest gap of a smooth ramp
        // sits at its tail and would only shave off stragglers
        if best_gap > 3.0 * median_gap.max(1e-6) && best_gap > 0.1 * range.max(1e-6) {
            let candidate = rs[best_i] + best_gap / 2.0;
            if self.extract_dbscan(candidate).n_clusters() >= 2 {
                return candidate;
            }
        }
        // no dominant gap: distinguish a *homogeneous* plot (all points in
        // one dense region → one cluster) from a *smooth wide ramp* (no
        // density structure at all → keep only the tightest neighborhoods
        // as clusters and leave the rest as noise/singletons). Measured by
        // robust dispersion: IQR relative to the median.
        let (q25, q50, q75) = (rs[rs.len() / 4], rs[rs.len() / 2], rs[3 * rs.len() / 4]);
        // the dispersion estimate needs enough points to be trustworthy;
        // small federations default to the conservative single cluster
        if rs.len() >= 16 && q50 > 0.0 && (q75 - q25) / q50 > 0.3 {
            // (2) dispersed without structure: conservative radius — only
            // genuinely similar points cluster, everything else becomes a
            // singleton (HACCS keeps those schedulable as clusters of one)
            q25
        } else {
            // (3) homogeneous: a single cluster
            rs[rs.len() - 1] * 1.001 + 1e-6
        }
    }

    /// Extraction with the automatically chosen radius.
    pub fn extract_auto(&self) -> Clustering {
        self.extract_dbscan(self.auto_eps())
    }

    /// Compact ξ-steep extraction: splits the ordering at positions whose
    /// reachability exceeds both neighbors' "valley" levels by the relative
    /// factor `1/(1−ξ)`, then labels each resulting segment of at least
    /// `min_pts` points as a cluster and smaller segments as noise.
    ///
    /// This is a simplification of the full steep-area algorithm from the
    /// OPTICS paper; it recovers the same clusters on plateau-like
    /// reachability plots (which is what histogram summaries produce) and
    /// exists mainly for the `ablation_extraction` bench.
    pub fn extract_xi(&self, xi: f32) -> Clustering {
        assert!((0.0..1.0).contains(&xi), "xi must be in [0, 1)");
        let n = self.len();
        let mut labels: Vec<Option<usize>> = vec![None; n];
        if n == 0 {
            return Clustering::new(labels);
        }
        // boundary positions: pos 0 plus any pos whose reachability is a
        // steep ξ-jump above the following point's level
        let factor = 1.0 / (1.0 - xi);
        let mut boundaries = vec![0usize];
        for pos in 1..n {
            let r = self.reachability[pos];
            let next = if pos + 1 < n { self.reachability[pos + 1] } else { f32::INFINITY };
            if !r.is_finite() || (next.is_finite() && r > next * factor) {
                boundaries.push(pos);
            }
        }
        boundaries.push(n);
        let mut next_cluster = 0usize;
        for w in boundaries.windows(2) {
            let (start, end) = (w[0], w[1]);
            if end - start >= self.min_pts {
                for pos in start..end {
                    // the boundary point itself belongs to the next segment
                    // only via its small following reachability; include it
                    labels[self.order[pos]] = Some(next_cluster);
                }
                next_cluster += 1;
            }
        }
        // densify ids (some segments may have been skipped as noise)
        Clustering::new(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;

    fn line_dist(xs: &[f32]) -> Vec<Vec<f32>> {
        xs.iter().map(|&a| xs.iter().map(|&b| (a - b).abs()).collect()).collect()
    }

    #[test]
    fn ordering_covers_all_points_once() {
        let xs = [0.0, 0.1, 5.0, 5.1, 10.0];
        let o = optics(&line_dist(&xs), f32::INFINITY, 2);
        let mut seen = o.order.clone();
        seen.sort();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(o.reachability.len(), 5);
    }

    #[test]
    fn reachability_low_within_blobs_high_between() {
        let xs = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let o = optics(&line_dist(&xs), f32::INFINITY, 2);
        // exactly one finite reachability should be large (the jump between
        // blobs); the rest should be ≤ 0.2
        let finite: Vec<f32> = o.reachability.iter().copied().filter(|r| r.is_finite()).collect();
        let large: Vec<f32> = finite.iter().copied().filter(|&r| r > 1.0).collect();
        assert_eq!(large.len(), 1, "reachabilities: {:?}", o.reachability);
    }

    #[test]
    fn extract_dbscan_matches_dbscan_clusters() {
        let xs = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 50.0];
        let d = line_dist(&xs);
        let o = optics(&d, f32::INFINITY, 2);
        let via_optics = o.extract_dbscan(0.5);
        let via_dbscan = dbscan(&d, 0.5, 2);
        // same partition, possibly different cluster numbering
        assert_eq!(via_optics.n_clusters(), via_dbscan.n_clusters());
        assert_eq!(via_optics.noise(), via_dbscan.noise());
        for c in 0..via_dbscan.n_clusters() {
            let members = via_dbscan.members(c);
            let mapped = via_optics.labels()[members[0]];
            assert!(mapped.is_some());
            for &m in &members {
                assert_eq!(via_optics.labels()[m], mapped, "split cluster");
            }
        }
    }

    #[test]
    fn auto_eps_finds_two_blobs() {
        let xs = [0.0, 0.05, 0.1, 0.15, 5.0, 5.05, 5.1, 5.15];
        let o = optics(&line_dist(&xs), f32::INFINITY, 2);
        let c = o.extract_auto();
        assert_eq!(c.n_clusters(), 2, "reachability: {:?}", o.reachability);
        assert!(c.noise().is_empty());
    }

    #[test]
    fn auto_eps_homogeneous_is_one_cluster() {
        // evenly spaced points: no density structure → a single cluster
        let xs: Vec<f32> = (0..12).map(|i| i as f32 * 0.1).collect();
        let o = optics(&line_dist(&xs), f32::INFINITY, 2);
        let c = o.extract_auto();
        assert_eq!(c.n_clusters(), 1, "reachability: {:?}", o.reachability);
        assert_eq!(c.members(0).len(), 12);
    }

    #[test]
    fn xi_extraction_on_blobs() {
        let xs = [0.0, 0.05, 0.1, 0.15, 5.0, 5.05, 5.1, 5.15];
        let o = optics(&line_dist(&xs), f32::INFINITY, 2);
        let c = o.extract_xi(0.5);
        assert_eq!(c.n_clusters(), 2, "reachability: {:?}", o.reachability);
    }

    #[test]
    fn three_blobs_auto() {
        let mut xs = Vec::new();
        for base in [0.0f32, 7.0, 19.0] {
            for k in 0..4 {
                xs.push(base + k as f32 * 0.05);
            }
        }
        let o = optics(&line_dist(&xs), f32::INFINITY, 3);
        let c = o.extract_auto();
        assert_eq!(c.n_clusters(), 3, "reachability: {:?}", o.reachability);
        for cl in 0..3 {
            assert_eq!(c.members(cl).len(), 4);
        }
    }

    #[test]
    fn bounded_eps_marks_sparse_noise() {
        let xs = [0.0, 0.1, 0.2, 50.0];
        let o = optics(&line_dist(&xs), 1.0, 2);
        let c = o.extract_dbscan(0.5);
        assert_eq!(c.noise(), vec![3]);
    }

    #[test]
    fn empty_input() {
        let o = optics(&[], f32::INFINITY, 2);
        assert!(o.is_empty());
        assert_eq!(o.extract_auto().len(), 0);
    }

    #[test]
    fn deterministic_ordering() {
        let xs = [3.0, 1.0, 2.0, 9.0, 8.0];
        let d = line_dist(&xs);
        let a = optics(&d, f32::INFINITY, 2);
        let b = optics(&d, f32::INFINITY, 2);
        assert_eq!(a.order, b.order);
        assert_eq!(a.reachability, b.reachability);
    }
}
