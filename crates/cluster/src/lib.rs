//! # haccs-cluster
//!
//! Density-based clustering over precomputed distance matrices, as required
//! by §IV-C of the paper:
//!
//! * [`dbscan::dbscan`] — classic DBSCAN (Ester et al., KDD'96),
//! * [`optics::Optics`] — OPTICS (Ankerst et al., SIGMOD'99) producing a
//!   reachability ordering, with two cluster-extraction methods:
//!   DBSCAN-equivalent ε′-thresholding and ξ-steep extraction. The paper
//!   selects OPTICS because it has "one less hyperparameter compared to
//!   DBSCAN"; the ε′ extraction here can also pick its threshold
//!   automatically from the reachability plot.
//! * [`quality`] — clustering quality metrics: the Fig. 8a
//!   "fraction of ground-truth clusters correctly identified" score and the
//!   adjusted-free Rand index,
//! * [`agglomerative`] — hierarchical clustering (the related-work
//!   alternative, Briggs et al. IJCNN'20), used by the extraction ablation.
//!
//! These algorithms operate on abstract pairwise distances, so they work
//! unchanged for P(y) and P(X|y) summaries (or anything else).

pub mod agglomerative;
pub mod buckets;
pub mod dbscan;
pub mod optics;
pub mod quality;
pub mod warm;

pub use buckets::BucketedWarmOptics;
pub use warm::{WarmOptics, WarmOpticsStats};

/// A clustering result: per-point cluster label, `None` = noise.
///
/// Density-based algorithms may label points as noise instead of forcing an
/// assignment — a property §IV-C calls out as important for HACCS, because
/// the scheduler assumes good statistical similarity within a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    labels: Vec<Option<usize>>,
    n_clusters: usize,
}

impl Clustering {
    /// Builds from per-point labels; cluster ids must be dense `0..k`.
    pub fn new(labels: Vec<Option<usize>>) -> Self {
        let n_clusters = labels.iter().flatten().map(|&c| c + 1).max().unwrap_or(0);
        // verify density: every id below the max must occur
        for c in 0..n_clusters {
            assert!(labels.contains(&Some(c)), "cluster ids must be dense: missing {c}");
        }
        Clustering { labels, n_clusters }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the clustering covers no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of clusters (noise excluded).
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Per-point labels.
    pub fn labels(&self) -> &[Option<usize>] {
        &self.labels
    }

    /// Point indices in cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.labels.iter().enumerate().filter(|(_, l)| **l == Some(c)).map(|(i, _)| i).collect()
    }

    /// Indices labelled as noise.
    pub fn noise(&self) -> Vec<usize> {
        self.labels.iter().enumerate().filter(|(_, l)| l.is_none()).map(|(i, _)| i).collect()
    }

    /// Relabels clusters into the **canonical id assignment**: clusters
    /// are numbered by ascending lowest member index. Extraction methods
    /// assign ids in visit order, which is deterministic for one matrix
    /// but permutes freely between equal re-cluster runs (the OPTICS
    /// ordering may walk the same partition differently after an
    /// unrelated join). Canonical ids make "same partition" imply "same
    /// labels", which the churn parity suite relies on.
    pub fn canonical(self) -> Clustering {
        let mut remap: Vec<Option<usize>> = vec![None; self.n_clusters];
        let mut next = 0usize;
        // first occurrence in index order = lowest member index
        for label in self.labels.iter().flatten() {
            if remap[*label].is_none() {
                remap[*label] = Some(next);
                next += 1;
            }
        }
        let labels = self.labels.iter().map(|l| l.map(|c| remap[c].expect("dense ids"))).collect();
        Clustering { labels, n_clusters: self.n_clusters }
    }

    /// Converts to a flat list of clusters where each noise point becomes
    /// its own singleton cluster. HACCS schedules *clusters*, and every
    /// client must remain schedulable, so noise devices act as clusters of
    /// one (their distribution is, as far as we can tell, unique).
    pub fn to_schedulable_groups(&self) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = (0..self.n_clusters).map(|c| self.members(c)).collect();
        for i in self.noise() {
            groups.push(vec![i]);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_members() {
        let c = Clustering::new(vec![Some(0), Some(1), None, Some(0)]);
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.members(0), vec![0, 3]);
        assert_eq!(c.members(1), vec![1]);
        assert_eq!(c.noise(), vec![2]);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn schedulable_groups_include_noise_singletons() {
        let c = Clustering::new(vec![Some(0), None, Some(0), None]);
        let g = c.to_schedulable_groups();
        assert_eq!(g, vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn all_noise_is_valid() {
        let c = Clustering::new(vec![None, None]);
        assert_eq!(c.n_clusters(), 0);
        assert_eq!(c.to_schedulable_groups().len(), 2);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_ids_rejected() {
        Clustering::new(vec![Some(0), Some(2)]);
    }

    #[test]
    fn canonical_orders_clusters_by_lowest_member() {
        // visit order assigned cluster 0 to the *later* points
        let c = Clustering::new(vec![Some(1), None, Some(0), Some(1)]);
        let canon = c.canonical();
        assert_eq!(canon.labels(), &[Some(0), None, Some(1), Some(0)]);
        assert_eq!(canon.n_clusters(), 2);
        assert_eq!(canon.members(0), vec![0, 3]);
    }

    #[test]
    fn canonical_is_idempotent() {
        let c = Clustering::new(vec![Some(2), Some(0), Some(1), Some(2)]);
        let once = c.canonical();
        let twice = once.clone().canonical();
        assert_eq!(once, twice);
    }
}
