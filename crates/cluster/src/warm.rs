//! Warm-start OPTICS for dynamic membership (§IV-C re-clustering under
//! churn).
//!
//! A cold [`crate::optics::optics`] run sorts every row of the distance
//! matrix to find core distances — `O(n² log n)` comparisons — even when a
//! single client joined or left. [`WarmOptics`] keeps one **sorted
//! distance row per point** and maintains them incrementally: a join
//! inserts one value into each surviving row (`O(log n)` search + shift),
//! a leave removes one, an updated summary swaps one. The expansion loop
//! then runs over the cached rows' core distances, and when *nothing*
//! changed since the last run the prior ordering is returned outright.
//!
//! The headline guarantee — pinned by the churn property suite — is that
//! every result is **bit-identical** to a cold run on the same matrix:
//! each maintained row holds exactly the multiset of the matrix row, so
//! the `min_pts`-th smallest element (the core distance) is the same f32,
//! and the expansion is a deterministic function of matrix + core
//! distances with index tie-breaks.

use crate::optics::{core_from_sorted, expand, Optics};

/// Running counters for a [`WarmOptics`]: how often [`WarmOptics::run`]
/// actually expanded versus returned the cached ordering. Observability
/// only — never consulted by the clustering logic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmOpticsStats {
    /// Runs that performed an expansion pass (the cache was dirty).
    pub expansions: u64,
    /// Runs answered from the cached ordering without recomputation.
    pub cached_reuses: u64,
}

/// Incrementally maintained OPTICS state: per-point sorted distance rows
/// plus the last computed ordering.
#[derive(Debug, Clone)]
pub struct WarmOptics {
    eps: f32,
    min_pts: usize,
    /// `rows[i]` = sorted multiset of `dist[i][..]` (self distance 0.0
    /// included), mirroring the cold path's per-row sort.
    rows: Vec<Vec<f32>>,
    /// The last expansion result, valid while no edit has arrived since.
    cached: Option<Optics>,
    stats: WarmOpticsStats,
}

impl WarmOptics {
    /// Empty state with the generating radius and density threshold every
    /// run will use (`eps = f32::INFINITY` is HACCS's default).
    pub fn new(eps: f32, min_pts: usize) -> Self {
        assert!(eps >= 0.0, "eps must be non-negative");
        assert!(min_pts >= 1, "min_pts must be at least 1");
        WarmOptics {
            eps,
            min_pts,
            rows: Vec::new(),
            cached: None,
            stats: WarmOpticsStats::default(),
        }
    }

    /// Expansion/reuse counters since construction.
    pub fn stats(&self) -> WarmOpticsStats {
        self.stats
    }

    /// Number of points currently tracked.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no points are tracked.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The density threshold runs use.
    pub fn min_pts(&self) -> usize {
        self.min_pts
    }

    /// A point was inserted at matrix position `pos`. `row` is the new
    /// point's full distance row in the **post-insert** indexing (length
    /// `len() + 1`, `row[pos] == 0.0`).
    pub fn insert(&mut self, pos: usize, row: &[f32]) {
        assert_eq!(row.len(), self.rows.len() + 1, "row must cover every point post-insert");
        assert!(pos < row.len(), "insert position out of bounds");
        assert_eq!(row[pos], 0.0, "self distance must be zero");
        for (i, existing) in self.rows.iter_mut().enumerate() {
            let j = if i < pos { i } else { i + 1 };
            sorted_insert(existing, row[j]);
        }
        let mut own = row.to_vec();
        own.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.rows.insert(pos, own);
        self.cached = None;
    }

    /// The point at matrix position `pos` was removed. `row` is that
    /// point's distance row in the **pre-remove** indexing (length
    /// `len()`), used to delete its contribution from every surviving row.
    pub fn remove(&mut self, pos: usize, row: &[f32]) {
        assert_eq!(row.len(), self.rows.len(), "row must cover every point pre-remove");
        assert!(pos < self.rows.len(), "remove position out of bounds");
        self.rows.remove(pos);
        let mut i = 0;
        for (old_idx, d) in row.iter().enumerate() {
            if old_idx == pos {
                continue;
            }
            sorted_remove(&mut self.rows[i], *d);
            i += 1;
        }
        self.cached = None;
    }

    /// The point at matrix position `pos` changed its distances (an
    /// updated summary). `old_row`/`new_row` are its rows before and
    /// after, both in the unchanged indexing (`[pos] == 0.0`).
    pub fn update(&mut self, pos: usize, old_row: &[f32], new_row: &[f32]) {
        assert_eq!(old_row.len(), self.rows.len());
        assert_eq!(new_row.len(), self.rows.len());
        assert!(pos < self.rows.len(), "update position out of bounds");
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i == pos {
                continue;
            }
            sorted_remove(row, old_row[i]);
            sorted_insert(row, new_row[i]);
        }
        let mut own = new_row.to_vec();
        own.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.rows[pos] = own;
        self.cached = None;
    }

    /// Runs OPTICS over `dist`, reusing the maintained sorted rows for
    /// core distances and the prior ordering when no edit arrived since
    /// the last run. `dist` must be the matrix the edit stream described.
    pub fn run(&mut self, dist: &[Vec<f32>]) -> &Optics {
        assert_eq!(dist.len(), self.rows.len(), "matrix/edit-stream mismatch");
        if self.cached.is_none() {
            let core: Vec<f32> =
                self.rows.iter().map(|row| core_from_sorted(row, self.eps, self.min_pts)).collect();
            self.cached = Some(expand(dist, self.eps, self.min_pts, core));
            self.stats.expansions += 1;
        } else {
            self.stats.cached_reuses += 1;
        }
        self.cached.as_ref().expect("just computed")
    }

    /// The last computed ordering, if no edit invalidated it.
    pub fn cached(&self) -> Option<&Optics> {
        self.cached.as_ref()
    }
}

/// Inserts `value` into a sorted vector, keeping it sorted.
fn sorted_insert(row: &mut Vec<f32>, value: f32) {
    assert!(!value.is_nan(), "distance must not be NaN");
    let pos = row.partition_point(|&x| x < value);
    row.insert(pos, value);
}

/// Removes one occurrence of `value` from a sorted vector. The value is
/// always present bit-for-bit: it was inserted from the same distance
/// computation that now asks for its removal.
fn sorted_remove(row: &mut Vec<f32>, value: f32) {
    let start = row.partition_point(|&x| x < value);
    assert!(
        start < row.len() && row[start] == value,
        "removing a distance that was never inserted: {value}"
    );
    row.remove(start);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optics::optics;

    fn line_dist(xs: &[f32]) -> Vec<Vec<f32>> {
        xs.iter().map(|&a| xs.iter().map(|&b| (a - b).abs()).collect()).collect()
    }

    /// Full row of point `pos` within `xs`.
    fn row_of(xs: &[f32], pos: usize) -> Vec<f32> {
        xs.iter().map(|&b| (xs[pos] - b).abs()).collect()
    }

    #[test]
    fn incremental_build_matches_cold_run() {
        let xs = [0.0f32, 0.1, 5.0, 5.1, 10.0, 0.2];
        let mut warm = WarmOptics::new(f32::INFINITY, 2);
        let mut present: Vec<f32> = Vec::new();
        for &x in &xs {
            let pos = present.partition_point(|&p| p < x);
            present.insert(pos, x);
            warm.insert(pos, &row_of(&present, pos));
        }
        let dist = line_dist(&present);
        let w = warm.run(&dist).clone();
        let c = optics(&dist, f32::INFINITY, 2);
        assert_eq!(w.order, c.order);
        assert_eq!(w.reachability, c.reachability);
        assert_eq!(w.core_dist, c.core_dist);
    }

    #[test]
    fn remove_matches_cold_run() {
        let xs = [0.0f32, 0.1, 0.2, 5.0, 5.1, 5.2];
        let mut warm = WarmOptics::new(f32::INFINITY, 2);
        let mut present: Vec<f32> = Vec::new();
        for &x in &xs {
            let pos = present.len();
            present.push(x);
            warm.insert(pos, &row_of(&present, pos));
        }
        // drop the middle of the first blob
        warm.remove(1, &row_of(&present, 1));
        present.remove(1);
        let dist = line_dist(&present);
        let w = warm.run(&dist).clone();
        let c = optics(&dist, f32::INFINITY, 2);
        assert_eq!(w.order, c.order);
        assert_eq!(w.reachability, c.reachability);
    }

    #[test]
    fn update_matches_cold_run() {
        let xs = [0.0f32, 0.1, 5.0, 5.1];
        let mut warm = WarmOptics::new(f32::INFINITY, 2);
        let mut present: Vec<f32> = Vec::new();
        for &x in &xs {
            let pos = present.len();
            present.push(x);
            warm.insert(pos, &row_of(&present, pos));
        }
        // point 0 drifts to the second blob
        let old_row = row_of(&present, 0);
        present[0] = 5.2;
        let new_row = row_of(&present, 0);
        warm.update(0, &old_row, &new_row);
        let dist = line_dist(&present);
        let w = warm.run(&dist).clone();
        let c = optics(&dist, f32::INFINITY, 2);
        assert_eq!(w.order, c.order);
        assert_eq!(w.reachability, c.reachability);
    }

    #[test]
    fn clean_state_returns_cached_ordering_without_rerun() {
        let xs = [0.0f32, 0.1, 5.0];
        let mut warm = WarmOptics::new(f32::INFINITY, 2);
        let mut present: Vec<f32> = Vec::new();
        for &x in &xs {
            let pos = present.len();
            present.push(x);
            warm.insert(pos, &row_of(&present, pos));
        }
        let dist = line_dist(&present);
        assert!(warm.cached().is_none());
        warm.run(&dist);
        assert!(warm.cached().is_some(), "run must populate the cache");
        let first = warm.run(&dist) as *const Optics;
        let second = warm.run(&dist) as *const Optics;
        assert_eq!(first, second, "clean reruns must reuse the prior ordering");
        assert_eq!(warm.stats(), WarmOpticsStats { expansions: 1, cached_reuses: 2 });
    }

    #[test]
    #[should_panic(expected = "never inserted")]
    fn removing_unknown_distance_panics() {
        let mut warm = WarmOptics::new(f32::INFINITY, 2);
        warm.insert(0, &[0.0]);
        warm.insert(1, &[1.0, 0.0]);
        warm.remove(0, &[0.0, 7.0]);
    }

    #[test]
    fn empty_state_runs() {
        let mut warm = WarmOptics::new(f32::INFINITY, 2);
        assert!(warm.is_empty());
        let o = warm.run(&[]);
        assert!(o.is_empty());
    }
}
