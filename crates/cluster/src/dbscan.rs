//! DBSCAN (Ester et al., KDD'96) over a precomputed distance matrix.

use crate::Clustering;
use std::collections::VecDeque;

/// Runs DBSCAN.
///
/// * `dist` — symmetric `n×n` distance matrix,
/// * `eps` — neighborhood radius,
/// * `min_pts` — minimum neighborhood size (including the point itself)
///   for a point to be a *core* point.
///
/// Border points join the first core point's cluster that reaches them;
/// points reachable from no core point are noise.
pub fn dbscan(dist: &[Vec<f32>], eps: f32, min_pts: usize) -> Clustering {
    let n = dist.len();
    validate_matrix(dist);
    assert!(eps >= 0.0, "eps must be non-negative");
    assert!(min_pts >= 1, "min_pts must be at least 1");

    let neighbors: Vec<Vec<usize>> =
        (0..n).map(|i| (0..n).filter(|&j| dist[i][j] <= eps).collect()).collect();
    let core: Vec<bool> = neighbors.iter().map(|nb| nb.len() >= min_pts).collect();

    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut next_cluster = 0usize;

    for p in 0..n {
        if visited[p] || !core[p] {
            continue;
        }
        // expand a new cluster from core point p (BFS)
        let cid = next_cluster;
        next_cluster += 1;
        let mut queue = VecDeque::new();
        visited[p] = true;
        labels[p] = Some(cid);
        queue.push_back(p);
        while let Some(q) = queue.pop_front() {
            for &r in &neighbors[q] {
                if labels[r].is_none() {
                    labels[r] = Some(cid);
                }
                if !visited[r] && core[r] {
                    visited[r] = true;
                    queue.push_back(r);
                }
            }
        }
    }
    Clustering::new(labels)
}

/// Panics unless `dist` is square, symmetric, non-negative with zero
/// diagonal.
pub fn validate_matrix(dist: &[Vec<f32>]) {
    let n = dist.len();
    for (i, row) in dist.iter().enumerate() {
        assert_eq!(row.len(), n, "distance matrix must be square");
        assert!(row[i].abs() < 1e-6, "diagonal must be zero");
        for (j, &d) in row.iter().enumerate() {
            assert!(d >= 0.0 && d.is_finite(), "distances must be finite and ≥ 0");
            assert!((d - dist[j][i]).abs() < 1e-5, "matrix must be symmetric at ({i},{j})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance matrix for points on a line.
    fn line_dist(xs: &[f32]) -> Vec<Vec<f32>> {
        xs.iter().map(|&a| xs.iter().map(|&b| (a - b).abs()).collect()).collect()
    }

    #[test]
    fn two_obvious_blobs() {
        let xs = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let c = dbscan(&line_dist(&xs), 0.5, 2);
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.members(0), vec![0, 1, 2]);
        assert_eq!(c.members(1), vec![3, 4, 5]);
        assert!(c.noise().is_empty());
    }

    #[test]
    fn isolated_point_is_noise() {
        let xs = [0.0, 0.1, 0.2, 50.0];
        let c = dbscan(&line_dist(&xs), 0.5, 2);
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.noise(), vec![3]);
    }

    #[test]
    fn chain_connectivity_merges() {
        // each consecutive pair within eps → one cluster despite large span
        let xs = [0.0, 0.4, 0.8, 1.2, 1.6];
        let c = dbscan(&line_dist(&xs), 0.5, 2);
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.members(0).len(), 5);
    }

    #[test]
    fn min_pts_one_makes_everything_core() {
        let xs = [0.0, 100.0];
        let c = dbscan(&line_dist(&xs), 0.5, 1);
        assert_eq!(c.n_clusters(), 2); // two singleton clusters, no noise
        assert!(c.noise().is_empty());
    }

    #[test]
    fn high_min_pts_all_noise() {
        let xs = [0.0, 0.1, 0.2];
        let c = dbscan(&line_dist(&xs), 0.5, 10);
        assert_eq!(c.n_clusters(), 0);
        assert_eq!(c.noise().len(), 3);
    }

    #[test]
    fn border_point_joins_cluster() {
        // 0.0, 0.3, 0.6 with eps=0.35, min_pts=3: only 0.3 is core
        // (neighbors {0.0, 0.3, 0.6}); 0.0 and 0.6 are border points.
        let xs = [0.0, 0.3, 0.6];
        let c = dbscan(&line_dist(&xs), 0.35, 3);
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.members(0).len(), 3);
    }

    #[test]
    fn empty_input() {
        let c = dbscan(&[], 1.0, 2);
        assert_eq!(c.len(), 0);
        assert_eq!(c.n_clusters(), 0);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        let m = vec![vec![0.0, 1.0], vec![2.0, 0.0]];
        dbscan(&m, 0.5, 1);
    }
}
