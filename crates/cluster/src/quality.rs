//! Clustering quality metrics.
//!
//! [`cluster_identification_accuracy`] is the Fig. 8a metric: the fraction
//! of ground-truth clusters that the algorithm recovered *exactly*.
//! [`rand_index`] is the standard pair-counting agreement score, used by
//! tests and the ablation benches.

use crate::Clustering;

/// Fraction of ground-truth groups recovered exactly.
///
/// A ground-truth group counts as correctly identified iff some predicted
/// cluster contains exactly that group's members (no more, no fewer) —
/// "the clustering accuracy will be based on the number of clusters we
/// correctly identify" (§V-D2).
pub fn cluster_identification_accuracy(predicted: &Clustering, truth: &[Vec<usize>]) -> f32 {
    assert!(!truth.is_empty(), "need at least one ground-truth group");
    let predicted_sets: Vec<Vec<usize>> = (0..predicted.n_clusters())
        .map(|c| {
            let mut m = predicted.members(c);
            m.sort_unstable();
            m
        })
        .collect();
    let mut correct = 0usize;
    for group in truth {
        let mut g = group.clone();
        g.sort_unstable();
        if predicted_sets.contains(&g) {
            correct += 1;
        }
    }
    correct as f32 / truth.len() as f32
}

/// Rand index between a predicted clustering and ground-truth labels.
/// Noise points are treated as singleton clusters. Returns a value in
/// `[0, 1]`; 1 means perfect pairwise agreement.
pub fn rand_index(predicted: &Clustering, truth_labels: &[usize]) -> f32 {
    let n = predicted.len();
    assert_eq!(truth_labels.len(), n, "label length mismatch");
    if n < 2 {
        return 1.0;
    }
    // map noise to unique negative ids via offset
    let pred: Vec<usize> = predicted
        .labels()
        .iter()
        .enumerate()
        .map(|(i, l)| match l {
            Some(c) => *c,
            None => predicted.n_clusters() + i,
        })
        .collect();
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_pred = pred[i] == pred[j];
            let same_true = truth_labels[i] == truth_labels[j];
            if same_pred == same_true {
                agree += 1;
            }
            total += 1;
        }
    }
    agree as f32 / total as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identification_perfect() {
        let pred = Clustering::new(vec![Some(0), Some(0), Some(1), Some(1)]);
        let truth = vec![vec![0, 1], vec![2, 3]];
        assert_eq!(cluster_identification_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn identification_partial() {
        // cluster {2,3} found; {0,1} split
        let pred = Clustering::new(vec![Some(0), Some(1), Some(2), Some(2)]);
        let truth = vec![vec![0, 1], vec![2, 3]];
        assert_eq!(cluster_identification_accuracy(&pred, &truth), 0.5);
    }

    #[test]
    fn identification_merged_groups_fail() {
        // one big cluster matches neither 2-element group exactly
        let pred = Clustering::new(vec![Some(0), Some(0), Some(0), Some(0)]);
        let truth = vec![vec![0, 1], vec![2, 3]];
        assert_eq!(cluster_identification_accuracy(&pred, &truth), 0.0);
    }

    #[test]
    fn identification_order_insensitive() {
        let pred = Clustering::new(vec![Some(1), Some(0), Some(0), Some(1)]);
        let truth = vec![vec![3, 0], vec![2, 1]];
        assert_eq!(cluster_identification_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn rand_index_perfect_and_worst() {
        let pred = Clustering::new(vec![Some(0), Some(0), Some(1), Some(1)]);
        assert_eq!(rand_index(&pred, &[5, 5, 9, 9]), 1.0);
        // completely merged vs all-distinct truth
        let merged = Clustering::new(vec![Some(0), Some(0), Some(0)]);
        assert_eq!(rand_index(&merged, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn rand_index_noise_is_singleton() {
        let pred = Clustering::new(vec![Some(0), Some(0), None]);
        // truth: {0,1} together, 2 alone → noise-as-singleton agrees fully
        assert_eq!(rand_index(&pred, &[0, 0, 1]), 1.0);
    }

    #[test]
    fn rand_index_tiny_inputs() {
        let pred = Clustering::new(vec![Some(0)]);
        assert_eq!(rand_index(&pred, &[0]), 1.0);
    }
}
