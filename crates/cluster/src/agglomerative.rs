//! Agglomerative (hierarchical) clustering — the alternative the related
//! work uses for federated clustering (Briggs et al., IJCNN'20). Provided
//! for the `ablation_extraction` comparison; HACCS itself uses OPTICS.

use crate::Clustering;

/// How the distance between two clusters is derived from point distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum over cross pairs (chains like DBSCAN).
    Single,
    /// Maximum over cross pairs (compact clusters).
    Complete,
    /// Unweighted average over cross pairs (UPGMA).
    Average,
}

impl Linkage {
    fn merge(self, a: f32, b: f32, na: usize, nb: usize) -> f32 {
        match self {
            Linkage::Single => a.min(b),
            Linkage::Complete => a.max(b),
            Linkage::Average => (a * na as f32 + b * nb as f32) / (na + nb) as f32,
        }
    }
}

/// Bottom-up merge until `k` clusters remain. `dist` must be a symmetric
/// matrix with zero diagonal. Never produces noise points.
pub fn agglomerative(dist: &[Vec<f32>], k: usize, linkage: Linkage) -> Clustering {
    let n = dist.len();
    assert!(k >= 1, "need at least one cluster");
    if n == 0 {
        return Clustering::new(Vec::new());
    }
    let k = k.min(n);
    crate::dbscan::validate_matrix(dist);

    // active cluster list: member sets + mutable pairwise distances
    let mut members: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let mut d: Vec<Vec<f32>> = dist.to_vec();
    let mut active = n;
    while active > k {
        // find the closest active pair
        let mut best = (usize::MAX, usize::MAX, f32::INFINITY);
        for i in 0..n {
            if members[i].is_none() {
                continue;
            }
            for j in (i + 1)..n {
                if members[j].is_none() {
                    continue;
                }
                if d[i][j] < best.2 {
                    best = (i, j, d[i][j]);
                }
            }
        }
        let (i, j, _) = best;
        // merge j into i; update linkage distances
        let nj = members[j].as_ref().map(|m| m.len()).unwrap_or(0);
        let ni = members[i].as_ref().map(|m| m.len()).unwrap_or(0);
        for t in 0..n {
            if t == i || t == j || members[t].is_none() {
                continue;
            }
            let merged = linkage.merge(d[i][t], d[j][t], ni, nj);
            d[i][t] = merged;
            d[t][i] = merged;
        }
        let moved = members[j].take().expect("j active");
        members[i].as_mut().expect("i active").extend(moved);
        active -= 1;
    }

    // densify labels
    let mut labels = vec![None; n];
    for (next, m) in members.iter().flatten().enumerate() {
        for &p in m {
            labels[p] = Some(next);
        }
    }
    Clustering::new(labels)
}

/// Bottom-up merge while the closest pair is within `threshold` (the
/// cluster count is discovered rather than specified).
pub fn agglomerative_threshold(dist: &[Vec<f32>], threshold: f32, linkage: Linkage) -> Clustering {
    let n = dist.len();
    assert!(threshold >= 0.0);
    if n == 0 {
        return Clustering::new(Vec::new());
    }
    crate::dbscan::validate_matrix(dist);

    let mut members: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let mut d: Vec<Vec<f32>> = dist.to_vec();
    loop {
        let mut best = (usize::MAX, usize::MAX, f32::INFINITY);
        for i in 0..n {
            if members[i].is_none() {
                continue;
            }
            for j in (i + 1)..n {
                if members[j].is_none() {
                    continue;
                }
                if d[i][j] < best.2 {
                    best = (i, j, d[i][j]);
                }
            }
        }
        if best.2 > threshold || best.0 == usize::MAX {
            break;
        }
        let (i, j, _) = best;
        let nj = members[j].as_ref().map(|m| m.len()).unwrap_or(0);
        let ni = members[i].as_ref().map(|m| m.len()).unwrap_or(0);
        for t in 0..n {
            if t == i || t == j || members[t].is_none() {
                continue;
            }
            let merged = linkage.merge(d[i][t], d[j][t], ni, nj);
            d[i][t] = merged;
            d[t][i] = merged;
        }
        let moved = members[j].take().expect("j active");
        members[i].as_mut().expect("i active").extend(moved);
    }

    let mut labels = vec![None; n];
    for (next, m) in members.iter().flatten().enumerate() {
        for &p in m {
            labels[p] = Some(next);
        }
    }
    Clustering::new(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_dist(xs: &[f32]) -> Vec<Vec<f32>> {
        xs.iter().map(|&a| xs.iter().map(|&b| (a - b).abs()).collect()).collect()
    }

    #[test]
    fn k_clusters_on_blobs() {
        let xs = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let c = agglomerative(&line_dist(&xs), 2, linkage);
            assert_eq!(c.n_clusters(), 2, "{linkage:?}");
            assert_eq!(c.members(c.labels()[0].unwrap()).len(), 3);
            assert!(c.noise().is_empty(), "agglomerative never leaves noise");
        }
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let xs = [0.0, 1.0, 2.0];
        let c = agglomerative(&line_dist(&xs), 3, Linkage::Average);
        assert_eq!(c.n_clusters(), 3);
    }

    #[test]
    fn k_one_merges_everything() {
        let xs = [0.0, 5.0, 100.0];
        let c = agglomerative(&line_dist(&xs), 1, Linkage::Complete);
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.members(0).len(), 3);
    }

    #[test]
    fn threshold_discovers_cluster_count() {
        let xs = [0.0, 0.1, 5.0, 5.1, 20.0];
        let c = agglomerative_threshold(&line_dist(&xs), 0.5, Linkage::Average);
        assert_eq!(c.n_clusters(), 5 - 2, "two merges under threshold 0.5");
        // raising the threshold merges the blobs too
        let c2 = agglomerative_threshold(&line_dist(&xs), 6.0, Linkage::Single);
        assert_eq!(c2.n_clusters(), 2);
    }

    #[test]
    fn single_linkage_chains_complete_does_not() {
        // a chain: single linkage merges it at small k-distance; complete
        // linkage keeps ends apart longer
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let single = agglomerative_threshold(&line_dist(&xs), 1.0, Linkage::Single);
        assert_eq!(single.n_clusters(), 1);
        let complete = agglomerative_threshold(&line_dist(&xs), 1.0, Linkage::Complete);
        assert!(complete.n_clusters() > 1);
    }

    #[test]
    fn empty_input() {
        let c = agglomerative(&[], 3, Linkage::Average);
        assert_eq!(c.len(), 0);
    }
}
