//! Bucket-scoped warm OPTICS: an ordered family of independent
//! [`WarmOptics`] instances, one per coarse sketch bucket (DESIGN.md §15).
//!
//! The two-level clustering pipeline partitions the federation by a coarse
//! summary sketch and runs exact OPTICS only *within* each bucket, over
//! that bucket's cell representatives. This type owns the per-bucket warm
//! state so churn in one bucket never invalidates the cached orderings of
//! the others: a join that lands in bucket `b` dirties `b` alone, and the
//! next [`BucketedWarmOptics::run`] over any other bucket is answered from
//! its cached ordering.
//!
//! Keys are opaque to this crate — anything `Ord + Clone` works; the
//! caller (haccs-core's `ClusterCache`) uses quantized summary sketches.

use crate::optics::Optics;
use crate::warm::{WarmOptics, WarmOpticsStats};
use std::collections::BTreeMap;

/// A keyed family of [`WarmOptics`] instances sharing one `(eps, min_pts)`
/// configuration. Buckets are created lazily on first insert and dropped
/// when their last point is removed.
#[derive(Debug, Clone)]
pub struct BucketedWarmOptics<K: Ord + Clone> {
    eps: f32,
    min_pts: usize,
    buckets: BTreeMap<K, WarmOptics>,
}

impl<K: Ord + Clone> BucketedWarmOptics<K> {
    /// Empty family; every bucket created later uses this configuration.
    pub fn new(eps: f32, min_pts: usize) -> Self {
        BucketedWarmOptics { eps, min_pts, buckets: BTreeMap::new() }
    }

    /// The shared OPTICS `min_pts`.
    pub fn min_pts(&self) -> usize {
        self.min_pts
    }

    /// Number of live (non-empty) buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Points held by `key`'s bucket (0 when the bucket doesn't exist).
    pub fn len(&self, key: &K) -> usize {
        self.buckets.get(key).map_or(0, |w| w.len())
    }

    /// Total points across every bucket.
    pub fn total_len(&self) -> usize {
        self.buckets.values().map(|w| w.len()).sum()
    }

    /// True when no bucket holds any point.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Splices a point into `key`'s bucket at `pos`, creating the bucket
    /// on first use. Same row contract as [`WarmOptics::insert`].
    pub fn insert(&mut self, key: K, pos: usize, row: &[f32]) {
        self.buckets
            .entry(key)
            .or_insert_with(|| WarmOptics::new(self.eps, self.min_pts))
            .insert(pos, row);
    }

    /// Removes the point at `pos` from `key`'s bucket, dropping the bucket
    /// when it empties. Same row contract as [`WarmOptics::remove`].
    pub fn remove(&mut self, key: &K, pos: usize, row: &[f32]) {
        let w = self.buckets.get_mut(key).expect("remove from a bucket that was never filled");
        w.remove(pos, row);
        if w.is_empty() {
            self.buckets.remove(key);
        }
    }

    /// Replaces the row of the point at `pos` in `key`'s bucket. Same row
    /// contract as [`WarmOptics::update`].
    pub fn update(&mut self, key: &K, pos: usize, old_row: &[f32], new_row: &[f32]) {
        self.buckets
            .get_mut(key)
            .expect("update in a bucket that was never filled")
            .update(pos, old_row, new_row);
    }

    /// Runs (or reuses) OPTICS over `key`'s bucket, given that bucket's
    /// dense distance matrix. Bit-identical to a cold
    /// [`crate::optics::optics`] over the same matrix.
    pub fn run(&mut self, key: &K, dist: &[Vec<f32>]) -> &Optics {
        self.buckets.get_mut(key).expect("run over a bucket that was never filled").run(dist)
    }

    /// Aggregate expansion/reuse counters across every live bucket.
    pub fn stats(&self) -> WarmOpticsStats {
        let mut out = WarmOpticsStats::default();
        for w in self.buckets.values() {
            let s = w.stats();
            out.expansions += s.expansions;
            out.cached_reuses += s.cached_reuses;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optics::optics;

    /// Post-insert row for appending point `i` of `m` to a warm state that
    /// already holds points `0..i` of `m`.
    fn append_row(m: &[Vec<f32>], i: usize) -> Vec<f32> {
        m[i][..=i].to_vec()
    }

    fn well_separated(groups: usize, per: usize) -> Vec<Vec<f32>> {
        let n = groups * per;
        let mut m = vec![vec![0.0f32; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i / per != j / per {
                    m[i][j] = 1.0;
                } else if i != j {
                    m[i][j] = 0.05;
                }
            }
        }
        m
    }

    #[test]
    fn per_bucket_runs_match_cold_optics() {
        let a = well_separated(2, 4);
        let b = well_separated(3, 3);
        let mut fam: BucketedWarmOptics<u8> = BucketedWarmOptics::new(f32::INFINITY, 2);
        for i in 0..a.len() {
            fam.insert(0, i, &append_row(&a, i));
        }
        for i in 0..b.len() {
            fam.insert(1, i, &append_row(&b, i));
        }
        assert_eq!(fam.bucket_count(), 2);
        assert_eq!(fam.total_len(), a.len() + b.len());
        assert_eq!(fam.run(&0, &a), &optics(&a, f32::INFINITY, 2));
        assert_eq!(fam.run(&1, &b), &optics(&b, f32::INFINITY, 2));
    }

    #[test]
    fn churn_in_one_bucket_keeps_the_others_cached() {
        let a = well_separated(2, 3);
        let b = well_separated(2, 4);
        let mut fam: BucketedWarmOptics<u8> = BucketedWarmOptics::new(f32::INFINITY, 2);
        for i in 0..a.len() {
            fam.insert(0, i, &append_row(&a, i));
        }
        for i in 0..b.len() {
            fam.insert(1, i, &append_row(&b, i));
        }
        fam.run(&0, &a);
        fam.run(&1, &b);
        let before = fam.stats();

        // dirty bucket 0 only: re-running bucket 1 must be a cached reuse
        let a2 = well_separated(2, 3); // same matrix, re-inserted point
        fam.remove(&0, a.len() - 1, &append_row(&a, a.len() - 1));
        fam.insert(0, a.len() - 1, &append_row(&a2, a2.len() - 1));
        fam.run(&1, &b);
        let after = fam.stats();
        assert_eq!(after.cached_reuses, before.cached_reuses + 1);
        assert_eq!(after.expansions, before.expansions);
    }

    #[test]
    fn emptied_buckets_are_dropped() {
        let mut fam: BucketedWarmOptics<u8> = BucketedWarmOptics::new(f32::INFINITY, 2);
        fam.insert(7, 0, &[0.0]);
        assert_eq!(fam.bucket_count(), 1);
        assert_eq!(fam.len(&7), 1);
        fam.remove(&7, 0, &[0.0]);
        assert_eq!(fam.bucket_count(), 0);
        assert!(fam.is_empty());
        assert_eq!(fam.len(&7), 0);
    }
}
