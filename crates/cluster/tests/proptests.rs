//! Property-based tests for DBSCAN/OPTICS over random 1-D point sets,
//! including the warm-start churn invariant: [`WarmOptics`] over any
//! join/leave/update sequence is **bit-identical** to a cold
//! [`optics`] run on the same matrix.

use haccs_cluster::dbscan::dbscan;
use haccs_cluster::optics::optics;
use haccs_cluster::quality::{cluster_identification_accuracy, rand_index};
use haccs_cluster::{Clustering, WarmOptics};
use proptest::prelude::*;

fn line_dist(xs: &[f32]) -> Vec<Vec<f32>> {
    xs.iter().map(|&a| xs.iter().map(|&b| (a - b).abs()).collect()).collect()
}

fn points() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.0f32..100.0, 2..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dbscan_labels_are_dense_and_complete(xs in points(), eps in 0.1f32..20.0, min_pts in 1usize..5) {
        let c = dbscan(&line_dist(&xs), eps, min_pts);
        prop_assert_eq!(c.len(), xs.len());
        // members of all clusters + noise partition the points
        let mut seen = vec![false; xs.len()];
        for k in 0..c.n_clusters() {
            let members = c.members(k);
            prop_assert!(!members.is_empty(), "empty cluster id {k}");
            for m in members {
                prop_assert!(!seen[m], "point {m} in two clusters");
                seen[m] = true;
            }
        }
        for m in c.noise() {
            prop_assert!(!seen[m]);
            seen[m] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dbscan_min_pts_one_has_no_noise(xs in points(), eps in 0.1f32..20.0) {
        let c = dbscan(&line_dist(&xs), eps, 1);
        prop_assert!(c.noise().is_empty(), "min_pts=1 makes every point core");
    }

    #[test]
    fn dbscan_same_cluster_closure(xs in points(), eps in 0.5f32..10.0) {
        // points within eps of each other (both core, min_pts=1) share a cluster
        let c = dbscan(&line_dist(&xs), eps, 1);
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if (xs[i] - xs[j]).abs() <= eps {
                    prop_assert_eq!(c.labels()[i], c.labels()[j],
                        "{} and {} within eps but split", xs[i], xs[j]);
                }
            }
        }
    }

    #[test]
    fn optics_order_is_a_permutation(xs in points(), min_pts in 1usize..5) {
        let o = optics(&line_dist(&xs), f32::INFINITY, min_pts);
        let mut order = o.order.clone();
        order.sort_unstable();
        let expect: Vec<usize> = (0..xs.len()).collect();
        prop_assert_eq!(order, expect);
        prop_assert_eq!(o.reachability.len(), xs.len());
    }

    #[test]
    fn optics_extraction_matches_dbscan_on_core_points(xs in points(), eps in 0.5f32..10.0, min_pts in 2usize..4) {
        // DBSCAN ≡ OPTICS-ε-extraction up to border-point assignment: the
        // *core* points must induce the same partition.
        let d = line_dist(&xs);
        let via_dbscan = dbscan(&d, eps, min_pts);
        let via_optics = optics(&d, f32::INFINITY, min_pts).extract_dbscan(eps);
        prop_assert_eq!(via_optics.n_clusters(), via_dbscan.n_clusters());
        let core: Vec<usize> = (0..xs.len())
            .filter(|&i| d[i].iter().filter(|&&x| x <= eps).count() >= min_pts)
            .collect();
        for &i in &core {
            prop_assert!(via_dbscan.labels()[i].is_some(), "core point noise in dbscan");
            prop_assert!(via_optics.labels()[i].is_some(), "core point noise in optics");
            for &j in &core {
                let same_a = via_dbscan.labels()[i] == via_dbscan.labels()[j];
                let same_b = via_optics.labels()[i] == via_optics.labels()[j];
                prop_assert_eq!(same_a, same_b, "core pair ({},{}) split differently", i, j);
            }
        }
    }

    #[test]
    fn auto_extraction_never_panics_and_covers(xs in points(), min_pts in 2usize..4) {
        let o = optics(&line_dist(&xs), f32::INFINITY, min_pts);
        let c = o.extract_auto();
        let groups = c.to_schedulable_groups();
        let covered: usize = groups.iter().map(|g| g.len()).sum();
        prop_assert_eq!(covered, xs.len(), "every point must stay schedulable");
    }

    #[test]
    fn xi_extraction_bounded(xs in points(), xi in 0.01f32..0.9) {
        let o = optics(&line_dist(&xs), f32::INFINITY, 2);
        let c = o.extract_xi(xi);
        prop_assert!(c.n_clusters() <= xs.len());
    }

    #[test]
    fn rand_index_bounds(raw in proptest::collection::vec(0usize..4, 2..20)) {
        // densify raw ids (3 → noise, others remapped to dense cluster ids)
        let mut next = 0usize;
        let mut map = std::collections::HashMap::new();
        let labels: Vec<Option<usize>> = raw
            .iter()
            .map(|&l| {
                if l == 3 {
                    None
                } else {
                    Some(*map.entry(l).or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    }))
                }
            })
            .collect();
        let pred = Clustering::new(labels);
        let truth: Vec<usize> = raw.clone();
        let ri = rand_index(&pred, &truth);
        prop_assert!((0.0..=1.0).contains(&ri), "rand index {}", ri);
        // self-agreement when noise treated as its own class in truth too
        let ri_self = rand_index(&pred, &raw.to_vec());
        prop_assert!((0.0..=1.0).contains(&ri_self), "rand index {}", ri_self); // bounded-only sanity
    }

    #[test]
    fn warm_start_is_bit_identical_to_cold_optics_under_churn(
        init in proptest::collection::vec(0.0f32..100.0, 2..10),
        ops in proptest::collection::vec((0u8..3, 0.0f32..100.0, any::<usize>()), 1..24),
        min_pts in 1usize..4,
    ) {
        // the live point set; matrix index = position in this vector
        let mut points: Vec<f32> = Vec::new();
        let mut warm = WarmOptics::new(f32::INFINITY, min_pts);
        let row_of = |pts: &[f32], pos: usize| -> Vec<f32> {
            pts.iter().map(|&b| (pts[pos] - b).abs()).collect()
        };

        for &x in &init {
            let pos = points.len();
            points.push(x);
            warm.insert(pos, &row_of(&points, pos));
        }

        for (op, val, pick) in ops {
            match op {
                0 => {
                    // join at an arbitrary matrix position
                    let pos = pick % (points.len() + 1);
                    points.insert(pos, val);
                    warm.insert(pos, &row_of(&points, pos));
                }
                1 if points.len() > 1 => {
                    let pos = pick % points.len();
                    warm.remove(pos, &row_of(&points, pos));
                    points.remove(pos);
                }
                _ if !points.is_empty() => {
                    let pos = pick % points.len();
                    let old_row = row_of(&points, pos);
                    points[pos] = val;
                    warm.update(pos, &old_row, &row_of(&points, pos));
                }
                _ => {}
            }

            // every churn step: warm == cold, bit for bit
            let dist = line_dist(&points);
            let cold = optics(&dist, f32::INFINITY, min_pts);
            let w = warm.run(&dist);
            prop_assert_eq!(&w.order, &cold.order, "orders diverged at n={}", points.len());
            prop_assert_eq!(&w.reachability, &cold.reachability, "reachability diverged");
            prop_assert_eq!(&w.core_dist, &cold.core_dist, "core distances diverged");
            // and the extracted partitions coincide (same Optics in = same out)
            prop_assert_eq!(w.extract_auto(), cold.extract_auto());
        }
    }

    #[test]
    fn canonical_labels_are_stable_and_equivalent(xs in points(), min_pts in 2usize..4) {
        let o = optics(&line_dist(&xs), f32::INFINITY, min_pts);
        let raw = o.extract_auto();
        let canon = raw.clone().canonical();
        // same partition: pairwise co-membership must be preserved
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                let same_raw = raw.labels()[i].is_some() && raw.labels()[i] == raw.labels()[j];
                let same_canon =
                    canon.labels()[i].is_some() && canon.labels()[i] == canon.labels()[j];
                prop_assert_eq!(same_raw, same_canon, "pair ({},{}) regrouped", i, j);
            }
        }
        // canonical ids ascend with the lowest member index
        let firsts: Vec<usize> = (0..canon.n_clusters())
            .map(|c| *canon.members(c).first().expect("dense ids"))
            .collect();
        prop_assert!(firsts.windows(2).all(|w| w[0] < w[1]), "ids not ordered: {:?}", firsts);
        // idempotent
        prop_assert_eq!(canon.clone().canonical(), canon);
    }

    #[test]
    fn identification_accuracy_bounds(n in 4usize..16) {
        let labels: Vec<Option<usize>> = (0..n).map(|i| Some(i % 2)).collect();
        let pred = Clustering::new(labels);
        let truth: Vec<Vec<usize>> = vec![
            (0..n).filter(|i| i % 2 == 0).collect(),
            (0..n).filter(|i| i % 2 == 1).collect(),
        ];
        let acc = cluster_identification_accuracy(&pred, &truth);
        prop_assert_eq!(acc, 1.0);
    }
}
