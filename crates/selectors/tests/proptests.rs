//! Property-based contracts for the selector zoo.
//!
//! Two invariants per selector, over arbitrary pools and feedback:
//!
//! 1. **Fixed-seed bit-identity** — two independently constructed
//!    instances fed the same inputs and the same RNG seed produce
//!    identical selection streams (the contract snapshot/resume and the
//!    matrix harness lean on).
//! 2. **Registration-order invariance** — the order client distributions
//!    (or delta sketches) are registered in must not change what gets
//!    selected; selection may only depend on *what* is known, not on
//!    insertion history.

use haccs_fedsim::{ClientInfo, SelectionContext, Selector};
use haccs_selectors::{
    DppSelector, FedClustSelector, HeterogeneityGuidedSelector, LeflSelector,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CLASSES: usize = 5;

fn info(id: usize, loss: f32) -> ClientInfo {
    ClientInfo {
        id,
        est_latency: 0.5 + (id % 7) as f64 * 0.3,
        last_loss: loss,
        n_train: 30 + id * 3,
        participation_count: id % 4,
    }
}

/// A deterministic skewed distribution per client id.
fn dist_of(id: usize) -> Vec<f32> {
    let mut d = vec![0.05f32; CLASSES];
    d[id % CLASSES] = 0.8;
    d[(id + 2) % CLASSES] = 0.15 + (id as f32 % 3.0) * 0.02;
    d
}

/// Drive `s` through `epochs` rounds over an `n`-client pool with
/// loss feedback, returning the concatenated selection stream.
fn drive(s: &mut dyn Selector, n: usize, k: usize, epochs: usize, seed: u64) -> Vec<Vec<usize>> {
    let pool: Vec<ClientInfo> =
        (0..n).map(|id| info(id, 0.3 + (id as f32 * 0.17) % 1.1)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        let ctx = SelectionContext { epoch, available: &pool, k };
        let picked = s.select(&ctx, &mut rng);
        let losses: Vec<f32> = picked.iter().map(|&id| 0.2 + (id as f32) * 0.05).collect();
        s.observe_round(epoch, &picked, &losses);
        if s.wants_updates() {
            for &id in &picked {
                let delta: Vec<f32> =
                    (0..12).map(|j| ((id * 13 + j * 7 + epoch) % 11) as f32 * 0.01 - 0.05).collect();
                s.observe_update(epoch, id, &delta);
            }
        }
        out.push(picked);
    }
    out
}

/// Registered `(id, dist)` pairs in an order permuted by `perm_seed`.
fn permuted_dists(n: usize, perm_seed: u64) -> Vec<(usize, Vec<f32>)> {
    let mut ids: Vec<usize> = (0..n).collect();
    use rand::seq::SliceRandom;
    ids.shuffle(&mut StdRng::seed_from_u64(perm_seed));
    ids.into_iter().map(|id| (id, dist_of(id))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lefl_is_deterministic_and_order_invariant(
        n in 4usize..24,
        k in 1usize..6,
        seed in any::<u64>(),
        perm in any::<u64>(),
    ) {
        let mut a = LeflSelector::from_distributions(permuted_dists(n, 1));
        let mut b = LeflSelector::from_distributions(permuted_dists(n, perm));
        let sa = drive(&mut a, n, k.min(n), 6, seed);
        let sb = drive(&mut b, n, k.min(n), 6, seed);
        prop_assert_eq!(sa, sb);
    }

    #[test]
    fn dpp_is_deterministic_and_order_invariant(
        n in 4usize..24,
        k in 1usize..6,
        seed in any::<u64>(),
        perm in any::<u64>(),
    ) {
        let mut a = DppSelector::from_distributions(permuted_dists(n, 1));
        let mut b = DppSelector::from_distributions(permuted_dists(n, perm));
        let sa = drive(&mut a, n, k.min(n), 6, seed);
        let sb = drive(&mut b, n, k.min(n), 6, seed);
        prop_assert_eq!(sa, sb);
    }

    #[test]
    fn het_guided_is_deterministic_and_order_invariant(
        n in 4usize..24,
        k in 1usize..6,
        rho_pct in 0u32..=100,
        seed in any::<u64>(),
        perm in any::<u64>(),
    ) {
        let rho = rho_pct as f64 / 100.0;
        let mut a = HeterogeneityGuidedSelector::from_distributions(rho, permuted_dists(n, 1));
        let mut b = HeterogeneityGuidedSelector::from_distributions(rho, permuted_dists(n, perm));
        let sa = drive(&mut a, n, k.min(n), 6, seed);
        let sb = drive(&mut b, n, k.min(n), 6, seed);
        prop_assert_eq!(sa, sb);
    }

    #[test]
    fn fedclust_is_deterministic_at_fixed_seed(
        n in 4usize..24,
        k in 1usize..6,
        clusters in 2usize..5,
        cadence in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut a = FedClustSelector::new(16, clusters, cadence);
        let mut b = FedClustSelector::new(16, clusters, cadence);
        let sa = drive(&mut a, n, k.min(n), 8, seed);
        let sb = drive(&mut b, n, k.min(n), 8, seed);
        prop_assert_eq!(sa, sb);
    }

    /// FedClust's sketches are keyed by id, so the order deltas arrive
    /// *within one epoch* must not matter.
    #[test]
    fn fedclust_is_delta_order_invariant(
        n in 4usize..16,
        seed in any::<u64>(),
        perm in any::<u64>(),
    ) {
        let pool: Vec<ClientInfo> =
            (0..n).map(|id| info(id, 0.4 + id as f32 * 0.1)).collect();
        let run = |perm_seed: u64| {
            let mut s = FedClustSelector::new(8, 3, 1);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut stream = Vec::new();
            for epoch in 0..6 {
                let mut ids: Vec<usize> = (0..n).collect();
                use rand::seq::SliceRandom;
                ids.shuffle(&mut StdRng::seed_from_u64(
                    perm_seed ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ));
                for id in ids {
                    let delta: Vec<f32> =
                        (0..10).map(|j| ((id * 7 + j) % 5) as f32 * 0.02).collect();
                    s.observe_update(epoch, id, &delta);
                }
                let ctx = SelectionContext { epoch, available: &pool, k: 3.min(n) };
                stream.push(s.select(&ctx, &mut rng));
            }
            stream
        };
        prop_assert_eq!(run(1), run(perm));
    }

    /// Every zoo selector keeps selections valid (non-empty, within the
    /// pool, no duplicates) under arbitrary pool sizes and k.
    #[test]
    fn zoo_selections_are_always_valid(
        n in 1usize..30,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let zoo: Vec<Box<dyn Selector>> = vec![
            Box::new(FedClustSelector::default()),
            Box::new(LeflSelector::from_distributions(permuted_dists(n, 1))),
            Box::new(DppSelector::from_distributions(permuted_dists(n, 1))),
            Box::new(HeterogeneityGuidedSelector::from_distributions(
                0.5,
                permuted_dists(n, 1),
            )),
        ];
        for mut s in zoo {
            for picked in drive(&mut *s, n, k, 4, seed) {
                prop_assert!(!picked.is_empty(), "{}: empty pick", s.name());
                prop_assert!(picked.len() <= k.min(n), "{}: overlong {picked:?}", s.name());
                let mut sorted = picked.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), picked.len(), "{}: duplicates", s.name());
                prop_assert!(picked.iter().all(|&id| id < n), "{}: out of pool", s.name());
            }
        }
    }
}
