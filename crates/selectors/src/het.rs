//! Heterogeneity-guided sampling.
//!
//! A direct ablation between Random and full HACCS: no clustering, just a
//! per-client score blending *statistical heterogeneity* (Hellinger
//! distance of the client's label distribution from the population mean —
//! clients carrying under-represented data score high) with *speed*
//! (inverse estimated latency), traded off by the same ρ knob as HACCS's
//! Eq. 7:
//!
//! ```text
//! score(i) = ρ · divergence(i) + (1 − ρ) · speed(i) + floor
//! ```
//!
//! The cohort is a weighted draw without replacement over those scores —
//! stochastic (so coverage is preserved) but biased toward the clients a
//! heterogeneity-aware scheduler should want. Distributions come from the
//! same P(y) summaries as LEFL/DPP and refresh the same way under drift.

use std::collections::BTreeMap;

use haccs_fedsim::persist::{PersistError, SnapshotReader, SnapshotWriter};
use haccs_fedsim::{SelectionContext, Selector};
use haccs_obs::Recorder;
use rand::rngs::StdRng;

use crate::{dist_hellinger, sanitize_dist, weighted_sample_without_replacement};

/// The heterogeneity-guided selector.
#[derive(Debug, Clone)]
pub struct HeterogeneityGuidedSelector {
    /// Per-client sanitized label distributions.
    dists: BTreeMap<usize, Vec<f32>>,
    /// Divergence/speed blend: 1.0 = pure heterogeneity, 0.0 = pure speed.
    rho: f64,
    /// Additive score floor: keeps every client samplable.
    floor: f64,
    obs: Recorder,
}

impl Default for HeterogeneityGuidedSelector {
    fn default() -> Self {
        HeterogeneityGuidedSelector::new(0.7)
    }
}

impl HeterogeneityGuidedSelector {
    /// A heterogeneity-guided selector with the given ρ ∈ [0, 1].
    pub fn new(rho: f64) -> Self {
        assert!((0.0..=1.0).contains(&rho));
        HeterogeneityGuidedSelector {
            dists: BTreeMap::new(),
            rho,
            floor: 0.01,
            obs: Recorder::disabled(),
        }
    }

    /// Builds the selector from `(id, P(y))` pairs.
    pub fn from_distributions(
        rho: f64,
        dists: impl IntoIterator<Item = (usize, Vec<f32>)>,
    ) -> Self {
        let mut s = HeterogeneityGuidedSelector::new(rho);
        s.update_distributions(dists);
        s
    }

    /// Attaches an instrumentation handle (builder style).
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Records (or replaces, under drift) one client's label distribution.
    pub fn set_distribution(&mut self, id: usize, dist: &[f32]) {
        self.dists.insert(id, sanitize_dist(dist));
        self.obs.inc("selector.het.summary_updates", 1);
    }

    /// Batch form of [`HeterogeneityGuidedSelector::set_distribution`].
    pub fn update_distributions(&mut self, dists: impl IntoIterator<Item = (usize, Vec<f32>)>) {
        for (id, d) in dists {
            self.set_distribution(id, &d);
        }
    }

    /// Clients with a known distribution.
    pub fn known_clients(&self) -> usize {
        self.dists.len()
    }

    /// The population-mean label distribution over known clients.
    fn pooled(&self) -> Vec<f32> {
        let classes = self.dists.values().map(|d| d.len()).max().unwrap_or(1).max(1);
        let mut mean = vec![0.0f32; classes];
        if self.dists.is_empty() {
            return sanitize_dist(&mean);
        }
        for d in self.dists.values() {
            for (i, &p) in d.iter().enumerate() {
                mean[i] += p;
            }
        }
        let n = self.dists.len() as f32;
        mean.iter_mut().for_each(|p| *p /= n);
        sanitize_dist(&mean)
    }
}

impl Selector for HeterogeneityGuidedSelector {
    fn name(&self) -> String {
        "het-guided".into()
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Vec<usize> {
        if ctx.available.is_empty() || ctx.k == 0 {
            return Vec::new();
        }
        let span = self.obs.span("selector.het.select").u("epoch", ctx.epoch as u64);
        let pooled = self.pooled();
        let weighted: Vec<(usize, f64)> = ctx
            .available
            .iter()
            .map(|c| {
                // unknown distribution → maximum divergence (exploration)
                let divergence = match self.dists.get(&c.id) {
                    Some(d) => dist_hellinger(d, &pooled) as f64,
                    None => 1.0,
                };
                let speed = if c.est_latency.is_finite() && c.est_latency >= 0.0 {
                    1.0 / (1.0 + c.est_latency)
                } else {
                    0.0
                };
                let score = self.rho * divergence + (1.0 - self.rho) * speed + self.floor;
                (c.id, if score.is_finite() { score } else { self.floor })
            })
            .collect();
        let picked = weighted_sample_without_replacement(&weighted, ctx.k, rng);
        span.finish();
        picked
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_f64(self.rho);
        w.put_usize(self.dists.len());
        for (&id, d) in &self.dists {
            w.put_usize(id);
            w.put_f32s(d);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        let rho = r.get_f64()?;
        if !(0.0..=1.0).contains(&rho) {
            return Err(PersistError::Malformed(format!("het-guided snapshot rho {rho}")));
        }
        self.rho = rho;
        let n = r.get_usize()?;
        self.dists.clear();
        for _ in 0..n {
            let id = r.get_usize()?;
            let d = r.get_f32s()?;
            if d.is_empty() {
                return Err(PersistError::Malformed(format!(
                    "het-guided snapshot has empty distribution for client {id}"
                )));
            }
            self.dists.insert(id, d);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_fedsim::ClientInfo;
    use rand::SeedableRng;

    fn info(id: usize, lat: f64) -> ClientInfo {
        ClientInfo { id, est_latency: lat, last_loss: 1.0, n_train: 10, participation_count: 0 }
    }

    #[test]
    fn divergent_clients_dominate_at_high_rho() {
        let mut s = HeterogeneityGuidedSelector::new(1.0);
        // seven on-mode clients, one outlier carrying the rare class
        for id in 0..7 {
            s.set_distribution(id, &[1.0, 0.0]);
        }
        s.set_distribution(7, &[0.0, 1.0]);
        let avail: Vec<ClientInfo> = (0..8).map(|id| info(id, 1.0)).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let (mut outlier_hits, mut onmode_hits) = (0, 0);
        for epoch in 0..200 {
            let ctx = SelectionContext { epoch, available: &avail, k: 2 };
            let sel = s.select(&ctx, &mut rng);
            outlier_hits += sel.contains(&7) as usize;
            onmode_hits += sel.contains(&0) as usize;
        }
        assert!(
            outlier_hits > 2 * onmode_hits,
            "outlier {outlier_hits} vs on-mode {onmode_hits} over 200 rounds"
        );
    }

    #[test]
    fn fast_clients_dominate_at_zero_rho() {
        let mut s = HeterogeneityGuidedSelector::new(0.0);
        for id in 0..4 {
            s.set_distribution(id, &[0.5, 0.5]);
        }
        // client 0 fast, rest 100× slower
        let avail: Vec<ClientInfo> =
            (0..4).map(|id| info(id, if id == 0 { 0.01 } else { 100.0 })).collect();
        let mut rng = StdRng::seed_from_u64(8);
        let mut hits = 0;
        for epoch in 0..100 {
            let ctx = SelectionContext { epoch, available: &avail, k: 1 };
            if s.select(&ctx, &mut rng) == vec![0] {
                hits += 1;
            }
        }
        assert!(hits > 80, "fast client picked only {hits}/100 rounds");
    }

    #[test]
    fn nan_latency_and_summary_stay_finite() {
        let mut s = HeterogeneityGuidedSelector::default();
        s.set_distribution(0, &[f32::NAN, 1.0]);
        let avail = vec![info(0, f64::NAN), info(1, 1.0)];
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 2 };
        let sel = s.select(&ctx, &mut StdRng::seed_from_u64(0));
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let s = HeterogeneityGuidedSelector::from_distributions(
            0.4,
            [(1, vec![0.3, 0.7]), (5, vec![0.8, 0.2])],
        );
        let mut w = SnapshotWriter::new();
        s.save_state(&mut w);
        let bytes = w.finish();

        let mut restored = HeterogeneityGuidedSelector::default();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        let mut w2 = SnapshotWriter::new();
        restored.save_state(&mut w2);
        assert_eq!(bytes, w2.finish());
    }
}
