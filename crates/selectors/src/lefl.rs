//! LEFL-style low-entropy sampling.
//!
//! Under label skew the clients that hurt the global model most are the
//! ones whose local label distribution is furthest from uniform — exactly
//! the clients a uniform sampler under-weights, because there are few of
//! each skewed "type". LEFL inverts that: each client is weighted by its
//! *entropy gap* `H_max − H(P_i(y)) + floor`, so highly skewed (low
//! entropy) clients are drawn more often and the aggregate sees every
//! label mode early.
//!
//! Label distributions come from the same privacy-treated P(y) summaries
//! HACCS ships at join time ([`LeflSelector::set_distribution`] /
//! [`LeflSelector::update_distributions`]); the coordinator's §IV-C drift
//! path re-feeds changed summaries through the recluster hook, which keeps
//! the weights current under drift. Clients with no summary yet get the
//! maximum weight (exploration-first). Sampling is without replacement
//! over id-sorted candidates, so the draw is registration-order invariant
//! and bit-identical under a fixed rng.

use std::collections::BTreeMap;

use haccs_fedsim::persist::{PersistError, SnapshotReader, SnapshotWriter};
use haccs_fedsim::{SelectionContext, Selector};
use haccs_obs::Recorder;
use rand::rngs::StdRng;

use crate::{entropy, sanitize_dist, weighted_sample_without_replacement};

/// The LEFL selector.
#[derive(Debug, Clone)]
pub struct LeflSelector {
    /// Per-client sanitized label distributions.
    dists: BTreeMap<usize, Vec<f32>>,
    /// Additive weight floor: keeps near-uniform clients samplable.
    floor: f64,
    obs: Recorder,
}

impl Default for LeflSelector {
    fn default() -> Self {
        LeflSelector::new(0.05)
    }
}

impl LeflSelector {
    /// A LEFL selector with the given weight floor.
    pub fn new(floor: f64) -> Self {
        assert!(floor >= 0.0 && floor.is_finite());
        LeflSelector { dists: BTreeMap::new(), floor, obs: Recorder::disabled() }
    }

    /// Builds the selector from `(id, P(y))` pairs.
    pub fn from_distributions(dists: impl IntoIterator<Item = (usize, Vec<f32>)>) -> Self {
        let mut s = LeflSelector::default();
        s.update_distributions(dists);
        s
    }

    /// Attaches an instrumentation handle (builder style).
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Records (or replaces, under drift) one client's label distribution.
    pub fn set_distribution(&mut self, id: usize, dist: &[f32]) {
        self.dists.insert(id, sanitize_dist(dist));
        self.obs.inc("selector.lefl.summary_updates", 1);
    }

    /// Batch form of [`LeflSelector::set_distribution`] — the shape the
    /// coordinator's recluster hook hands over.
    pub fn update_distributions(&mut self, dists: impl IntoIterator<Item = (usize, Vec<f32>)>) {
        for (id, d) in dists {
            self.set_distribution(id, &d);
        }
    }

    /// Clients with a known distribution.
    pub fn known_clients(&self) -> usize {
        self.dists.len()
    }

    /// The maximum entropy over known distributions' class counts.
    fn h_max(&self) -> f64 {
        let classes = self.dists.values().map(|d| d.len()).max().unwrap_or(1).max(1);
        (classes as f64).ln()
    }

    /// The sampling weight of `id`: entropy gap + floor, or (for clients
    /// with no summary yet) the maximum possible weight.
    fn weight(&self, id: usize, h_max: f64) -> f64 {
        match self.dists.get(&id) {
            Some(d) => (h_max - entropy(d)).max(0.0) + self.floor,
            None => h_max + self.floor,
        }
    }
}

impl Selector for LeflSelector {
    fn name(&self) -> String {
        "lefl".into()
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Vec<usize> {
        if ctx.available.is_empty() || ctx.k == 0 {
            return Vec::new();
        }
        let span = self.obs.span("selector.lefl.select").u("epoch", ctx.epoch as u64);
        let h_max = self.h_max();
        let weighted: Vec<(usize, f64)> =
            ctx.available.iter().map(|c| (c.id, self.weight(c.id, h_max))).collect();
        let picked = weighted_sample_without_replacement(&weighted, ctx.k, rng);
        span.finish();
        picked
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.dists.len());
        for (&id, d) in &self.dists {
            w.put_usize(id);
            w.put_f32s(d);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        let n = r.get_usize()?;
        self.dists.clear();
        for _ in 0..n {
            let id = r.get_usize()?;
            let d = r.get_f32s()?;
            if d.is_empty() {
                return Err(PersistError::Malformed(format!(
                    "lefl snapshot has empty distribution for client {id}"
                )));
            }
            self.dists.insert(id, d);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_fedsim::ClientInfo;
    use rand::SeedableRng;

    fn info(id: usize) -> ClientInfo {
        ClientInfo { id, est_latency: 1.0, last_loss: 1.0, n_train: 10, participation_count: 0 }
    }

    #[test]
    fn skewed_clients_outweigh_uniform_ones() {
        let mut s = LeflSelector::default();
        s.set_distribution(0, &[1.0, 0.0, 0.0, 0.0]); // fully skewed
        s.set_distribution(1, &[0.25, 0.25, 0.25, 0.25]); // uniform
        let h_max = s.h_max();
        assert!(s.weight(0, h_max) > s.weight(1, h_max));
    }

    #[test]
    fn unknown_clients_get_max_weight() {
        let mut s = LeflSelector::default();
        s.set_distribution(0, &[1.0, 0.0]);
        let h_max = s.h_max();
        assert!(s.weight(99, h_max) >= s.weight(0, h_max));
    }

    #[test]
    fn nan_summary_cannot_poison_weights() {
        let mut s = LeflSelector::default();
        s.set_distribution(0, &[f32::NAN, f32::INFINITY, -1.0]);
        let h_max = s.h_max();
        assert!(s.weight(0, h_max).is_finite());
        let avail: Vec<ClientInfo> = (0..3).map(info).collect();
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 2 };
        let sel = s.select(&ctx, &mut StdRng::seed_from_u64(1));
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn skew_drives_selection_frequency() {
        let mut s = LeflSelector::new(0.01);
        s.set_distribution(0, &[1.0, 0.0, 0.0, 0.0]);
        for id in 1..8 {
            s.set_distribution(id, &[0.25, 0.25, 0.25, 0.25]);
        }
        let avail: Vec<ClientInfo> = (0..8).map(info).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let mut hits = 0;
        for epoch in 0..200 {
            let ctx = SelectionContext { epoch, available: &avail, k: 2 };
            if s.select(&ctx, &mut rng).contains(&0) {
                hits += 1;
            }
        }
        // weight(0) ≈ ln4 + 0.01 vs 0.01 for the rest: near-certain pick
        assert!(hits > 150, "skewed client picked only {hits}/200 rounds");
    }

    #[test]
    fn drift_update_changes_weights() {
        let mut s = LeflSelector::default();
        s.set_distribution(0, &[0.5, 0.5]);
        let before = s.weight(0, s.h_max());
        s.update_distributions([(0, vec![1.0, 0.0])]);
        let after = s.weight(0, s.h_max());
        assert!(after > before);
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let mut s = LeflSelector::default();
        s.set_distribution(3, &[0.7, 0.3]);
        s.set_distribution(1, &[0.1, 0.9]);
        let mut w = SnapshotWriter::new();
        s.save_state(&mut w);
        let bytes = w.finish();

        let mut restored = LeflSelector::default();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        let mut w2 = SnapshotWriter::new();
        restored.save_state(&mut w2);
        assert_eq!(bytes, w2.finish());
    }
}
