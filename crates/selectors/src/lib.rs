//! # haccs-selectors
//!
//! The extended client-selection zoo: the strongest ready-made competitors
//! to HACCS from the related-work sweep, implemented against the
//! [`haccs_fedsim::Selector`] interface so they plug into both the loop
//! engine and the coordinator runtime:
//!
//! * [`FedClustSelector`] — FedClust (arXiv:2407.07124): clients clustered
//!   from *model-weight deltas* captured off the update path
//!   ([`Selector::observe_update`]), re-clustered on a cadence, sampled
//!   round-robin across clusters,
//! * [`LeflSelector`] — LEFL-style low-entropy sampling: clients whose
//!   label distribution is most skewed (lowest entropy) are prioritized,
//! * [`DppSelector`] — k-DPP diversity sampling (arXiv:2303.17358): a
//!   greedy MAP draw from a determinantal point process over a
//!   summary-distance kernel, so the cohort covers the distribution space,
//! * [`HeterogeneityGuidedSelector`] — scores each client by how far its
//!   label distribution sits from the population mean, blended with
//!   estimated speed by the ρ knob (the same latency/heterogeneity
//!   trade-off HACCS's Eq. 7 encodes).
//!
//! All four are deterministic under a fixed [`rand::rngs::StdRng`],
//! invariant to client-registration order (candidates are re-sorted by id
//! internally), NaN-hardened (non-finite summaries, losses, or deltas are
//! sanitized before scoring), and snapshot-capable via
//! `save_state`/`load_state`.
//!
//! [`SelectorKind`] is the shared strategy-name enum (mirroring
//! `haccs_codec::CodecKind`) that the CLI bins parse instead of scattering
//! per-bin string matches.
//!
//! [`Selector::observe_update`]: haccs_fedsim::Selector::observe_update

pub mod dpp;
pub mod fedclust;
pub mod het;
pub mod kind;
pub mod lefl;

pub use dpp::DppSelector;
pub use fedclust::FedClustSelector;
pub use het::HeterogeneityGuidedSelector;
pub use kind::SelectorKind;
pub use lefl::LeflSelector;

use haccs_summary::{hellinger, Histogram};

/// Sanitizes a label distribution: non-finite or negative mass is zeroed,
/// the rest renormalized; a degenerate (empty/all-zero) vector becomes
/// uniform so one poisoned summary can never produce NaN scores downstream.
pub(crate) fn sanitize_dist(bins: &[f32]) -> Vec<f32> {
    let mut v: Vec<f32> =
        bins.iter().map(|&b| if b.is_finite() && b > 0.0 { b } else { 0.0 }).collect();
    if v.is_empty() {
        return vec![1.0];
    }
    let total: f32 = v.iter().sum();
    if total > 0.0 && total.is_finite() {
        for b in &mut v {
            *b /= total;
        }
    } else {
        let u = 1.0 / v.len() as f32;
        v.iter_mut().for_each(|b| *b = u);
    }
    v
}

/// Shannon entropy (nats) of a sanitized distribution.
pub(crate) fn entropy(dist: &[f32]) -> f64 {
    -dist
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| {
            let p = p as f64;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Hellinger distance between two (possibly differently sized) label
/// distributions, padding the shorter with empty classes.
pub(crate) fn dist_hellinger(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().max(b.len());
    let mut pa = a.to_vec();
    let mut pb = b.to_vec();
    pa.resize(n, 0.0);
    pb.resize(n, 0.0);
    let d = hellinger(&Histogram::from_normalized(pa), &Histogram::from_normalized(pb));
    if d.is_finite() {
        d
    } else {
        1.0
    }
}

/// Weighted sampling without replacement: draws up to `k` ids from
/// `(id, weight)` candidates. Candidates are sorted by id first, so the
/// draw depends only on the id/weight multiset and the rng stream — never
/// on registration order. Non-finite or negative weights are floored to 0;
/// an all-zero pool falls back to uniform.
pub(crate) fn weighted_sample_without_replacement(
    candidates: &[(usize, f64)],
    k: usize,
    rng: &mut rand::rngs::StdRng,
) -> Vec<usize> {
    use rand::Rng;
    let mut pool: Vec<(usize, f64)> = candidates
        .iter()
        .map(|&(id, w)| (id, if w.is_finite() && w > 0.0 { w } else { 0.0 }))
        .collect();
    pool.sort_by_key(|&(id, _)| id);
    let mut picked = Vec::new();
    while picked.len() < k && !pool.is_empty() {
        let total: f64 = pool.iter().map(|&(_, w)| w).sum();
        let idx = if total > 0.0 {
            let mut x = rng.gen_range(0.0..total);
            let mut chosen = pool.len() - 1;
            for (i, &(_, w)) in pool.iter().enumerate() {
                if x < w {
                    chosen = i;
                    break;
                }
                x -= w;
            }
            chosen
        } else {
            rng.gen_range(0..pool.len())
        };
        picked.push(pool.remove(idx).0);
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sanitize_dist_zeroes_nan_and_renormalizes() {
        let d = sanitize_dist(&[f32::NAN, 1.0, 3.0, f32::INFINITY, -2.0]);
        assert!((d.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(d[0], 0.0);
        assert!((d[2] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn sanitize_dist_degenerate_becomes_uniform() {
        let d = sanitize_dist(&[0.0, f32::NAN, 0.0, 0.0]);
        assert!(d.iter().all(|&b| (b - 0.25).abs() < 1e-6));
    }

    #[test]
    fn entropy_ordering() {
        let skewed = entropy(&sanitize_dist(&[0.9, 0.05, 0.05]));
        let uniform = entropy(&sanitize_dist(&[1.0, 1.0, 1.0]));
        assert!(skewed < uniform);
        assert!((uniform - (3.0f64).ln()).abs() < 1e-4);
    }

    #[test]
    fn hellinger_pads_unequal_lengths() {
        let d = dist_hellinger(&[1.0], &[0.0, 1.0]);
        assert!(d > 0.9, "disjoint supports should be near-max distance, got {d}");
        assert_eq!(dist_hellinger(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }

    #[test]
    fn weighted_sample_is_order_invariant() {
        let a = [(3, 1.0), (1, 5.0), (7, 2.0), (2, 0.5)];
        let b = [(2, 0.5), (7, 2.0), (1, 5.0), (3, 1.0)];
        let pa = weighted_sample_without_replacement(&a, 3, &mut StdRng::seed_from_u64(11));
        let pb = weighted_sample_without_replacement(&b, 3, &mut StdRng::seed_from_u64(11));
        assert_eq!(pa, pb);
        assert_eq!(pa.len(), 3);
    }

    #[test]
    fn weighted_sample_zero_weights_fall_back_to_uniform() {
        let pool = [(0, 0.0), (1, f64::NAN), (2, -3.0)];
        let picked =
            weighted_sample_without_replacement(&pool, 2, &mut StdRng::seed_from_u64(5));
        assert_eq!(picked.len(), 2);
    }
}
