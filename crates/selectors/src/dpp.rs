//! k-DPP diversity sampling (arXiv:2303.17358).
//!
//! A determinantal point process assigns a subset S the probability
//! `det(L_S)` — high when the subset's kernel rows are near-orthogonal,
//! i.e. when the chosen clients are *different* from each other. With an
//! RBF kernel over summary distances, the MAP cohort is the one that
//! spreads across the distribution space instead of clumping on the
//! majority mode — the diversity objective DPP-selection papers argue
//! fixes uniform sampling under label skew.
//!
//! Exact k-DPP sampling needs an eigendecomposition; this implementation
//! uses the standard fast greedy MAP approximation (incremental Cholesky:
//! pick the item with the largest conditional variance, downdate, repeat),
//! which is deterministic, `O(n·k²)`, and registration-order invariant
//! because candidates are scanned in id order with ties broken toward the
//! lower id. The rng only breaks *exact* ties beyond id order — in
//! practice the draw is a pure function of the summary set, which is what
//! makes the strategy trivially bit-identical across runs.
//!
//! Clients without a summary are assumed uniform (maximum-entropy prior),
//! so they compete for slots like everyone else instead of being silently
//! excluded.

use std::collections::BTreeMap;

use haccs_fedsim::persist::{PersistError, SnapshotReader, SnapshotWriter};
use haccs_fedsim::{SelectionContext, Selector};
use haccs_obs::Recorder;
use rand::rngs::StdRng;

use crate::{dist_hellinger, sanitize_dist};

/// The greedy-MAP k-DPP selector.
#[derive(Debug, Clone)]
pub struct DppSelector {
    /// Per-client sanitized label distributions.
    dists: BTreeMap<usize, Vec<f32>>,
    /// RBF kernel bandwidth σ: `L_ij = exp(−d_ij² / σ²)`.
    sigma: f64,
    /// Fallback class count for clients with no summary.
    default_classes: usize,
    obs: Recorder,
}

impl Default for DppSelector {
    fn default() -> Self {
        DppSelector::new(0.5)
    }
}

impl DppSelector {
    /// A k-DPP selector with the given RBF bandwidth.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite());
        DppSelector { dists: BTreeMap::new(), sigma, default_classes: 1, obs: Recorder::disabled() }
    }

    /// Builds the selector from `(id, P(y))` pairs.
    pub fn from_distributions(dists: impl IntoIterator<Item = (usize, Vec<f32>)>) -> Self {
        let mut s = DppSelector::default();
        s.update_distributions(dists);
        s
    }

    /// Attaches an instrumentation handle (builder style).
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Records (or replaces, under drift) one client's label distribution.
    pub fn set_distribution(&mut self, id: usize, dist: &[f32]) {
        let d = sanitize_dist(dist);
        self.default_classes = self.default_classes.max(d.len());
        self.dists.insert(id, d);
        self.obs.inc("selector.dpp.summary_updates", 1);
    }

    /// Batch form of [`DppSelector::set_distribution`].
    pub fn update_distributions(&mut self, dists: impl IntoIterator<Item = (usize, Vec<f32>)>) {
        for (id, d) in dists {
            self.set_distribution(id, &d);
        }
    }

    /// Clients with a known distribution.
    pub fn known_clients(&self) -> usize {
        self.dists.len()
    }

    /// The distribution used for `id` (uniform prior when unknown).
    fn dist_of(&self, id: usize) -> Vec<f32> {
        match self.dists.get(&id) {
            Some(d) => d.clone(),
            None => vec![1.0 / self.default_classes as f32; self.default_classes],
        }
    }

    /// RBF kernel entry from the Hellinger distance of two distributions.
    fn kernel(&self, a: &[f32], b: &[f32]) -> f64 {
        let d = dist_hellinger(a, b) as f64;
        let v = (-d * d / (self.sigma * self.sigma)).exp();
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }
}

impl Selector for DppSelector {
    fn name(&self) -> String {
        "dpp".into()
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, _rng: &mut StdRng) -> Vec<usize> {
        if ctx.available.is_empty() || ctx.k == 0 {
            return Vec::new();
        }
        let span = self.obs.span("selector.dpp.select").u("epoch", ctx.epoch as u64);
        let mut ids: Vec<usize> = ctx.available.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        let dists: Vec<Vec<f32>> = ids.iter().map(|&id| self.dist_of(id)).collect();
        let n = ids.len();
        let k = ctx.k.min(n);

        // Greedy MAP with incremental Cholesky (Chen et al., 2018):
        // var[i] starts at L_ii = 1; after picking j, maintain the
        // Cholesky rows c[i] so var[i] is the conditional variance of i
        // given the picked set. Ties resolve to the lowest id (scan order).
        let mut var = vec![1.0f64; n];
        let mut chol: Vec<Vec<f64>> = vec![Vec::with_capacity(k); n];
        let mut picked_idx: Vec<usize> = Vec::with_capacity(k);
        let mut selection = Vec::with_capacity(k);
        for _ in 0..k {
            let mut best = usize::MAX;
            let mut best_var = f64::NEG_INFINITY;
            for i in 0..n {
                if picked_idx.contains(&i) {
                    continue;
                }
                if var[i] > best_var {
                    best_var = var[i];
                    best = i;
                }
            }
            if best == usize::MAX || best_var <= 1e-12 {
                // kernel exhausted (duplicate distributions): fall back to
                // id order over the remainder so we still fill the cohort.
                for i in 0..n {
                    if selection.len() >= k {
                        break;
                    }
                    if !picked_idx.contains(&i) {
                        picked_idx.push(i);
                        selection.push(ids[i]);
                    }
                }
                break;
            }
            let dj = best_var.sqrt();
            // downdate every remaining candidate against the new pick
            let cj = chol[best].clone();
            for i in 0..n {
                if i == best || picked_idx.contains(&i) {
                    continue;
                }
                let lij = self.kernel(&dists[i], &dists[best]);
                let dot: f64 = chol[i].iter().zip(&cj).map(|(a, b)| a * b).sum();
                let e = (lij - dot) / dj;
                chol[i].push(e);
                var[i] = (var[i] - e * e).max(0.0);
            }
            picked_idx.push(best);
            selection.push(ids[best]);
        }
        span.finish();
        selection
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.default_classes);
        w.put_usize(self.dists.len());
        for (&id, d) in &self.dists {
            w.put_usize(id);
            w.put_f32s(d);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        self.default_classes = r.get_usize()?;
        if self.default_classes == 0 {
            return Err(PersistError::Malformed("dpp snapshot has zero class count".into()));
        }
        let n = r.get_usize()?;
        self.dists.clear();
        for _ in 0..n {
            let id = r.get_usize()?;
            let d = r.get_f32s()?;
            if d.is_empty() {
                return Err(PersistError::Malformed(format!(
                    "dpp snapshot has empty distribution for client {id}"
                )));
            }
            self.dists.insert(id, d);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_fedsim::ClientInfo;
    use rand::SeedableRng;

    fn info(id: usize) -> ClientInfo {
        ClientInfo { id, est_latency: 1.0, last_loss: 1.0, n_train: 10, participation_count: 0 }
    }

    fn ctx<'a>(avail: &'a [ClientInfo], k: usize) -> SelectionContext<'a> {
        SelectionContext { epoch: 0, available: avail, k }
    }

    /// Three distribution "modes" across six clients: the 3-cohort should
    /// take one client from each mode, never two from the same.
    #[test]
    fn cohort_spans_distribution_modes() {
        let mut s = DppSelector::default();
        for (id, d) in [
            (0, vec![1.0, 0.0, 0.0]),
            (1, vec![1.0, 0.0, 0.0]),
            (2, vec![0.0, 1.0, 0.0]),
            (3, vec![0.0, 1.0, 0.0]),
            (4, vec![0.0, 0.0, 1.0]),
            (5, vec![0.0, 0.0, 1.0]),
        ] {
            s.set_distribution(id, &d);
        }
        let avail: Vec<ClientInfo> = (0..6).map(info).collect();
        let sel = s.select(&ctx(&avail, 3), &mut StdRng::seed_from_u64(0));
        let modes: std::collections::HashSet<usize> = sel.iter().map(|id| id / 2).collect();
        assert_eq!(modes.len(), 3, "cohort {sel:?} clumps modes");
    }

    #[test]
    fn selection_is_deterministic_and_order_invariant() {
        let build = || {
            DppSelector::from_distributions(
                (0..8usize).map(|id| (id, vec![(id % 4) as f32 + 0.5, 1.0, 0.25])),
            )
        };
        let avail_a: Vec<ClientInfo> = (0..8).map(info).collect();
        let mut avail_b = avail_a.clone();
        avail_b.reverse();
        let a = build().select(&ctx(&avail_a, 4), &mut StdRng::seed_from_u64(1));
        let b = build().select(&ctx(&avail_b, 4), &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b, "greedy MAP must not depend on order or rng");
    }

    #[test]
    fn duplicate_distributions_still_fill_the_cohort() {
        let mut s = DppSelector::default();
        for id in 0..5 {
            s.set_distribution(id, &[0.5, 0.5]);
        }
        let avail: Vec<ClientInfo> = (0..5).map(info).collect();
        let sel = s.select(&ctx(&avail, 3), &mut StdRng::seed_from_u64(0));
        assert_eq!(sel.len(), 3);
        let uniq: std::collections::HashSet<usize> = sel.iter().copied().collect();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn nan_summary_is_sanitized() {
        let mut s = DppSelector::default();
        s.set_distribution(0, &[f32::NAN, 1.0]);
        s.set_distribution(1, &[1.0, f32::INFINITY]);
        let avail: Vec<ClientInfo> = (0..2).map(info).collect();
        let sel = s.select(&ctx(&avail, 2), &mut StdRng::seed_from_u64(0));
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn unknown_clients_compete_via_uniform_prior() {
        let mut s = DppSelector::default();
        s.set_distribution(0, &[1.0, 0.0]);
        s.set_distribution(1, &[1.0, 0.0]);
        // client 2 has no summary: its uniform prior is farther from the
        // skewed pair than they are from each other, so it must be picked.
        let avail: Vec<ClientInfo> = (0..3).map(info).collect();
        let sel = s.select(&ctx(&avail, 2), &mut StdRng::seed_from_u64(0));
        assert!(sel.contains(&2), "{sel:?}");
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let s = DppSelector::from_distributions([(2, vec![0.9, 0.1]), (7, vec![0.2, 0.8])]);
        let mut w = SnapshotWriter::new();
        s.save_state(&mut w);
        let bytes = w.finish();

        let mut restored = DppSelector::default();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        let mut w2 = SnapshotWriter::new();
        restored.save_state(&mut w2);
        assert_eq!(bytes, w2.finish());
    }
}
