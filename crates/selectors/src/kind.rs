//! The shared strategy-name enum.
//!
//! Every CLI bin used to hand-roll its own `match s { "random" => …,
//! "tifl" => …, _ => panic!() }` over selector names; [`SelectorKind`]
//! centralizes that (mirroring `haccs_codec::CodecKind`'s
//! `Display`/`FromStr` pair) so a new strategy lands in one place and
//! every bin picks it up.

use std::fmt;
use std::str::FromStr;

/// Every client-selection strategy the workspace knows how to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectorKind {
    /// Uniform random (haccs-baselines).
    Random,
    /// TiFL latency tiers (haccs-baselines).
    Tifl,
    /// Oort utility + ε-greedy (haccs-baselines).
    Oort,
    /// HACCS over P(y) summaries (haccs-core).
    HaccsPy,
    /// HACCS over P(X|y) summaries (haccs-core).
    HaccsPxy,
    /// FedClust weight-delta clustering (this crate).
    FedClust,
    /// LEFL low-entropy sampling (this crate).
    Lefl,
    /// k-DPP diversity sampling (this crate).
    Dpp,
    /// Heterogeneity-guided divergence/speed blend (this crate).
    HetGuided,
}

impl SelectorKind {
    /// Every strategy, in report order.
    pub const ALL: [SelectorKind; 9] = [
        SelectorKind::Random,
        SelectorKind::Tifl,
        SelectorKind::Oort,
        SelectorKind::HaccsPy,
        SelectorKind::HaccsPxy,
        SelectorKind::FedClust,
        SelectorKind::Lefl,
        SelectorKind::Dpp,
        SelectorKind::HetGuided,
    ];

    /// Canonical CLI token (what `FromStr` round-trips).
    pub fn token(self) -> &'static str {
        match self {
            SelectorKind::Random => "random",
            SelectorKind::Tifl => "tifl",
            SelectorKind::Oort => "oort",
            SelectorKind::HaccsPy => "py",
            SelectorKind::HaccsPxy => "pxy",
            SelectorKind::FedClust => "fedclust",
            SelectorKind::Lefl => "lefl",
            SelectorKind::Dpp => "dpp",
            SelectorKind::HetGuided => "het",
        }
    }

    /// Human-facing report label (matches `StrategyKind::name` for the
    /// strategies that predate this enum, so old and new reports agree).
    pub fn label(self) -> &'static str {
        match self {
            SelectorKind::Random => "random",
            SelectorKind::Tifl => "tifl",
            SelectorKind::Oort => "oort",
            SelectorKind::HaccsPy => "haccs-P(y)",
            SelectorKind::HaccsPxy => "haccs-P(X|y)",
            SelectorKind::FedClust => "fedclust",
            SelectorKind::Lefl => "lefl",
            SelectorKind::Dpp => "dpp",
            SelectorKind::HetGuided => "het-guided",
        }
    }
}

impl fmt::Display for SelectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for SelectorKind {
    type Err = String;

    /// Parses the canonical tokens plus the aliases older bins accepted
    /// (`haccs-py`, `haccs-pxy`, `haccs-P(y)`, …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "random" => Ok(SelectorKind::Random),
            "tifl" => Ok(SelectorKind::Tifl),
            "oort" => Ok(SelectorKind::Oort),
            "py" | "haccs-py" | "haccs-P(y)" => Ok(SelectorKind::HaccsPy),
            "pxy" | "haccs-pxy" | "haccs-P(X|y)" => Ok(SelectorKind::HaccsPxy),
            "fedclust" => Ok(SelectorKind::FedClust),
            "lefl" => Ok(SelectorKind::Lefl),
            "dpp" => Ok(SelectorKind::Dpp),
            "het" | "het-guided" => Ok(SelectorKind::HetGuided),
            other => Err(format!(
                "unknown selector {other:?} (expected random, tifl, oort, py, pxy, \
                 fedclust, lefl, dpp or het)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        for kind in SelectorKind::ALL {
            assert_eq!(kind.token().parse::<SelectorKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.token());
        }
    }

    #[test]
    fn labels_parse_back() {
        for kind in SelectorKind::ALL {
            assert_eq!(kind.label().parse::<SelectorKind>().unwrap(), kind);
        }
    }

    #[test]
    fn unknown_name_is_an_error() {
        let err = "fedprox".parse::<SelectorKind>().unwrap_err();
        assert!(err.contains("unknown selector"), "{err}");
    }
}
