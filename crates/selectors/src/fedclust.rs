//! FedClust (arXiv:2407.07124): weight-driven client clustering.
//!
//! The server never sees raw client data; what it *does* see is every
//! admitted model update. FedClust clusters clients by the direction of
//! their weight deltas — clients optimizing toward similar local minima
//! land in the same cluster — and then samples the cohort round-robin
//! across clusters, like HACCS but with update geometry standing in for
//! data summaries.
//!
//! Deltas arrive through [`Selector::observe_update`] (gated by
//! [`Selector::wants_updates`], so every other strategy pays nothing) and
//! are folded into a fixed-dimension sketch: component `i` of the delta
//! accumulates into bucket `i mod sketch_dim`. Sketches are blended with
//! an exponential moving average across rounds and re-clustered every
//! `cadence` rounds via deterministic farthest-first k-centers over
//! L2-normalized sketches. Clients that have never contributed an update
//! form an implicit *exploration* pool sampled first, so the sketch table
//! bootstraps itself.

use std::collections::BTreeMap;

use haccs_fedsim::persist::{PersistError, SnapshotReader, SnapshotWriter};
use haccs_fedsim::{SelectionContext, Selector};
use haccs_obs::Recorder;
use rand::rngs::StdRng;
use rand::Rng;

/// The FedClust selector.
#[derive(Debug, Clone)]
pub struct FedClustSelector {
    /// Sketch buckets per client (delta components fold into `i % dim`).
    sketch_dim: usize,
    /// Target cluster count for farthest-first k-centers.
    n_clusters: usize,
    /// Re-cluster every this many observed rounds.
    cadence: usize,
    /// EMA blend weight for a fresh folded delta.
    blend: f32,
    /// Per-client delta sketches (BTreeMap: deterministic iteration).
    sketches: BTreeMap<usize, Vec<f32>>,
    /// Current clusters, each sorted by id.
    groups: Vec<Vec<usize>>,
    /// Rounds observed since construction/restore.
    rounds_seen: usize,
    /// Set when sketches changed enough to warrant re-clustering.
    stale: bool,
    /// Round-robin cursor over clusters.
    next_cluster: usize,
    obs: Recorder,
}

impl Default for FedClustSelector {
    fn default() -> Self {
        FedClustSelector::new(32, 4, 5)
    }
}

impl FedClustSelector {
    /// A FedClust selector with the given sketch dimension, target cluster
    /// count and re-clustering cadence (rounds).
    pub fn new(sketch_dim: usize, n_clusters: usize, cadence: usize) -> Self {
        assert!(sketch_dim > 0 && n_clusters > 0 && cadence > 0);
        FedClustSelector {
            sketch_dim,
            n_clusters,
            cadence,
            blend: 0.5,
            sketches: BTreeMap::new(),
            groups: Vec::new(),
            rounds_seen: 0,
            stale: false,
            next_cluster: 0,
            obs: Recorder::disabled(),
        }
    }

    /// Attaches an instrumentation handle (builder style).
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Current clusters (exposed for tests/telemetry).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Clients with a recorded delta sketch.
    pub fn sketched_clients(&self) -> usize {
        self.sketches.len()
    }

    /// Folds a raw delta into `sketch_dim` buckets, zeroing non-finite
    /// components so one diverged client cannot poison its own sketch.
    fn fold(&self, delta: &[f32]) -> Vec<f32> {
        let mut folded = vec![0.0f32; self.sketch_dim];
        for (i, &d) in delta.iter().enumerate() {
            if d.is_finite() {
                folded[i % self.sketch_dim] += d;
            }
        }
        folded
    }

    /// Deterministic farthest-first k-centers over L2-normalized sketches.
    fn recluster(&mut self) {
        let ids: Vec<usize> = self.sketches.keys().copied().collect();
        if ids.is_empty() {
            self.groups.clear();
            return;
        }
        let unit: Vec<Vec<f32>> = ids
            .iter()
            .map(|id| {
                let s = &self.sketches[id];
                let norm = s.iter().map(|x| x * x).sum::<f32>().sqrt();
                if norm > 0.0 && norm.is_finite() {
                    s.iter().map(|x| x / norm).collect()
                } else {
                    vec![0.0; self.sketch_dim]
                }
            })
            .collect();
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
        };

        let k = self.n_clusters.min(ids.len());
        // farthest-first: seed with the lowest id, then repeatedly take the
        // point farthest from its nearest center (ties → lowest id).
        let mut centers = vec![0usize]; // indices into `ids`
        while centers.len() < k {
            let (mut best_i, mut best_d) = (usize::MAX, -1.0f32);
            for i in 0..ids.len() {
                if centers.contains(&i) {
                    continue;
                }
                let d = centers
                    .iter()
                    .map(|&c| dist(&unit[i], &unit[c]))
                    .fold(f32::INFINITY, f32::min);
                if d > best_d {
                    best_d = d;
                    best_i = i;
                }
            }
            if best_i == usize::MAX {
                break;
            }
            centers.push(best_i);
        }
        let mut groups = vec![Vec::new(); centers.len()];
        for i in 0..ids.len() {
            let (mut best_c, mut best_d) = (0usize, f32::INFINITY);
            for (c, &ci) in centers.iter().enumerate() {
                let d = dist(&unit[i], &unit[ci]);
                if d < best_d {
                    best_d = d;
                    best_c = c;
                }
            }
            groups[best_c].push(ids[i]);
        }
        groups.retain(|g| !g.is_empty());
        self.obs.inc("selector.fedclust.reclusters", 1);
        self.obs.gauge("selector.fedclust.clusters", groups.len() as f64);
        self.groups = groups;
        self.stale = false;
        self.next_cluster = 0;
    }
}

impl Selector for FedClustSelector {
    fn name(&self) -> String {
        "fedclust".into()
    }

    fn wants_updates(&self) -> bool {
        true
    }

    fn observe_update(&mut self, _epoch: usize, id: usize, delta: &[f32]) {
        let folded = self.fold(delta);
        let blend = self.blend;
        match self.sketches.get_mut(&id) {
            Some(s) => {
                for (old, new) in s.iter_mut().zip(&folded) {
                    *old = (1.0 - blend) * *old + blend * new;
                }
            }
            None => {
                self.sketches.insert(id, folded);
                self.stale = true; // new member: clusters are incomplete
            }
        }
        self.obs.inc("selector.fedclust.deltas", 1);
    }

    fn observe_round(&mut self, _epoch: usize, _participants: &[usize], _losses: &[f32]) {
        self.rounds_seen += 1;
        if self.rounds_seen % self.cadence == 0 {
            self.stale = true;
        }
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Vec<usize> {
        if ctx.available.is_empty() || ctx.k == 0 {
            return Vec::new();
        }
        if self.stale || self.groups.is_empty() {
            self.recluster();
        }
        let span = self.obs.span("selector.fedclust.select").u("epoch", ctx.epoch as u64);

        let mut avail: Vec<usize> = ctx.available.iter().map(|c| c.id).collect();
        avail.sort_unstable();
        let mut cluster_of: BTreeMap<usize, usize> = BTreeMap::new();
        for (c, g) in self.groups.iter().enumerate() {
            for &id in g {
                cluster_of.insert(id, c);
            }
        }
        // exploration pool first (bootstraps the sketch table), then one
        // pool per cluster, rotated by the round-robin cursor.
        let mut explore: Vec<usize> = Vec::new();
        let mut pools: Vec<Vec<usize>> = vec![Vec::new(); self.groups.len()];
        for &id in &avail {
            match cluster_of.get(&id) {
                Some(&c) => pools[c].push(id),
                None => explore.push(id),
            }
        }
        let n_pools = pools.len();
        let mut ordered: Vec<&mut Vec<usize>> = Vec::new();
        ordered.push(&mut explore);
        if n_pools > 0 {
            let start = self.next_cluster % n_pools;
            let (tail, head) = pools.split_at_mut(start);
            for p in head.iter_mut().chain(tail.iter_mut()) {
                ordered.push(p);
            }
            self.next_cluster = (start + 1) % n_pools;
        }

        let mut selection = Vec::with_capacity(ctx.k);
        while selection.len() < ctx.k {
            let mut drew = false;
            for pool in ordered.iter_mut() {
                if selection.len() >= ctx.k {
                    break;
                }
                if pool.is_empty() {
                    continue;
                }
                let i = rng.gen_range(0..pool.len());
                selection.push(pool.remove(i));
                drew = true;
            }
            if !drew {
                break;
            }
        }
        span.finish();
        selection
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.rounds_seen);
        w.put_bool(self.stale);
        w.put_usize(self.next_cluster);
        w.put_usize(self.sketches.len());
        for (&id, sketch) in &self.sketches {
            w.put_usize(id);
            w.put_f32s(sketch);
        }
        w.put_usize(self.groups.len());
        for g in &self.groups {
            w.put_usizes(g);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        self.rounds_seen = r.get_usize()?;
        self.stale = r.get_bool()?;
        self.next_cluster = r.get_usize()?;
        let n = r.get_usize()?;
        self.sketches.clear();
        for _ in 0..n {
            let id = r.get_usize()?;
            let sketch = r.get_f32s()?;
            if sketch.len() != self.sketch_dim {
                return Err(PersistError::Malformed(format!(
                    "fedclust sketch dim {} (selector built with {})",
                    sketch.len(),
                    self.sketch_dim
                )));
            }
            self.sketches.insert(id, sketch);
        }
        let g = r.get_usize()?;
        self.groups = (0..g).map(|_| r.get_usizes()).collect::<Result<_, _>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_fedsim::ClientInfo;
    use rand::SeedableRng;

    fn info(id: usize) -> ClientInfo {
        ClientInfo { id, est_latency: 1.0, last_loss: 1.0, n_train: 10, participation_count: 0 }
    }

    fn ctx<'a>(avail: &'a [ClientInfo], k: usize) -> SelectionContext<'a> {
        SelectionContext { epoch: 0, available: avail, k }
    }

    #[test]
    fn wants_updates_and_sketches_accumulate() {
        let mut s = FedClustSelector::new(4, 2, 3);
        assert!(s.wants_updates());
        s.observe_update(0, 7, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.sketched_clients(), 1);
        // component 4 folds into bucket 0: [1+5, 2, 3, 4]
        assert_eq!(s.sketches[&7], vec![6.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn nan_delta_components_are_dropped() {
        let mut s = FedClustSelector::new(2, 2, 3);
        s.observe_update(0, 1, &[f32::NAN, 1.0, f32::INFINITY, 2.0]);
        assert_eq!(s.sketches[&1], vec![0.0, 3.0]);
    }

    #[test]
    fn clusters_separate_opposed_update_directions() {
        let mut s = FedClustSelector::new(4, 2, 1);
        for id in 0..3 {
            s.observe_update(0, id, &[1.0, 1.0, 0.0, 0.0]);
        }
        for id in 3..6 {
            s.observe_update(0, id, &[-1.0, -1.0, 0.0, 0.0]);
        }
        s.recluster();
        let mut groups = s.groups().to_vec();
        groups.sort();
        assert_eq!(groups, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn unseen_clients_are_explored_first() {
        let mut s = FedClustSelector::new(4, 2, 100);
        for id in 0..4 {
            s.observe_update(0, id, &[1.0, 0.0, 0.0, 0.0]);
        }
        s.recluster();
        let avail: Vec<ClientInfo> = (0..6).map(info).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let sel = s.select(&ctx(&avail, 2), &mut rng);
        // ids 4 and 5 have no sketch: the exploration pool feeds the first
        // draw each sweep, so at least one of them must be in the cohort.
        assert!(sel.iter().any(|id| *id >= 4), "{sel:?}");
    }

    #[test]
    fn selection_is_registration_order_invariant() {
        let build = || {
            let mut s = FedClustSelector::new(4, 2, 100);
            for id in [5usize, 1, 3, 0, 2, 4] {
                let sign = if id % 2 == 0 { 1.0 } else { -1.0 };
                s.observe_update(0, id, &[sign, sign, 0.0, 0.0]);
            }
            s.recluster();
            s
        };
        let avail_a: Vec<ClientInfo> = (0..6).map(info).collect();
        let mut avail_b = avail_a.clone();
        avail_b.reverse();
        let a = build().select(&ctx(&avail_a, 3), &mut StdRng::seed_from_u64(9));
        let b = build().select(&ctx(&avail_b, 3), &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let mut s = FedClustSelector::new(4, 2, 3);
        for id in 0..5 {
            s.observe_update(0, id, &[id as f32, 1.0, -1.0, 0.5]);
        }
        s.observe_round(0, &[0, 1], &[0.5, 0.6]);
        s.recluster();
        let mut w = SnapshotWriter::new();
        s.save_state(&mut w);
        let bytes = w.finish();

        let mut restored = FedClustSelector::new(4, 2, 3);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        let mut w2 = SnapshotWriter::new();
        restored.save_state(&mut w2);
        assert_eq!(bytes, w2.finish());
    }

    #[test]
    fn load_rejects_wrong_sketch_dim() {
        let mut s = FedClustSelector::new(4, 2, 3);
        s.observe_update(0, 0, &[1.0; 4]);
        let mut w = SnapshotWriter::new();
        s.save_state(&mut w);
        let bytes = w.finish();
        let mut other = FedClustSelector::new(8, 2, 3);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(other.load_state(&mut r).is_err());
    }
}
