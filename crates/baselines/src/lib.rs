//! # haccs-baselines
//!
//! The comparison client-selection strategies from the paper's evaluation
//! (§V-A), implemented against the [`haccs_fedsim::Selector`] interface:
//!
//! * [`RandomSelector`] — uniform random `k` of the available clients,
//! * [`TiflSelector`] — TiFL (Chai et al., HPDC'20): clients grouped into
//!   latency tiers; each epoch a tier is chosen "based on the average loss
//!   in each tier and how often tiers have been sampled in past epochs",
//!   then clients are drawn randomly within the tier,
//! * [`OortSelector`] — Oort (Lai et al., OSDI'21): per-client utility =
//!   statistical utility × latency penalty, ε-greedy exploration, and
//!   top-k exploitation.

pub mod oort;
pub mod random;
pub mod tifl;

pub use oort::OortSelector;
pub use random::RandomSelector;
pub use tifl::TiflSelector;
