//! Uniform random selection — the paper's `Random` baseline.

use haccs_fedsim::{SelectionContext, Selector};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Selects `k` clients uniformly at random (without replacement) from the
/// available pool each epoch.
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomSelector;

impl RandomSelector {
    /// A random selector.
    pub fn new() -> Self {
        RandomSelector
    }
}

impl Selector for RandomSelector {
    fn name(&self) -> String {
        "random".into()
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Vec<usize> {
        let mut ids: Vec<usize> = ctx.available.iter().map(|c| c.id).collect();
        ids.shuffle(rng);
        ids.truncate(ctx.k);
        ids
    }

    fn observe_faults(&mut self, _epoch: usize, _failed: &[usize]) {
        // Deliberately a no-op: uniform sampling is memoryless, which makes
        // Random the control arm in fault-rate sweeps — it pays the full
        // price of unreliable clients every round.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_fedsim::ClientInfo;
    use rand::SeedableRng;

    fn infos(n: usize) -> Vec<ClientInfo> {
        (0..n)
            .map(|id| ClientInfo {
                id,
                est_latency: 1.0,
                last_loss: 1.0,
                n_train: 10,
                participation_count: 0,
            })
            .collect()
    }

    #[test]
    fn selects_k_distinct() {
        let avail = infos(20);
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 5 };
        let mut rng = StdRng::seed_from_u64(0);
        let sel = RandomSelector.select(&ctx, &mut rng);
        assert_eq!(sel.len(), 5);
        let mut uniq = sel.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 5);
    }

    #[test]
    fn covers_all_clients_over_time() {
        let avail = infos(10);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        let mut sel = RandomSelector;
        for epoch in 0..50 {
            let ctx = SelectionContext { epoch, available: &avail, k: 3 };
            seen.extend(sel.select(&ctx, &mut rng));
        }
        assert_eq!(seen.len(), 10, "random selection should eventually touch everyone");
    }

    #[test]
    fn fewer_available_than_k() {
        let avail = infos(2);
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 5 };
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(RandomSelector.select(&ctx, &mut rng).len(), 2);
    }
}
