//! Oort (Lai et al., OSDI'21): guided participant selection.
//!
//! Each client carries a utility combining *statistical* value (how much
//! its data still hurts the model) and *system* value (how fast it is):
//!
//! ```text
//! util(i) = n_i · loss_i × (T / t_i)^α   if t_i > T, else n_i · loss_i
//! ```
//!
//! where `T` is the preferred round duration (a latency quantile of the
//! population) and `α` the system-penalty exponent. Selection is ε-greedy:
//! an exploration share of the budget goes to never-tried clients, the rest
//! to the highest-utility explored clients ("we recompute the utility of
//! each client available for training and select k clients with the
//! highest utility", §V-A).

use haccs_fedsim::persist::{PersistError, SnapshotReader, SnapshotWriter};
use haccs_fedsim::{SelectionContext, Selector};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// The Oort selector.
#[derive(Debug, Clone)]
pub struct OortSelector {
    /// System-penalty exponent α.
    pub alpha: f64,
    /// Quantile of the latency distribution used as preferred duration `T`.
    pub duration_quantile: f64,
    /// Current exploration fraction ε.
    epsilon: f64,
    /// Multiplicative ε decay per epoch.
    epsilon_decay: f64,
    /// Lower bound on ε.
    epsilon_min: f64,
    explored: std::collections::HashSet<usize>,
    /// Observed mid-round failures per client (crash/deadline/wire). Each
    /// failure halves the client's utility — Oort's blacklisting idea,
    /// softened to a reliability penalty.
    failures: std::collections::HashMap<usize, u32>,
}

impl Default for OortSelector {
    fn default() -> Self {
        // Oort's published defaults: ε 0.9 → 0.2 with 0.98 decay, α = 2
        OortSelector {
            alpha: 2.0,
            duration_quantile: 0.5,
            epsilon: 0.9,
            epsilon_decay: 0.98,
            epsilon_min: 0.2,
            explored: std::collections::HashSet::new(),
            failures: std::collections::HashMap::new(),
        }
    }
}

impl OortSelector {
    /// Oort with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current exploration fraction (exposed for tests/telemetry).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Recorded mid-round failures of `client`.
    pub fn failure_count(&self, client: usize) -> u32 {
        self.failures.get(&client).copied().unwrap_or(0)
    }

    /// The utility of one client given preferred duration `t_pref`.
    fn utility(&self, id: usize, loss: f32, n_train: usize, latency: f64, t_pref: f64) -> f64 {
        // A diverged client (NaN/inf loss) carries no usable statistical
        // signal; rank it below every healthy client instead of letting a
        // single NaN poison the utility ordering.
        let stat = if loss.is_finite() { n_train as f64 * loss as f64 } else { 0.0 };
        let sys = if latency > t_pref && latency > 0.0 {
            (t_pref / latency).powf(self.alpha)
        } else {
            1.0
        };
        let reliability = 0.5f64.powi(self.failure_count(id) as i32);
        stat * sys * reliability
    }
}

impl Selector for OortSelector {
    fn name(&self) -> String {
        "oort".into()
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Vec<usize> {
        if ctx.available.is_empty() {
            return Vec::new();
        }
        // preferred duration: latency quantile over available clients
        let mut lats: Vec<f64> = ctx.available.iter().map(|c| c.est_latency).collect();
        lats.sort_by(f64::total_cmp);
        let qi = ((lats.len() as f64 - 1.0) * self.duration_quantile).round() as usize;
        let t_pref = lats[qi];

        let n_explore = ((ctx.k as f64) * self.epsilon).round() as usize;
        let mut unexplored: Vec<usize> =
            ctx.available.iter().filter(|c| !self.explored.contains(&c.id)).map(|c| c.id).collect();
        unexplored.shuffle(rng);
        let explore: Vec<usize> = unexplored.into_iter().take(n_explore).collect();

        // exploit: highest-utility among the rest
        let mut scored: Vec<(usize, f64)> = ctx
            .available
            .iter()
            .filter(|c| !explore.contains(&c.id))
            .map(|c| (c.id, self.utility(c.id, c.last_loss, c.n_train, c.est_latency, t_pref)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

        let mut selection = explore;
        for (id, _) in scored {
            if selection.len() >= ctx.k {
                break;
            }
            selection.push(id);
        }
        self.epsilon = (self.epsilon * self.epsilon_decay).max(self.epsilon_min);
        selection
    }

    fn observe_round(&mut self, _epoch: usize, participants: &[usize], _losses: &[f32]) {
        self.explored.extend(participants.iter().copied());
    }

    fn observe_faults(&mut self, _epoch: usize, failed: &[usize]) {
        for &id in failed {
            *self.failures.entry(id).or_insert(0) += 1;
            // A failed attempt still counts as tried: don't burn exploration
            // budget re-discovering a device we already know is flaky.
            self.explored.insert(id);
        }
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_f64(self.epsilon);
        let mut explored: Vec<usize> = self.explored.iter().copied().collect();
        explored.sort_unstable();
        w.put_usizes(&explored);
        let mut failures: Vec<(usize, u32)> = self.failures.iter().map(|(&k, &v)| (k, v)).collect();
        failures.sort_unstable();
        w.put_usize(failures.len());
        for (id, n) in failures {
            w.put_usize(id);
            w.put_u32(n);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        self.epsilon = r.get_f64()?;
        self.explored = r.get_usizes()?.into_iter().collect();
        let n = r.get_usize()?;
        self.failures.clear();
        for _ in 0..n {
            let id = r.get_usize()?;
            let count = r.get_u32()?;
            self.failures.insert(id, count);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_fedsim::ClientInfo;
    use rand::SeedableRng;

    fn info(id: usize, lat: f64, loss: f32, n: usize) -> ClientInfo {
        ClientInfo { id, est_latency: lat, last_loss: loss, n_train: n, participation_count: 0 }
    }

    #[test]
    fn utility_prefers_high_loss() {
        let o = OortSelector::new();
        let hi = o.utility(0, 5.0, 100, 1.0, 2.0);
        let lo = o.utility(0, 1.0, 100, 1.0, 2.0);
        assert!(hi > lo);
    }

    #[test]
    fn utility_penalizes_slow_clients() {
        let o = OortSelector::new();
        let fast = o.utility(0, 1.0, 100, 1.0, 2.0); // under T: no penalty
        let slow = o.utility(0, 1.0, 100, 8.0, 2.0); // 4× over T: (1/4)² penalty
        assert_eq!(fast, 100.0);
        assert!((slow - 100.0 * (2.0f64 / 8.0).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn utility_halves_per_observed_failure() {
        let mut o = OortSelector::new();
        let clean = o.utility(7, 1.0, 100, 1.0, 2.0);
        o.observe_faults(0, &[7]);
        o.observe_faults(1, &[7]);
        assert_eq!(o.failure_count(7), 2);
        assert!((o.utility(7, 1.0, 100, 1.0, 2.0) - clean / 4.0).abs() < 1e-9);
        // other clients unaffected
        assert_eq!(o.failure_count(3), 0);
        assert!((o.utility(3, 1.0, 100, 1.0, 2.0) - clean).abs() < 1e-9);
    }

    #[test]
    fn repeated_failures_depress_selection() {
        // zero exploration; client 1 has the best raw utility but keeps
        // failing — after feedback Oort should stop drafting it.
        let mut o = OortSelector { epsilon: 0.0, epsilon_min: 0.0, ..Default::default() };
        let avail = vec![
            info(0, 1.0, 3.0, 100),
            info(1, 1.0, 5.0, 100), // flaky top scorer
            info(2, 1.0, 4.0, 100),
        ];
        let mut rng = StdRng::seed_from_u64(9);
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 1 };
        assert_eq!(o.select(&ctx, &mut rng), vec![1]);
        o.observe_faults(0, &[1]);
        let ctx = SelectionContext { epoch: 1, available: &avail, k: 1 };
        // 5.0 / 2 = 2.5 < 4.0: client 2 now wins
        assert_eq!(o.select(&ctx, &mut rng), vec![2]);
    }

    #[test]
    fn failed_clients_count_as_explored() {
        let mut o = OortSelector::new();
        assert!(o.explored.is_empty());
        o.observe_faults(0, &[4, 5]);
        assert!(o.explored.contains(&4) && o.explored.contains(&5));
    }

    #[test]
    fn exploitation_picks_top_utility() {
        // zero out exploration to test exploitation deterministically
        let mut o = OortSelector { epsilon: 0.0, epsilon_min: 0.0, ..Default::default() };
        let avail = vec![
            info(0, 1.0, 0.1, 100),
            info(1, 1.0, 5.0, 100), // highest utility
            info(2, 1.0, 2.0, 100),
            info(3, 1.0, 4.0, 100),
        ];
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 2 };
        let mut rng = StdRng::seed_from_u64(0);
        let sel = o.select(&ctx, &mut rng);
        assert_eq!(sel, vec![1, 3]);
    }

    #[test]
    fn epsilon_decays_to_floor() {
        let mut o = OortSelector::new();
        let avail = vec![info(0, 1.0, 1.0, 10)];
        let mut rng = StdRng::seed_from_u64(1);
        for epoch in 0..500 {
            let ctx = SelectionContext { epoch, available: &avail, k: 1 };
            o.select(&ctx, &mut rng);
        }
        assert!((o.epsilon() - 0.2).abs() < 1e-9, "ε should floor at 0.2: {}", o.epsilon());
    }

    #[test]
    fn explores_unseen_clients_early() {
        let mut o = OortSelector::new();
        let avail: Vec<ClientInfo> = (0..10).map(|i| info(i, 1.0, 1.0, 10)).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..20 {
            let ctx = SelectionContext { epoch, available: &avail, k: 3 };
            let sel = o.select(&ctx, &mut rng);
            o.observe_round(epoch, &sel, &[1.0; 3]);
            seen.extend(sel);
        }
        assert_eq!(seen.len(), 10, "exploration should reach everyone early");
    }

    #[test]
    fn selects_k_clients() {
        let mut o = OortSelector::new();
        let avail: Vec<ClientInfo> = (0..20).map(|i| info(i, (i as f64) + 1.0, 1.0, 10)).collect();
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 7 };
        let mut rng = StdRng::seed_from_u64(3);
        let sel = o.select(&ctx, &mut rng);
        assert_eq!(sel.len(), 7);
        let mut u = sel.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 7, "no duplicates");
    }

    #[test]
    fn empty_pool() {
        let mut o = OortSelector::new();
        let ctx = SelectionContext { epoch: 0, available: &[], k: 3 };
        let mut rng = StdRng::seed_from_u64(4);
        assert!(o.select(&ctx, &mut rng).is_empty());
    }
}
