//! TiFL (Chai et al., HPDC'20): tier-based federated client selection.
//!
//! Clients are profiled once and grouped into latency **tiers**. Each
//! epoch, one tier is sampled with probability proportional to its average
//! observed loss (slower-learning tiers get more attention) and discounted
//! by how often it has already been selected; `k` clients are then drawn
//! uniformly from within the tier, topping up from the next-fastest tiers
//! if the tier is too small.

use haccs_fedsim::persist::{PersistError, SnapshotReader, SnapshotWriter};
use haccs_fedsim::{SelectionContext, Selector};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// The TiFL selector.
#[derive(Debug, Clone)]
pub struct TiflSelector {
    n_tiers: usize,
    /// tier id per client id, assigned on first sight from latency.
    tier_of: HashMap<usize, usize>,
    /// times each tier has been selected.
    times_selected: Vec<usize>,
    tiers_built: bool,
}

impl TiflSelector {
    /// TiFL with `n_tiers` latency tiers (the paper's testbed uses the four
    /// Table II categories; 4 is the natural default).
    pub fn new(n_tiers: usize) -> Self {
        assert!(n_tiers >= 1);
        TiflSelector {
            n_tiers,
            tier_of: HashMap::new(),
            times_selected: vec![0; n_tiers],
            tiers_built: false,
        }
    }

    /// Tier assignment of a client, if profiled.
    pub fn tier_of(&self, client: usize) -> Option<usize> {
        self.tier_of.get(&client).copied()
    }

    /// Profiles clients by latency: equal-size quantile tiers, tier 0 =
    /// fastest.
    fn build_tiers(&mut self, ctx: &SelectionContext<'_>) {
        let mut by_lat: Vec<(usize, f64)> =
            ctx.available.iter().map(|c| (c.id, c.est_latency)).collect();
        by_lat.sort_by(|a, b| a.1.total_cmp(&b.1));
        let n = by_lat.len();
        for (rank, (id, _)) in by_lat.into_iter().enumerate() {
            let tier = (rank * self.n_tiers / n.max(1)).min(self.n_tiers - 1);
            self.tier_of.insert(id, tier);
        }
        self.tiers_built = true;
    }
}

impl Selector for TiflSelector {
    fn name(&self) -> String {
        "tifl".into()
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Vec<usize> {
        if !self.tiers_built {
            self.build_tiers(ctx);
        }
        // late joiners (never profiled): assign to the slowest tier
        for c in ctx.available {
            self.tier_of.entry(c.id).or_insert(self.n_tiers - 1);
        }

        // average loss per tier over available clients
        let mut loss_sum = vec![0.0f64; self.n_tiers];
        let mut count = vec![0usize; self.n_tiers];
        for c in ctx.available {
            let t = self.tier_of[&c.id];
            // a diverged client's NaN/inf loss would poison its whole
            // tier's weight (and the gen_range draw below); count the
            // client but contribute no statistical signal
            if c.last_loss.is_finite() {
                loss_sum[t] += c.last_loss as f64;
            }
            count[t] += 1;
        }
        // selection weight: avg loss, discounted by prior selections
        let weights: Vec<f64> = (0..self.n_tiers)
            .map(|t| {
                if count[t] == 0 {
                    0.0
                } else {
                    let avg = loss_sum[t] / count[t] as f64;
                    avg / (1.0 + self.times_selected[t] as f64).sqrt()
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Vec::new();
        }
        let mut u = rng.gen_range(0.0..total);
        let mut tier = self.n_tiers - 1;
        for (t, &w) in weights.iter().enumerate() {
            if u < w {
                tier = t;
                break;
            }
            u -= w;
        }
        self.times_selected[tier] += 1;

        // draw k clients from the tier; top up from other tiers, fastest
        // first, if the tier is short
        let mut in_tier: Vec<usize> =
            ctx.available.iter().filter(|c| self.tier_of[&c.id] == tier).map(|c| c.id).collect();
        in_tier.shuffle(rng);
        let mut selection: Vec<usize> = in_tier.into_iter().take(ctx.k).collect();
        if selection.len() < ctx.k {
            let mut rest: Vec<(usize, f64)> = ctx
                .available
                .iter()
                .filter(|c| self.tier_of[&c.id] != tier)
                .map(|c| (c.id, c.est_latency))
                .collect();
            rest.sort_by(|a, b| a.1.total_cmp(&b.1));
            for (id, _) in rest {
                if selection.len() >= ctx.k {
                    break;
                }
                selection.push(id);
            }
        }
        selection
    }

    fn observe_faults(&mut self, _epoch: usize, failed: &[usize]) {
        // A client that crashed or missed the deadline behaved slower than
        // its profile promised: demote it one tier (toward the slow end).
        // TiFL's tiers are a latency *estimate*; failures are evidence the
        // estimate was optimistic.
        for &id in failed {
            if let Some(t) = self.tier_of.get_mut(&id) {
                *t = (*t + 1).min(self.n_tiers - 1);
            } else {
                self.tier_of.insert(id, self.n_tiers - 1);
            }
        }
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.n_tiers);
        let mut tiers: Vec<(usize, usize)> = self.tier_of.iter().map(|(&c, &t)| (c, t)).collect();
        tiers.sort_unstable();
        w.put_usize(tiers.len());
        for (client, tier) in tiers {
            w.put_usize(client);
            w.put_usize(tier);
        }
        w.put_usizes(&self.times_selected);
        w.put_bool(self.tiers_built);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        let n_tiers = r.get_usize()?;
        if n_tiers != self.n_tiers {
            return Err(PersistError::Malformed(format!(
                "snapshot has {n_tiers} tiers, this selector {}",
                self.n_tiers
            )));
        }
        let n = r.get_usize()?;
        self.tier_of.clear();
        for _ in 0..n {
            let client = r.get_usize()?;
            let tier = r.get_usize()?;
            self.tier_of.insert(client, tier);
        }
        self.times_selected = r.get_usizes()?;
        if self.times_selected.len() != self.n_tiers {
            return Err(PersistError::Malformed("times_selected length mismatch".into()));
        }
        self.tiers_built = r.get_bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_fedsim::ClientInfo;
    use rand::SeedableRng;

    fn info(id: usize, lat: f64, loss: f32) -> ClientInfo {
        ClientInfo { id, est_latency: lat, last_loss: loss, n_train: 10, participation_count: 0 }
    }

    fn pool() -> Vec<ClientInfo> {
        // 8 clients, latency 1..8
        (0..8).map(|i| info(i, (i + 1) as f64, 1.0)).collect()
    }

    #[test]
    fn tiers_split_by_latency() {
        let avail = pool();
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 2 };
        let mut t = TiflSelector::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        t.select(&ctx, &mut rng);
        // 8 clients into 4 tiers of 2, ordered by latency
        assert_eq!(t.tier_of(0), Some(0));
        assert_eq!(t.tier_of(1), Some(0));
        assert_eq!(t.tier_of(6), Some(3));
        assert_eq!(t.tier_of(7), Some(3));
    }

    #[test]
    fn selection_comes_from_one_tier_when_full() {
        let avail = pool();
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 2 };
        let mut t = TiflSelector::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = t.select(&ctx, &mut rng);
        assert_eq!(sel.len(), 2);
        let tier0 = t.tier_of(sel[0]).unwrap();
        let tier1 = t.tier_of(sel[1]).unwrap();
        assert_eq!(tier0, tier1, "both picks should come from the sampled tier");
    }

    #[test]
    fn high_loss_tier_gets_selected_more() {
        // tier of clients 6,7 (slowest) has 10× the loss; over many rounds
        // it should be sampled most often
        let avail: Vec<ClientInfo> =
            (0..8).map(|i| info(i, (i + 1) as f64, if i >= 6 { 10.0 } else { 1.0 })).collect();
        let mut t = TiflSelector::new(4);
        let mut rng = StdRng::seed_from_u64(2);
        let mut tier3_hits = 0;
        for epoch in 0..200 {
            let ctx = SelectionContext { epoch, available: &avail, k: 2 };
            let sel = t.select(&ctx, &mut rng);
            if sel.iter().all(|&id| t.tier_of(id) == Some(3)) {
                tier3_hits += 1;
            }
        }
        assert!(tier3_hits > 60, "high-loss tier selected only {tier3_hits}/200 times");
    }

    #[test]
    fn repeated_selection_is_discounted() {
        // equal losses: discounting should spread selections across tiers
        let avail = pool();
        let mut t = TiflSelector::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0usize; 4];
        for epoch in 0..400 {
            let ctx = SelectionContext { epoch, available: &avail, k: 2 };
            let sel = t.select(&ctx, &mut rng);
            hits[t.tier_of(sel[0]).unwrap()] += 1;
        }
        for (tier, &h) in hits.iter().enumerate() {
            assert!(h > 40, "tier {tier} starved: {hits:?}");
        }
    }

    #[test]
    fn tops_up_from_other_tiers() {
        let avail = pool();
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 5 };
        let mut t = TiflSelector::new(4);
        let mut rng = StdRng::seed_from_u64(4);
        let sel = t.select(&ctx, &mut rng);
        assert_eq!(sel.len(), 5, "tier of 2 must be topped up to k=5");
    }

    #[test]
    fn empty_pool_selects_nothing() {
        let ctx = SelectionContext { epoch: 0, available: &[], k: 3 };
        let mut t = TiflSelector::new(4);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(t.select(&ctx, &mut rng).is_empty());
    }

    #[test]
    fn failures_demote_one_tier_and_saturate() {
        let avail = pool();
        let ctx = SelectionContext { epoch: 0, available: &avail, k: 2 };
        let mut t = TiflSelector::new(4);
        let mut rng = StdRng::seed_from_u64(6);
        t.select(&ctx, &mut rng); // builds tiers: client 0 is in tier 0
        assert_eq!(t.tier_of(0), Some(0));
        t.observe_faults(1, &[0]);
        assert_eq!(t.tier_of(0), Some(1));
        for epoch in 2..10 {
            t.observe_faults(epoch, &[0]);
        }
        assert_eq!(t.tier_of(0), Some(3), "demotion saturates at the slowest tier");
        // an unprofiled client that fails lands straight in the slowest tier
        t.observe_faults(10, &[99]);
        assert_eq!(t.tier_of(99), Some(3));
    }
}
