//! Property-based tests: every message round-trips, decode never panics
//! on arbitrary bytes, and the lossy channel is a pure function of
//! (seed, stream, message).

use bytes::Bytes;
use haccs_wire::{ChannelError, FaultyChannel, Message, ResourceEstimate, WireSummary};
use proptest::prelude::*;

fn arb_summary() -> impl Strategy<Value = WireSummary> {
    (
        proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, 0..20), 0..6),
        proptest::collection::vec(0.0f32..1.0, 0..12),
    )
        .prop_map(|(histograms, prevalence)| WireSummary { histograms, prevalence })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), arb_summary(), 0.1f32..5.0, 0.1f32..200.0, 0.1f32..500.0, any::<u32>())
            .prop_map(|(n, s, c, b, r, t)| Message::Join {
                client_nonce: n,
                summary: s,
                resources: ResourceEstimate {
                    compute_multiplier: c,
                    bandwidth_mbps: b,
                    rtt_ms: r,
                    n_train: t,
                },
            }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(r, n)| Message::Schedule { round: r, client_nonce: n }),
        (any::<u64>(), proptest::collection::vec(-100.0f32..100.0, 0..64))
            .prop_map(|(r, p)| Message::ModelPush { round: r, params: p }),
        (
            any::<u64>(),
            proptest::collection::vec(-100.0f32..100.0, 0..64),
            -10.0f32..10.0,
            any::<u32>()
        )
            .prop_map(|(r, p, l, n)| Message::ModelUpdate {
                round: r,
                params: p,
                loss: l,
                n_train: n,
            }),
        (any::<u64>(), arb_summary())
            .prop_map(|(n, s)| Message::SummaryUpdate { client_nonce: n, summary: s }),
        (any::<u64>(), any::<u64>(), -10.0f32..10.0).prop_map(|(n, r, l)| Message::Heartbeat {
            client_nonce: n,
            round: r,
            last_loss: l,
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(n, r)| Message::Leave { client_nonce: n, round: r }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(m in arb_message()) {
        let frame = m.encode();
        prop_assert_eq!(frame.len(), m.wire_size());
        let back = Message::decode(frame).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn wire_size_matches_encoding_for_every_variant(m in arb_message()) {
        // wire_size is the byte-accounting primitive for fig5/fig6f; it
        // must never drift from what encode() actually emits
        prop_assert_eq!(m.encode().len(), m.wire_size());
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // any result is fine; panicking or huge allocation is not
        let _ = Message::decode(Bytes::from(bytes));
    }

    #[test]
    fn truncation_always_detected(m in arb_message(), frac in 0.0f64..1.0) {
        let frame = m.encode();
        let cut = ((frame.len() as f64) * frac) as usize;
        if cut < frame.len() {
            let out = Message::decode(frame.slice(0..cut));
            prop_assert!(out.is_err(), "decoding a prefix must fail, got {:?}", out);
        }
    }

    #[test]
    fn reliable_channel_delivers_first_try(m in arb_message(), stream in any::<u64>()) {
        let ch = FaultyChannel::reliable(0);
        let d = ch.transmit(&m, stream).expect("reliable channel never fails");
        prop_assert_eq!(d.attempts, 1);
        prop_assert_eq!(d.retries, 0);
        prop_assert_eq!(d.backoff_s, 0.0);
        prop_assert_eq!(d.bytes_sent, m.wire_size());
        prop_assert_eq!(d.message, m);
    }

    #[test]
    fn lossy_channel_is_seed_deterministic(
        m in arb_message(),
        stream in any::<u64>(),
        seed in any::<u64>(),
        loss in 0.0f64..1.0,
    ) {
        let ch = FaultyChannel::lossy(loss, seed, 3, 0.5);
        let a = ch.transmit(&m, stream);
        let b = ch.transmit(&m, stream);
        match (a, b) {
            (Ok(da), Ok(db)) => {
                prop_assert_eq!(da.attempts, db.attempts);
                prop_assert_eq!(da.retries, db.retries);
                prop_assert_eq!(da.backoff_s, db.backoff_s);
                prop_assert_eq!(da.message, db.message);
                // the delivered message is the one we sent, and every
                // attempt re-sent the full frame
                prop_assert_eq!(&da.message, &m);
                prop_assert_eq!(da.bytes_sent, da.attempts as usize * m.wire_size());
            }
            (
                Err(ChannelError::RetryBudgetExhausted { attempts: aa, backoff_s: ba }),
                Err(ChannelError::RetryBudgetExhausted { attempts: ab, backoff_s: bb }),
            ) => {
                prop_assert_eq!(aa, ab);
                prop_assert_eq!(ba, bb);
                prop_assert_eq!(aa, 4, "budget of 3 retries = 4 attempts");
            }
            (a, b) => prop_assert!(false, "same inputs diverged: {:?} vs {:?}", a, b),
        }
    }
}
