//! Property-based tests: every message round-trips, decode never panics
//! on arbitrary bytes, and the lossy channel is a pure function of
//! (seed, stream, message).

use bytes::Bytes;
use haccs_wire::{
    read_frame, write_frame, ChannelError, Envelope, FaultyChannel, FrameError, Message,
    ResourceEstimate, TransmitOutcome, WireSummary, FRAME_HEADER_BYTES, MAX_FRAME_BYTES,
};
use proptest::prelude::*;

fn arb_summary() -> impl Strategy<Value = WireSummary> {
    (
        proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, 0..20), 0..6),
        proptest::collection::vec(0.0f32..1.0, 0..12),
    )
        .prop_map(|(histograms, prevalence)| WireSummary { histograms, prevalence })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), arb_summary(), 0.1f32..5.0, 0.1f32..200.0, 0.1f32..500.0, any::<u32>())
            .prop_map(|(n, s, c, b, r, t)| Message::Join {
                client_nonce: n,
                summary: s,
                resources: ResourceEstimate {
                    compute_multiplier: c,
                    bandwidth_mbps: b,
                    rtt_ms: r,
                    n_train: t,
                },
            }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(r, n)| Message::Schedule { round: r, client_nonce: n }),
        (any::<u64>(), proptest::collection::vec(-100.0f32..100.0, 0..64))
            .prop_map(|(r, p)| Message::ModelPush { round: r, params: p }),
        (
            any::<u64>(),
            proptest::collection::vec(-100.0f32..100.0, 0..64),
            -10.0f32..10.0,
            any::<u32>()
        )
            .prop_map(|(r, p, l, n)| Message::ModelUpdate {
                round: r,
                params: p,
                loss: l,
                n_train: n,
            }),
        (any::<u64>(), arb_summary())
            .prop_map(|(n, s)| Message::SummaryUpdate { client_nonce: n, summary: s }),
        (any::<u64>(), any::<u64>(), -10.0f32..10.0).prop_map(|(n, r, l)| Message::Heartbeat {
            client_nonce: n,
            round: r,
            last_loss: l,
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(n, r)| Message::Leave { client_nonce: n, round: r }),
        (any::<u64>(), -10.0f32..10.0)
            .prop_map(|(r, l)| Message::ResumeSync { round: r, last_loss: l }),
    ]
}

fn arb_outcome() -> impl Strategy<Value = TransmitOutcome> {
    prop_oneof![
        (arb_message(), 0usize..8, 0.0f64..60.0).prop_map(|(m, retries, backoff_s)| {
            TransmitOutcome::Delivered {
                bytes_sent: m.wire_size() * (retries + 1),
                frame: m.encode(),
                retries,
                backoff_s,
            }
        }),
        (0usize..8, 0.0f64..60.0)
            .prop_map(|(retries, backoff_s)| TransmitOutcome::Lost { retries, backoff_s }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(m in arb_message()) {
        let frame = m.encode();
        prop_assert_eq!(frame.len(), m.wire_size());
        let back = Message::decode(frame).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn wire_size_matches_encoding_for_every_variant(m in arb_message()) {
        // wire_size is the byte-accounting primitive for fig5/fig6f; it
        // must never drift from what encode() actually emits
        prop_assert_eq!(m.encode().len(), m.wire_size());
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // any result is fine; panicking or huge allocation is not
        let _ = Message::decode(Bytes::from(bytes));
    }

    #[test]
    fn truncation_always_detected(m in arb_message(), frac in 0.0f64..1.0) {
        let frame = m.encode();
        let cut = ((frame.len() as f64) * frac) as usize;
        if cut < frame.len() {
            let out = Message::decode(frame.slice(0..cut));
            prop_assert!(out.is_err(), "decoding a prefix must fail, got {:?}", out);
        }
    }

    #[test]
    fn reliable_channel_delivers_first_try(m in arb_message(), stream in any::<u64>()) {
        let ch = FaultyChannel::reliable(0);
        let d = ch.transmit(&m, stream).expect("reliable channel never fails");
        prop_assert_eq!(d.attempts, 1);
        prop_assert_eq!(d.retries, 0);
        prop_assert_eq!(d.backoff_s, 0.0);
        prop_assert_eq!(d.bytes_sent, m.wire_size());
        prop_assert_eq!(d.message, m);
    }

    #[test]
    fn frames_roundtrip_through_the_codec(m in arb_message()) {
        let payload = m.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, payload.as_ref()).expect("write frame");
        prop_assert_eq!(wire.len(), FRAME_HEADER_BYTES + payload.len());
        let back = read_frame(&mut wire.as_slice()).expect("read frame");
        prop_assert_eq!(back.as_slice(), payload.as_ref());
    }

    #[test]
    fn back_to_back_frames_preserve_boundaries(
        msgs in proptest::collection::vec(arb_message(), 1..6)
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m.encode().as_ref()).expect("write frame");
        }
        let mut cursor = wire.as_slice();
        for m in &msgs {
            let payload = read_frame(&mut cursor).expect("read frame");
            prop_assert_eq!(Message::decode(Bytes::from(payload)).unwrap(), m.clone());
        }
        prop_assert_eq!(
            read_frame(&mut cursor).unwrap_err(),
            FrameError::Closed,
            "stream must end exactly at the last frame boundary"
        );
    }

    #[test]
    fn truncated_frames_yield_typed_errors_never_panic(
        m in arb_message(),
        frac in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, m.encode().as_ref()).expect("write frame");
        let cut = ((wire.len() as f64) * frac) as usize;
        if cut < wire.len() {
            let out = read_frame(&mut wire[..cut].as_ref() as &mut &[u8]);
            match out {
                Err(FrameError::Closed) => prop_assert_eq!(cut, 0, "Closed only at a boundary"),
                Err(FrameError::Truncated) => prop_assert!(cut > 0),
                other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
            }
        }
    }

    #[test]
    fn garbage_prefixed_streams_never_panic(
        garbage in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        // an arbitrary byte stream read as a frame must produce a typed
        // result: a frame (whose decode may then fail), Closed, Truncated
        // or TooLarge — anything but a panic or an absurd allocation
        match read_frame(&mut garbage.as_slice()) {
            Ok(payload) => { let _ = Message::decode(Bytes::from(payload)); }
            Err(FrameError::Closed | FrameError::Truncated | FrameError::TooLarge(_)) => {}
            Err(e) => prop_assert!(false, "in-memory read gave io error {:?}", e),
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_before_allocation(
        extra in 1u32..1024,
        junk in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let len = MAX_FRAME_BYTES + extra;
        let mut wire = len.to_le_bytes().to_vec();
        wire.extend_from_slice(&junk);
        prop_assert_eq!(
            read_frame(&mut wire.as_slice()).unwrap_err(),
            FrameError::TooLarge(len)
        );
    }

    #[test]
    fn envelopes_roundtrip(
        from in 0usize..1024,
        seq in any::<u64>(),
        outcome in arb_outcome(),
    ) {
        let env = Envelope { from, seq, outcome };
        let frame = env.encode();
        prop_assert_eq!(frame.len(), env.encoded_size());
        let back = Envelope::decode(frame).expect("envelope decode");
        prop_assert_eq!(back, env);
    }

    #[test]
    fn truncated_envelopes_yield_typed_errors(
        from in 0usize..1024,
        seq in any::<u64>(),
        outcome in arb_outcome(),
        frac in 0.0f64..1.0,
    ) {
        let frame = Envelope { from, seq, outcome }.encode();
        let cut = ((frame.len() as f64) * frac) as usize;
        if cut < frame.len() {
            prop_assert!(Envelope::decode(frame.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn lossy_channel_is_seed_deterministic(
        m in arb_message(),
        stream in any::<u64>(),
        seed in any::<u64>(),
        loss in 0.0f64..1.0,
    ) {
        let ch = FaultyChannel::lossy(loss, seed, 3, 0.5);
        let a = ch.transmit(&m, stream);
        let b = ch.transmit(&m, stream);
        match (a, b) {
            (Ok(da), Ok(db)) => {
                prop_assert_eq!(da.attempts, db.attempts);
                prop_assert_eq!(da.retries, db.retries);
                prop_assert_eq!(da.backoff_s, db.backoff_s);
                prop_assert_eq!(da.message, db.message);
                // the delivered message is the one we sent, and every
                // attempt re-sent the full frame
                prop_assert_eq!(&da.message, &m);
                prop_assert_eq!(da.bytes_sent, da.attempts as usize * m.wire_size());
            }
            (
                Err(ChannelError::RetryBudgetExhausted { attempts: aa, backoff_s: ba }),
                Err(ChannelError::RetryBudgetExhausted { attempts: ab, backoff_s: bb }),
            ) => {
                prop_assert_eq!(aa, ab);
                prop_assert_eq!(ba, bb);
                prop_assert_eq!(aa, 4, "budget of 3 retries = 4 attempts");
            }
            (a, b) => prop_assert!(false, "same inputs diverged: {:?} vs {:?}", a, b),
        }
    }
}

// --- model-update codec properties -------------------------------------
//
// The codecs live in `haccs-codec`, but their payloads travel inside
// `Message::ModelUpdateEnc` frames, so the wire suite owns the adversarial
// round-trip properties: lossless identity, bounded int8 error, and typed
// errors (never panics) on truncated or corrupted payloads.

use haccs_codec::{CodecKind, Identity as IdCodec, Int8Quant, UpdateCodec};

fn arb_codec_kind() -> impl Strategy<Value = CodecKind> {
    prop_oneof![
        Just(CodecKind::Identity),
        Just(CodecKind::Int8),
        (1u32..=1000).prop_map(|p| CodecKind::TopK { keep_permille: p }),
    ]
}

proptest! {
    /// Identity is a bit-pattern passthrough: every `u32` bit pattern —
    /// NaNs, infinities, subnormals — survives encode→decode exactly.
    #[test]
    fn identity_codec_roundtrip_is_bit_exact(
        bits in proptest::collection::vec(any::<u32>(), 0..256),
    ) {
        let params: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let reference = vec![0.0f32; params.len()];
        let enc = IdCodec.encode(&params, &reference, None);
        prop_assert_eq!(enc.len(), IdCodec.encoded_len(params.len()));
        let dec = IdCodec.decode(&enc, &reference).unwrap();
        prop_assert_eq!(dec.len(), params.len());
        for (a, b) in dec.iter().zip(params.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Int8 round-trips every finite value to within half a quantization
    /// step of its block (scale = blockwise max|x| / 127).
    #[test]
    fn int8_codec_error_is_within_the_quantization_bound(
        params in proptest::collection::vec(-100.0f32..100.0, 1..600),
    ) {
        let reference = vec![0.0f32; params.len()];
        let enc = Int8Quant.encode(&params, &reference, None);
        prop_assert_eq!(enc.len(), Int8Quant.encoded_len(params.len()));
        let dec = Int8Quant.decode(&enc, &reference).unwrap();
        for (block, out) in params.chunks(Int8Quant::BLOCK).zip(dec.chunks(Int8Quant::BLOCK)) {
            let amax = block.iter().fold(0f32, |m, &x| m.max(x.abs()));
            let bound = Int8Quant::max_abs_error(amax / 127.0) + 1e-5 * amax.max(1.0);
            for (a, b) in block.iter().zip(out.iter()) {
                prop_assert!((a - b).abs() <= bound, "{} vs {} exceeds {}", a, b, bound);
            }
        }
    }

    /// Top-k decode touches at most k coordinates; the rest are the
    /// shared reference, bit for bit. The payload length is the exact
    /// `encoded_len` the latency model charges.
    #[test]
    fn topk_codec_perturbs_at_most_k_coordinates(
        params in proptest::collection::vec(-10.0f32..10.0, 1..300),
        keep_permille in 1u32..=1000,
    ) {
        let kind = CodecKind::TopK { keep_permille };
        let codec = kind.build();
        let reference = vec![0.5f32; params.len()];
        let enc = codec.encode(&params, &reference, None);
        prop_assert_eq!(enc.len(), codec.encoded_len(params.len()));
        let dec = codec.decode(&enc, &reference).unwrap();
        let changed = dec
            .iter()
            .zip(reference.iter())
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        let k = kind.encoded_len(params.len()) - haccs_codec::OVERHEAD_BYTES;
        prop_assert!(changed <= k / 8, "{} coords changed, k = {}", changed, k / 8);
    }

    /// Truncating a valid payload anywhere yields a typed error from
    /// every decoder — never a panic, never silent garbage.
    #[test]
    fn truncated_codec_payloads_return_typed_errors(
        kind in arb_codec_kind(),
        params in proptest::collection::vec(-10.0f32..10.0, 1..128),
        frac in 0.0f64..1.0,
    ) {
        let codec = kind.build();
        let reference = vec![0.0f32; params.len()];
        let mut residual = vec![0.0f32; params.len()];
        let enc = if codec.stateful() {
            codec.encode(&params, &reference, Some(&mut residual))
        } else {
            codec.encode(&params, &reference, None)
        };
        let cut = ((enc.len() as f64) * frac) as usize;
        if cut < enc.len() {
            prop_assert!(codec.decode(&enc[..cut], &reference).is_err());
        }
    }

    /// Single-byte corruption anywhere in the payload is always caught
    /// (the FNV-1a trailer covers header and body; flipping the trailer
    /// itself breaks the comparison).
    #[test]
    fn corrupted_codec_payloads_return_typed_errors(
        kind in arb_codec_kind(),
        params in proptest::collection::vec(-10.0f32..10.0, 1..128),
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let codec = kind.build();
        let reference = vec![0.0f32; params.len()];
        let mut residual = vec![0.0f32; params.len()];
        let mut enc = if codec.stateful() {
            codec.encode(&params, &reference, Some(&mut residual))
        } else {
            codec.encode(&params, &reference, None)
        };
        let pos = ((enc.len() as f64) * pos_frac) as usize % enc.len();
        enc[pos] ^= mask;
        prop_assert!(codec.decode(&enc, &reference).is_err());
    }

    /// Arbitrary garbage bytes never panic a decoder.
    #[test]
    fn garbage_codec_payloads_never_panic(
        kind in arb_codec_kind(),
        junk in proptest::collection::vec(any::<u8>(), 0..256),
        ref_len in 0usize..64,
    ) {
        let codec = kind.build();
        let reference = vec![0.0f32; ref_len];
        prop_assert!(codec.decode(&junk, &reference).is_err());
    }
}
