//! The [`Transport`] abstraction: *how* a [`Message`] crosses from one
//! party to the other, decoupled from *what* the protocol says.
//!
//! Two built-in implementations:
//!
//! * [`FaultyChannel`] — the deterministic in-process simulation
//!   transport. Its behavior is byte-for-byte the inherent
//!   [`FaultyChannel::transmit`] that every parity/resume test pins; the
//!   trait impl is a zero-cost delegation.
//! * [`TcpTransport`] — a real socket carrying length-prefixed frames
//!   (see [`crate::frame`]), with connection retry under capped
//!   exponential backoff and read/write deadlines. TCP already
//!   retransmits below us, so a successful `transmit` reports one
//!   attempt; fault *simulation* stays the `FaultyChannel`'s job even
//!   when frames physically ride a socket.
//!
//! The module also owns the [`Envelope`] / [`TransmitOutcome`] uplink
//! types (grown in `haccs-coord`, promoted here once envelopes needed to
//! cross process boundaries) together with their wire codec: an envelope
//! is what a coordinator drains from clients regardless of carrier.

use crate::channel::{ChannelError, Delivery, FaultyChannel};
use crate::frame::{
    read_frame_limited, write_frame_limited, FrameError, FRAME_HEADER_BYTES, MAX_FRAME_BYTES,
};
use crate::{DecodeError, Message};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// What one agent transmission looked like from the wire's point of view.
#[derive(Debug, Clone, PartialEq)]
pub enum TransmitOutcome {
    /// The frame (re-)transmitted its way through.
    Delivered {
        /// The encoded frame, ready for [`Message::decode`].
        frame: Bytes,
        /// Retransmissions before success.
        retries: usize,
        /// Total backoff the retries cost, in seconds.
        backoff_s: f64,
        /// Bytes put on the wire across every attempt.
        bytes_sent: usize,
    },
    /// The retry budget ran out; the frame never arrived.
    Lost {
        /// Retransmissions attempted (= max_retries).
        retries: usize,
        /// Total backoff spent before giving up.
        backoff_s: f64,
    },
}

/// One uplink item. Agents emit exactly one envelope per downlink frame
/// that demands a response — even for a lost frame — so the coordinator
/// can always collect a deterministic count without timing heuristics.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Registry id of the sender.
    pub from: usize,
    /// Sender-side monotone sequence number (the event-queue tiebreaker).
    pub seq: u64,
    pub outcome: TransmitOutcome,
}

const ENV_DELIVERED: u8 = 0x01;
const ENV_LOST: u8 = 0x02;

impl Envelope {
    /// Encodes the envelope into a standalone frame (so it can itself be
    /// carried over a stream transport).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_size());
        buf.put_u64_le(self.from as u64);
        buf.put_u64_le(self.seq);
        match &self.outcome {
            TransmitOutcome::Delivered { frame, retries, backoff_s, bytes_sent } => {
                buf.put_u8(ENV_DELIVERED);
                buf.put_u64_le(*retries as u64);
                buf.put_u64_le(backoff_s.to_bits());
                buf.put_u64_le(*bytes_sent as u64);
                buf.put_u32_le(frame.len() as u32);
                buf.put_slice(frame);
            }
            TransmitOutcome::Lost { retries, backoff_s } => {
                buf.put_u8(ENV_LOST);
                buf.put_u64_le(*retries as u64);
                buf.put_u64_le(backoff_s.to_bits());
            }
        }
        buf.freeze()
    }

    /// Exact encoded size in bytes (equals `encode().len()`).
    pub fn encoded_size(&self) -> usize {
        8 + 8
            + match &self.outcome {
                TransmitOutcome::Delivered { frame, .. } => 1 + 8 + 8 + 8 + 4 + frame.len(),
                TransmitOutcome::Lost { .. } => 1 + 8 + 8,
            }
    }

    /// Decodes one frame produced by [`Envelope::encode`].
    pub fn decode(mut buf: Bytes) -> Result<Envelope, DecodeError> {
        if buf.remaining() < 17 {
            return Err(DecodeError::Truncated);
        }
        let from = buf.get_u64_le() as usize;
        let seq = buf.get_u64_le();
        let tag = buf.get_u8();
        let outcome = match tag {
            ENV_DELIVERED => {
                if buf.remaining() < 28 {
                    return Err(DecodeError::Truncated);
                }
                let retries = buf.get_u64_le() as usize;
                let backoff_s = f64::from_bits(buf.get_u64_le());
                let bytes_sent = buf.get_u64_le() as usize;
                let len = buf.get_u32_le() as u64;
                if len > crate::MAX_LEN {
                    return Err(DecodeError::LengthOutOfBounds(len));
                }
                if (buf.remaining() as u64) < len {
                    return Err(DecodeError::Truncated);
                }
                let frame = Bytes::from(buf.copy_bytes(len as usize).to_vec());
                TransmitOutcome::Delivered { frame, retries, backoff_s, bytes_sent }
            }
            ENV_LOST => {
                if buf.remaining() < 16 {
                    return Err(DecodeError::Truncated);
                }
                let retries = buf.get_u64_le() as usize;
                let backoff_s = f64::from_bits(buf.get_u64_le());
                TransmitOutcome::Lost { retries, backoff_s }
            }
            other => return Err(DecodeError::UnknownTag(other)),
        };
        Ok(Envelope { from, seq, outcome })
    }
}

/// Errors a [`Transport`] can produce. The simulation channel's
/// [`ChannelError`] is deliberately embedded unchanged — code matching on
/// it keeps compiling, and socket-specific failures get their own
/// variants instead of overloading it.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The simulated channel exhausted its retry budget.
    Channel(ChannelError),
    /// Stream framing failed (torn connection, oversized frame, I/O).
    Frame(FrameError),
    /// A received frame did not decode as a [`Message`].
    Decode(DecodeError),
    /// Could not establish a connection within the retry budget.
    ConnectFailed {
        /// Connection attempts made.
        attempts: u32,
        /// Kind of the last connect error.
        last: std::io::ErrorKind,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Channel(e) => write!(f, "channel: {e}"),
            TransportError::Frame(e) => write!(f, "frame: {e}"),
            TransportError::Decode(e) => write!(f, "decode: {e}"),
            TransportError::ConnectFailed { attempts, last } => {
                write!(f, "connect failed after {attempts} attempts (last: {last:?})")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<ChannelError> for TransportError {
    fn from(e: ChannelError) -> Self {
        TransportError::Channel(e)
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

impl From<DecodeError> for TransportError {
    fn from(e: DecodeError) -> Self {
        TransportError::Decode(e)
    }
}

/// A pluggable message carrier. `stream_id` identifies the logical
/// message stream (e.g. a hash of `(client, round)`); deterministic
/// transports derive fault traces from it, physical transports may ignore
/// it.
pub trait Transport: Send {
    /// Sends `msg`, reporting delivery statistics or a typed failure.
    fn transmit(&self, msg: &Message, stream_id: u64) -> Result<Delivery, TransportError>;

    /// A short label for logs/metrics (`"inproc"`, `"tcp"`, ...).
    fn kind(&self) -> &'static str;
}

impl Transport for FaultyChannel {
    fn transmit(&self, msg: &Message, stream_id: u64) -> Result<Delivery, TransportError> {
        // the inherent method IS the behavior every parity test pins;
        // the trait adds nothing but the error wrapper
        FaultyChannel::transmit(self, msg, stream_id).map_err(TransportError::Channel)
    }

    fn kind(&self) -> &'static str {
        "inproc"
    }
}

/// Connection and deadline policy for [`TcpTransport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpConfig {
    /// Re-dials allowed after the first connect attempt.
    pub connect_retries: u32,
    /// First inter-attempt backoff; doubles per retry.
    pub connect_backoff: Duration,
    /// Backoff ceiling — the doubling never exceeds this.
    pub connect_backoff_cap: Duration,
    /// Socket read deadline (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Socket write deadline (`None` = block forever).
    pub write_timeout: Option<Duration>,
    /// Per-connection frame payload bound. Defaults to the crate-wide
    /// [`MAX_FRAME_BYTES`]; deployments moving small compressed updates
    /// can tighten it so a garbage length prefix is rejected earlier.
    pub max_frame_bytes: u32,
    /// Shared-secret peer authentication. When set, a dialing client
    /// sends this digest as its very first frame and the listener
    /// drops any connection whose preamble does not match (compared in
    /// constant time). `None` disables the preamble entirely.
    pub auth_token: Option<[u8; 32]>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_retries: 5,
            connect_backoff: Duration::from_millis(50),
            connect_backoff_cap: Duration::from_secs(2),
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(30)),
            max_frame_bytes: MAX_FRAME_BYTES,
            auth_token: None,
        }
    }
}

/// Digests a shared-secret token string into the 32-byte preamble
/// stored in [`TcpConfig::auth_token`]. Both ends derive it from the
/// same `--auth-token` flag, so the cleartext secret never crosses the
/// wire. This is a salted FNV construction — enough to keep strangers
/// and misconfigured peers off a listener, **not** a cryptographic MAC;
/// see the deployment notes in the README before leaving localhost.
pub fn auth_token_digest(token: &str) -> [u8; 32] {
    fn fnv1a64_salted(salt: u64, bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // one finalization round so related salts do not yield related
        // lanes (splitmix64 mixer)
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }
    let mut out = [0u8; 32];
    for lane in 0..4 {
        let h = fnv1a64_salted(0x48AC_C5AE_0000_0000 | lane as u64, token.as_bytes());
        out[lane * 8..(lane + 1) * 8].copy_from_slice(&h.to_le_bytes());
    }
    out
}

/// Constant-time equality for authentication preambles: every byte is
/// inspected regardless of where the first mismatch sits, so response
/// timing leaks nothing about how much of a guess was right.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (&x, &y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// A framed, message-oriented wrapper over one [`TcpStream`]. Send and
/// receive take `&self` (the stream sits behind a mutex) so a transport
/// can be shared by reference; full-duplex pump loops should instead
/// split via [`TcpTransport::try_clone_stream`] and run the frame
/// functions directly on each half.
#[derive(Debug)]
pub struct TcpTransport {
    stream: Mutex<TcpStream>,
    peer: SocketAddr,
    max_frame_bytes: u32,
}

impl TcpTransport {
    /// Dials `addr`, retrying with capped exponential backoff per `cfg`,
    /// then applies the read/write deadlines.
    pub fn connect(addr: impl ToSocketAddrs, cfg: &TcpConfig) -> Result<Self, TransportError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| TransportError::ConnectFailed { attempts: 0, last: e.kind() })?
            .collect();
        let mut last = std::io::ErrorKind::AddrNotAvailable;
        let mut backoff = cfg.connect_backoff;
        for attempt in 0..=cfg.connect_retries {
            for &a in &addrs {
                match TcpStream::connect(a) {
                    Ok(stream) => return Self::from_stream(stream, cfg),
                    Err(e) => last = e.kind(),
                }
            }
            if attempt < cfg.connect_retries {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(cfg.connect_backoff_cap);
            }
        }
        Err(TransportError::ConnectFailed { attempts: cfg.connect_retries + 1, last })
    }

    /// Wraps an already-connected stream (e.g. from an acceptor), applying
    /// `cfg`'s deadlines.
    pub fn from_stream(stream: TcpStream, cfg: &TcpConfig) -> Result<Self, TransportError> {
        stream.set_read_timeout(cfg.read_timeout).map_err(FrameError::from)?;
        stream.set_write_timeout(cfg.write_timeout).map_err(FrameError::from)?;
        stream.set_nodelay(true).map_err(FrameError::from)?;
        let peer = stream.peer_addr().map_err(FrameError::from)?;
        Ok(TcpTransport { stream: Mutex::new(stream), peer, max_frame_bytes: cfg.max_frame_bytes })
    }

    /// The remote endpoint.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// A second handle on the underlying stream, for split-duplex pumps.
    pub fn try_clone_stream(&self) -> Result<TcpStream, TransportError> {
        let guard = self.stream.lock().expect("tcp stream lock poisoned");
        guard.try_clone().map_err(|e| TransportError::Frame(FrameError::from(e)))
    }

    /// Sends one framed message; returns bytes put on the wire (header
    /// included).
    pub fn send(&self, msg: &Message) -> Result<usize, TransportError> {
        let frame = msg.encode();
        let mut guard = self.stream.lock().expect("tcp stream lock poisoned");
        write_frame_limited(&mut *guard, &frame, self.max_frame_bytes)?;
        Ok(FRAME_HEADER_BYTES + frame.len())
    }

    /// Receives one framed message (blocking up to the read deadline).
    pub fn recv(&self) -> Result<Message, TransportError> {
        let mut guard = self.stream.lock().expect("tcp stream lock poisoned");
        let payload = read_frame_limited(&mut *guard, self.max_frame_bytes)?;
        Ok(Message::decode(Bytes::from(payload))?)
    }

    /// Half-closes the write side, letting the peer observe a clean
    /// frame-boundary EOF while reads stay open.
    pub fn shutdown_write(&self) -> Result<(), TransportError> {
        let guard = self.stream.lock().expect("tcp stream lock poisoned");
        match guard.shutdown(Shutdown::Write) {
            Ok(()) => Ok(()),
            // already gone — shutdown is about signalling, not liveness
            Err(e) if e.kind() == std::io::ErrorKind::NotConnected => Ok(()),
            Err(e) => Err(TransportError::Frame(FrameError::from(e))),
        }
    }
}

impl Transport for TcpTransport {
    fn transmit(&self, msg: &Message, _stream_id: u64) -> Result<Delivery, TransportError> {
        // TCP retransmits below the frame layer, so a successful write is
        // one attempt with zero simulated backoff by construction
        let bytes_sent = self.send(msg)?;
        Ok(Delivery { message: msg.clone(), attempts: 1, retries: 0, backoff_s: 0.0, bytes_sent })
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn update() -> Message {
        Message::ModelUpdate { round: 4, params: vec![0.25, -1.5], loss: 0.42, n_train: 17 }
    }

    #[test]
    fn envelope_roundtrips_both_outcomes() {
        let delivered = Envelope {
            from: 12,
            seq: 99,
            outcome: TransmitOutcome::Delivered {
                frame: update().encode(),
                retries: 2,
                backoff_s: 1.5,
                bytes_sent: 3 * update().wire_size(),
            },
        };
        let lost = Envelope {
            from: 3,
            seq: 7,
            outcome: TransmitOutcome::Lost { retries: 4, backoff_s: 7.75 },
        };
        for env in [delivered, lost] {
            let frame = env.encode();
            assert_eq!(frame.len(), env.encoded_size());
            assert_eq!(Envelope::decode(frame).unwrap(), env);
        }
    }

    #[test]
    fn envelope_decode_rejects_garbage() {
        assert_eq!(Envelope::decode(Bytes::from_static(&[1, 2, 3])), Err(DecodeError::Truncated));
        let mut buf = BytesMut::new();
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        buf.put_u8(0x77);
        assert_eq!(Envelope::decode(buf.freeze()), Err(DecodeError::UnknownTag(0x77)));
    }

    #[test]
    fn faulty_channel_trait_matches_inherent() {
        let ch = FaultyChannel::lossy(0.6, 11, 8, 0.25);
        for stream in 0..32u64 {
            let via_trait = Transport::transmit(&ch, &update(), stream);
            let inherent = FaultyChannel::transmit(&ch, &update(), stream);
            match (via_trait, inherent) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(TransportError::Channel(a)), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("diverged on stream {stream}: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(Transport::kind(&ch), "inproc");
    }

    #[test]
    fn tcp_transport_roundtrips_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let t = TcpTransport::from_stream(stream, &TcpConfig::default()).unwrap();
            let msg = t.recv().unwrap();
            t.send(&msg).unwrap();
        });
        let t = TcpTransport::connect(addr, &TcpConfig::default()).unwrap();
        let d = Transport::transmit(&t, &update(), 0).unwrap();
        assert_eq!(d.attempts, 1);
        assert_eq!(d.bytes_sent, FRAME_HEADER_BYTES + update().wire_size());
        assert_eq!(t.recv().unwrap(), update());
        assert_eq!(Transport::kind(&t), "tcp");
        echo.join().unwrap();
    }

    #[test]
    fn configured_frame_bound_rejects_big_messages() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tight = TcpConfig { max_frame_bytes: 32, ..TcpConfig::default() };
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let t = TcpTransport::from_stream(stream, &TcpConfig::default()).unwrap();
            // the big frame never arrives; the small one does
            t.recv()
        });
        let t = TcpTransport::connect(addr, &tight).unwrap();
        let big = Message::ModelPush { round: 0, params: vec![0.0; 100] };
        assert!(matches!(t.send(&big), Err(TransportError::Frame(FrameError::TooLarge(_)))));
        let small = Message::Schedule { round: 1, client_nonce: 2 };
        t.send(&small).unwrap();
        assert_eq!(server.join().unwrap().unwrap(), small);
    }

    #[test]
    fn auth_digest_is_stable_and_comparisons_are_exact() {
        let a = auth_token_digest("concave-hull");
        let b = auth_token_digest("concave-hull");
        let c = auth_token_digest("concave-hulk");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(constant_time_eq(&a, &b));
        assert!(!constant_time_eq(&a, &c));
        assert!(!constant_time_eq(&a, &a[..16]));
        // the four lanes must not repeat each other
        assert_ne!(a[0..8], a[8..16]);
    }

    #[test]
    fn connect_retries_then_fails_typed() {
        // a port nothing listens on: bind, learn the addr, drop the socket
        let addr = { TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap() };
        let cfg = TcpConfig {
            connect_retries: 2,
            connect_backoff: Duration::from_millis(1),
            connect_backoff_cap: Duration::from_millis(4),
            ..TcpConfig::default()
        };
        match TcpTransport::connect(addr, &cfg) {
            Err(TransportError::ConnectFailed { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected ConnectFailed, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_write_yields_closed_on_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let t = TcpTransport::from_stream(stream, &TcpConfig::default()).unwrap();
            t.recv()
        });
        let t = TcpTransport::connect(addr, &TcpConfig::default()).unwrap();
        t.shutdown_write().unwrap();
        assert_eq!(peer.join().unwrap(), Err(TransportError::Frame(FrameError::Closed)));
    }
}
