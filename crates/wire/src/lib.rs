//! # haccs-wire
//!
//! The client ↔ server message layer of the HACCS protocol (Fig. 2 of the
//! paper — their implementation uses gRPC + PySyft; this is a compact
//! self-contained binary codec with the same message vocabulary):
//!
//! 1. `Join` — a client announces itself with its data summary and
//!    resource estimate (§IV-F: "provides some basic information,
//!    including a summary of its local data ... as well as estimates of
//!    its available computational resources"),
//! 2. `Schedule` — the server tells a client it is selected for a round,
//! 3. `ModelPush` — global parameters down to a participant,
//! 4. `ModelUpdate` — locally-trained parameters (plus loss and sample
//!    count, the FedAvg weight) back up,
//! 5. `SummaryUpdate` — a refreshed data summary (the §IV-C drift path).
//!
//! Every message round-trips through [`Message::encode`] /
//! [`Message::decode`] and reports its exact [`Message::wire_size`] —
//! which is what lets experiments account communication volume per
//! strategy instead of hand-waving Θ(·) bounds.
//!
//! Format: 1-byte message tag, then fields in order; integers are
//! little-endian `u32`/`u64`, floats are IEEE-754 `f32` bits, vectors are
//! length-prefixed (`u32` count). No self-description — both ends share
//! this crate — which keeps the encoding within a few bytes of the raw
//! payload.
//!
//! The [`channel`] module wraps the codec in a seeded lossy transport
//! ([`FaultyChannel`]) with retransmission, exponential backoff and a
//! per-message retry budget — the wire half of the fault-injection story
//! (`haccs_sysmodel::faults` holds the client half).

use bytes::{Buf, BufMut, Bytes, BytesMut};

pub mod channel;
pub mod cohort;
pub mod frame;
pub mod transport;

pub use channel::{ChannelError, Delivery, FaultyChannel};
pub use cohort::{group_by_cohort, CohortDispatch};
pub use frame::{
    read_frame, read_frame_limited, write_frame, write_frame_limited, FrameError,
    FRAME_HEADER_BYTES, MAX_FRAME_BYTES,
};
pub use transport::{
    auth_token_digest, constant_time_eq, Envelope, TcpConfig, TcpTransport, TransmitOutcome,
    Transport, TransportError,
};

/// A data summary on the wire: one or more histograms plus an optional
/// prevalence vector (P(y) sends one histogram; P(X|y) sends one per
/// class plus prevalences).
#[derive(Debug, Clone, PartialEq)]
pub struct WireSummary {
    /// Normalized histogram bins, one vector per histogram.
    pub histograms: Vec<Vec<f32>>,
    /// Per-class prevalence (empty for P(y)).
    pub prevalence: Vec<f32>,
}

/// The §IV-F resource estimate a client reports at join time.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceEstimate {
    /// Compute-delay multiplier estimate (1.0 = fast tier).
    pub compute_multiplier: f32,
    /// Estimated uplink/downlink bandwidth in Mbps.
    pub bandwidth_mbps: f32,
    /// Estimated round-trip time in milliseconds.
    pub rtt_ms: f32,
    /// Local training examples available.
    pub n_train: u32,
}

/// All protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server, once at join (step 1 of Fig. 2).
    Join {
        /// Client-chosen nonce the server echoes in scheduling messages.
        client_nonce: u64,
        /// Privacy-treated data summary.
        summary: WireSummary,
        /// Resource estimate for latency prediction.
        resources: ResourceEstimate,
    },
    /// Server → client: you are selected for `round`.
    Schedule {
        /// Round number.
        round: u64,
        /// Echoed client nonce.
        client_nonce: u64,
    },
    /// Server → client: global model parameters (step 3 of Fig. 2).
    ModelPush {
        /// Round number.
        round: u64,
        /// Flat parameter vector.
        params: Vec<f32>,
    },
    /// Client → server: trained parameters + FedAvg metadata (step 4).
    ModelUpdate {
        /// Round number.
        round: u64,
        /// Flat parameter vector after local training.
        params: Vec<f32>,
        /// Mean local training loss (the scheduling signal).
        loss: f32,
        /// Local sample count (the FedAvg weight).
        n_train: u32,
    },
    /// Client → server: refreshed summary after local data drift (§IV-C).
    SummaryUpdate {
        /// Client nonce.
        client_nonce: u64,
        /// The new summary.
        summary: WireSummary,
    },
    /// Liveness probe/ack. The server probes with `client_nonce == 0` and
    /// `last_loss == 0.0`; a client acks with its nonce and most recent
    /// local loss (a free telemetry refresh for loss-driven selectors).
    Heartbeat {
        /// Client nonce (0 in server → client probes).
        client_nonce: u64,
        /// Round the probe/ack belongs to.
        round: u64,
        /// Most recent local training loss (0.0 in probes / before the
        /// first round).
        last_loss: f32,
    },
    /// Client → server: orderly departure. The registry marks the client
    /// `Left` immediately instead of waiting out the suspicion window.
    Leave {
        /// Client nonce.
        client_nonce: u64,
        /// Round during which the client departed.
        round: u64,
    },
    /// Client → server: a *compressed* trained update. `codec` is the
    /// `haccs_codec::CodecKind` tag that produced `payload`; the server
    /// decodes it against the global model it pushed this round. The
    /// uncompressed `Identity` path keeps sending plain
    /// [`Message::ModelUpdate`] frames, so this tag only appears when a
    /// codec is actually shrinking the uplink.
    ModelUpdateEnc {
        /// Round number.
        round: u64,
        /// Codec kind tag (see `haccs_codec::CodecKind::tag`).
        codec: u8,
        /// The codec's versioned, checksummed payload.
        payload: Vec<u8>,
        /// Mean local training loss (the scheduling signal).
        loss: f32,
        /// Local sample count (the FedAvg weight).
        n_train: u32,
    },
    /// Server → client, after a crash-resume: the restored round cursor
    /// and the loss this client last reported before the snapshot. A
    /// remote client that survived the coordinator outage echoes
    /// `last_loss` in heartbeat acks until it next trains — exactly what
    /// an uninterrupted agent would have reported.
    ResumeSync {
        /// First round the restored coordinator will run.
        round: u64,
        /// The client's pre-snapshot reported loss.
        last_loss: f32,
    },
}

/// Errors produced by [`Message::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer ended before the message was complete.
    Truncated,
    /// Unknown message tag byte.
    UnknownTag(u8),
    /// A length prefix exceeded the sanity bound.
    LengthOutOfBounds(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t:#x}"),
            DecodeError::LengthOutOfBounds(n) => write!(f, "length {n} out of bounds"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Upper bound on any length prefix — a corrupted length must not cause a
/// multi-gigabyte allocation.
const MAX_LEN: u64 = 64 * 1024 * 1024;

const TAG_JOIN: u8 = 0x01;
const TAG_SCHEDULE: u8 = 0x02;
const TAG_MODEL_PUSH: u8 = 0x03;
const TAG_MODEL_UPDATE: u8 = 0x04;
const TAG_SUMMARY_UPDATE: u8 = 0x05;
const TAG_HEARTBEAT: u8 = 0x06;
const TAG_LEAVE: u8 = 0x07;
const TAG_RESUME_SYNC: u8 = 0x08;
const TAG_MODEL_UPDATE_ENC: u8 = 0x09;

fn put_f32s(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_f32_le(x);
    }
}

fn get_f32s(buf: &mut Bytes) -> Result<Vec<f32>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32_le() as u64;
    if n > MAX_LEN {
        return Err(DecodeError::LengthOutOfBounds(n));
    }
    if (buf.remaining() as u64) < n * 4 {
        return Err(DecodeError::Truncated);
    }
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

fn put_bytes(buf: &mut BytesMut, v: &[u8]) {
    buf.put_u32_le(v.len() as u32);
    buf.put_slice(v);
}

fn get_bytes(buf: &mut Bytes) -> Result<Vec<u8>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32_le() as u64;
    if n > MAX_LEN {
        return Err(DecodeError::LengthOutOfBounds(n));
    }
    if (buf.remaining() as u64) < n {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.copy_bytes(n as usize).to_vec())
}

fn put_summary(buf: &mut BytesMut, s: &WireSummary) {
    buf.put_u32_le(s.histograms.len() as u32);
    for h in &s.histograms {
        put_f32s(buf, h);
    }
    put_f32s(buf, &s.prevalence);
}

fn get_summary(buf: &mut Bytes) -> Result<WireSummary, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32_le() as u64;
    if n > MAX_LEN {
        return Err(DecodeError::LengthOutOfBounds(n));
    }
    let histograms = (0..n).map(|_| get_f32s(buf)).collect::<Result<_, _>>()?;
    let prevalence = get_f32s(buf)?;
    Ok(WireSummary { histograms, prevalence })
}

impl Message {
    /// Encodes the message into a standalone frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        match self {
            Message::Join { client_nonce, summary, resources } => {
                buf.put_u8(TAG_JOIN);
                buf.put_u64_le(*client_nonce);
                put_summary(&mut buf, summary);
                buf.put_f32_le(resources.compute_multiplier);
                buf.put_f32_le(resources.bandwidth_mbps);
                buf.put_f32_le(resources.rtt_ms);
                buf.put_u32_le(resources.n_train);
            }
            Message::Schedule { round, client_nonce } => {
                buf.put_u8(TAG_SCHEDULE);
                buf.put_u64_le(*round);
                buf.put_u64_le(*client_nonce);
            }
            Message::ModelPush { round, params } => {
                buf.put_u8(TAG_MODEL_PUSH);
                buf.put_u64_le(*round);
                put_f32s(&mut buf, params);
            }
            Message::ModelUpdate { round, params, loss, n_train } => {
                buf.put_u8(TAG_MODEL_UPDATE);
                buf.put_u64_le(*round);
                put_f32s(&mut buf, params);
                buf.put_f32_le(*loss);
                buf.put_u32_le(*n_train);
            }
            Message::ModelUpdateEnc { round, codec, payload, loss, n_train } => {
                buf.put_u8(TAG_MODEL_UPDATE_ENC);
                buf.put_u64_le(*round);
                buf.put_u8(*codec);
                put_bytes(&mut buf, payload);
                buf.put_f32_le(*loss);
                buf.put_u32_le(*n_train);
            }
            Message::SummaryUpdate { client_nonce, summary } => {
                buf.put_u8(TAG_SUMMARY_UPDATE);
                buf.put_u64_le(*client_nonce);
                put_summary(&mut buf, summary);
            }
            Message::Heartbeat { client_nonce, round, last_loss } => {
                buf.put_u8(TAG_HEARTBEAT);
                buf.put_u64_le(*client_nonce);
                buf.put_u64_le(*round);
                buf.put_f32_le(*last_loss);
            }
            Message::Leave { client_nonce, round } => {
                buf.put_u8(TAG_LEAVE);
                buf.put_u64_le(*client_nonce);
                buf.put_u64_le(*round);
            }
            Message::ResumeSync { round, last_loss } => {
                buf.put_u8(TAG_RESUME_SYNC);
                buf.put_u64_le(*round);
                buf.put_f32_le(*last_loss);
            }
        }
        buf.freeze()
    }

    /// Decodes one frame produced by [`Message::encode`].
    pub fn decode(mut buf: Bytes) -> Result<Message, DecodeError> {
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let tag = buf.get_u8();
        let need = |buf: &Bytes, n: usize| {
            if buf.remaining() < n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        };
        match tag {
            TAG_JOIN => {
                need(&buf, 8)?;
                let client_nonce = buf.get_u64_le();
                let summary = get_summary(&mut buf)?;
                need(&buf, 16)?;
                let compute_multiplier = buf.get_f32_le();
                let bandwidth_mbps = buf.get_f32_le();
                let rtt_ms = buf.get_f32_le();
                let n_train = buf.get_u32_le();
                Ok(Message::Join {
                    client_nonce,
                    summary,
                    resources: ResourceEstimate {
                        compute_multiplier,
                        bandwidth_mbps,
                        rtt_ms,
                        n_train,
                    },
                })
            }
            TAG_SCHEDULE => {
                need(&buf, 16)?;
                Ok(Message::Schedule { round: buf.get_u64_le(), client_nonce: buf.get_u64_le() })
            }
            TAG_MODEL_PUSH => {
                need(&buf, 8)?;
                let round = buf.get_u64_le();
                let params = get_f32s(&mut buf)?;
                Ok(Message::ModelPush { round, params })
            }
            TAG_MODEL_UPDATE => {
                need(&buf, 8)?;
                let round = buf.get_u64_le();
                let params = get_f32s(&mut buf)?;
                need(&buf, 8)?;
                let loss = buf.get_f32_le();
                let n_train = buf.get_u32_le();
                Ok(Message::ModelUpdate { round, params, loss, n_train })
            }
            TAG_MODEL_UPDATE_ENC => {
                need(&buf, 9)?;
                let round = buf.get_u64_le();
                let codec = buf.get_u8();
                let payload = get_bytes(&mut buf)?;
                need(&buf, 8)?;
                let loss = buf.get_f32_le();
                let n_train = buf.get_u32_le();
                Ok(Message::ModelUpdateEnc { round, codec, payload, loss, n_train })
            }
            TAG_SUMMARY_UPDATE => {
                need(&buf, 8)?;
                let client_nonce = buf.get_u64_le();
                let summary = get_summary(&mut buf)?;
                Ok(Message::SummaryUpdate { client_nonce, summary })
            }
            TAG_HEARTBEAT => {
                need(&buf, 20)?;
                Ok(Message::Heartbeat {
                    client_nonce: buf.get_u64_le(),
                    round: buf.get_u64_le(),
                    last_loss: buf.get_f32_le(),
                })
            }
            TAG_LEAVE => {
                need(&buf, 16)?;
                Ok(Message::Leave { client_nonce: buf.get_u64_le(), round: buf.get_u64_le() })
            }
            TAG_RESUME_SYNC => {
                need(&buf, 12)?;
                Ok(Message::ResumeSync { round: buf.get_u64_le(), last_loss: buf.get_f32_le() })
            }
            other => Err(DecodeError::UnknownTag(other)),
        }
    }

    /// Exact encoded size in bytes (equals `encode().len()`).
    pub fn wire_size(&self) -> usize {
        let summary_size = |s: &WireSummary| -> usize {
            4 + s.histograms.iter().map(|h| 4 + 4 * h.len()).sum::<usize>()
                + 4
                + 4 * s.prevalence.len()
        };
        match self {
            Message::Join { summary, .. } => 1 + 8 + summary_size(summary) + 16,
            Message::Schedule { .. } => 1 + 16,
            Message::ModelPush { params, .. } => 1 + 8 + 4 + 4 * params.len(),
            Message::ModelUpdate { params, .. } => 1 + 8 + 4 + 4 * params.len() + 8,
            Message::ModelUpdateEnc { payload, .. } => 1 + 8 + 1 + 4 + payload.len() + 8,
            Message::SummaryUpdate { summary, .. } => 1 + 8 + summary_size(summary),
            Message::Heartbeat { .. } => 1 + 8 + 8 + 4,
            Message::Leave { .. } => 1 + 8 + 8,
            Message::ResumeSync { .. } => 1 + 8 + 4,
        }
    }
}

/// Bytes of coordinator control traffic charged to **one** scheduled
/// participant per round: its `Schedule` frame plus one heartbeat
/// probe/ack exchange. Model payloads are excluded — they are covered by
/// [`round_bytes`]'s push/update terms.
pub fn control_bytes_per_client() -> usize {
    let schedule = Message::Schedule { round: 0, client_nonce: 0 }.wire_size();
    let hb = Message::Heartbeat { client_nonce: 0, round: 0, last_loss: 0.0 }.wire_size();
    schedule + 2 * hb
}

/// Total bytes a synchronous round moves for `k` participants with a
/// `n_params`-parameter model: one `ModelPush` down and one `ModelUpdate`
/// up per participant, plus per-participant control traffic (`Schedule`
/// and a heartbeat probe/ack pair).
pub fn round_bytes(k: usize, n_params: usize) -> usize {
    let push = Message::ModelPush { round: 0, params: vec![0.0; n_params] }.wire_size();
    let update =
        Message::ModelUpdate { round: 0, params: vec![0.0; n_params], loss: 0.0, n_train: 0 }
            .wire_size();
    k * (push + update + control_bytes_per_client())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> WireSummary {
        WireSummary {
            histograms: vec![vec![0.1, 0.9], vec![0.5, 0.25, 0.25]],
            prevalence: vec![0.7, 0.3],
        }
    }

    #[test]
    fn all_messages_roundtrip() {
        let messages = vec![
            Message::Join {
                client_nonce: 42,
                summary: sample_summary(),
                resources: ResourceEstimate {
                    compute_multiplier: 1.5,
                    bandwidth_mbps: 80.0,
                    rtt_ms: 35.0,
                    n_train: 230,
                },
            },
            Message::Schedule { round: 7, client_nonce: 42 },
            Message::ModelPush { round: 7, params: vec![1.0, -2.0, 3.5] },
            Message::ModelUpdate {
                round: 7,
                params: vec![0.9, -2.1, 3.4],
                loss: 1.23,
                n_train: 230,
            },
            Message::ModelUpdateEnc {
                round: 7,
                codec: 1,
                payload: vec![0xAB; 37],
                loss: 1.23,
                n_train: 230,
            },
            Message::SummaryUpdate { client_nonce: 42, summary: sample_summary() },
            Message::Heartbeat { client_nonce: 42, round: 7, last_loss: 0.88 },
            Message::Leave { client_nonce: 42, round: 7 },
            Message::ResumeSync { round: 7, last_loss: 0.88 },
        ];
        for m in messages {
            let frame = m.encode();
            assert_eq!(frame.len(), m.wire_size(), "declared size must match encoding");
            let back = Message::decode(frame).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let m = Message::ModelPush { round: 1, params: vec![1.0; 10] };
        let frame = m.encode();
        for cut in [0usize, 1, 5, frame.len() - 1] {
            let out = Message::decode(frame.slice(0..cut));
            assert!(matches!(out, Err(DecodeError::Truncated)), "cut at {cut} gave {out:?}");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let frame = Bytes::from_static(&[0xFF, 0, 0, 0]);
        assert_eq!(Message::decode(frame), Err(DecodeError::UnknownTag(0xFF)));
    }

    #[test]
    fn corrupt_length_does_not_allocate() {
        // a ModelPush claiming 4 billion params must be rejected, not OOM
        let mut buf = BytesMut::new();
        buf.put_u8(0x03);
        buf.put_u64_le(0);
        buf.put_u32_le(u32::MAX);
        let out = Message::decode(buf.freeze());
        assert!(matches!(out, Err(DecodeError::LengthOutOfBounds(_))), "{out:?}");
        // same for an encoded update claiming a 4 GiB payload
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_MODEL_UPDATE_ENC);
        buf.put_u64_le(0);
        buf.put_u8(1);
        buf.put_u32_le(u32::MAX);
        let out = Message::decode(buf.freeze());
        assert!(matches!(out, Err(DecodeError::LengthOutOfBounds(_))), "{out:?}");
    }

    #[test]
    fn truncated_encoded_update_errors_cleanly() {
        let m = Message::ModelUpdateEnc {
            round: 3,
            codec: 2,
            payload: vec![7u8; 24],
            loss: 0.5,
            n_train: 11,
        };
        let frame = m.encode();
        for cut in [1usize, 9, 10, 14, frame.len() - 1] {
            let out = Message::decode(frame.slice(0..cut));
            assert!(matches!(out, Err(DecodeError::Truncated)), "cut at {cut} gave {out:?}");
        }
    }

    #[test]
    fn wire_size_reflects_summary_asymmetry() {
        // P(y): 1 histogram of c bins → Θ(c). P(X|y): c histograms of p
        // bins → Θ(c·p). The paper's §IV-A cost analysis, in bytes.
        let py = Message::Join {
            client_nonce: 0,
            summary: WireSummary { histograms: vec![vec![0.1; 10]], prevalence: vec![] },
            resources: ResourceEstimate {
                compute_multiplier: 1.0,
                bandwidth_mbps: 100.0,
                rtt_ms: 20.0,
                n_train: 100,
            },
        };
        let pxy = Message::Join {
            client_nonce: 0,
            summary: WireSummary { histograms: vec![vec![0.1; 16]; 10], prevalence: vec![0.1; 10] },
            resources: ResourceEstimate {
                compute_multiplier: 1.0,
                bandwidth_mbps: 100.0,
                rtt_ms: 20.0,
                n_train: 100,
            },
        };
        assert!(pxy.wire_size() > 10 * py.wire_size() / 2, "Θ(c·p) ≫ Θ(c)");
    }

    #[test]
    fn round_bytes_scales_with_model_and_k() {
        let small = round_bytes(10, 1000);
        let big = round_bytes(10, 100_000);
        assert!(big > 90 * small / 10 * 9 / 10, "bytes ∝ params");
        assert_eq!(round_bytes(20, 1000), 2 * small);
    }

    #[test]
    fn round_bytes_includes_control_traffic() {
        // a zero-parameter model still moves the control frames
        assert_eq!(
            round_bytes(3, 0),
            3 * (control_bytes_per_client()
                + Message::ModelPush { round: 0, params: vec![] }.wire_size()
                + Message::ModelUpdate { round: 0, params: vec![], loss: 0.0, n_train: 0 }
                    .wire_size())
        );
        // control = Schedule + heartbeat probe + heartbeat ack
        let schedule = Message::Schedule { round: 0, client_nonce: 0 }.wire_size();
        let hb = Message::Heartbeat { client_nonce: 0, round: 0, last_loss: 0.0 }.wire_size();
        assert_eq!(control_bytes_per_client(), schedule + 2 * hb);
    }
}
