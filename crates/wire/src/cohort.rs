//! Cohort batching: dispatch one encoded frame to many recipients without
//! re-encoding (or deep-copying) it per client.
//!
//! The sharded coordinator core broadcasts the same frame to large client
//! cohorts — a `ModelPush` to every enrollee, a heartbeat probe to every
//! shard member. Encoding the message per recipient is O(n · frame_bytes)
//! allocations; a [`CohortDispatch`] encodes **once** and fans the cheap
//! [`Bytes`] handle out (`Bytes` is an `Arc`-backed window, so each
//! recipient's copy is a refcount bump). Cohorts are the unit a worker
//! receives on its command channel, so a 100k-client broadcast costs the
//! worker pool `n_workers` channel sends rather than `n_clients`.

use crate::Message;
use bytes::Bytes;

/// One frame addressed to a cohort of clients: the payload encoded once,
/// plus the recipient ids.
#[derive(Debug, Clone)]
pub struct CohortDispatch {
    /// The shared encoded frame. Cloning is O(1) (refcounted).
    pub frame: Bytes,
    /// Recipient client ids, in dispatch order.
    pub targets: Vec<usize>,
}

impl CohortDispatch {
    /// Encodes `msg` once for the given recipients.
    pub fn broadcast(msg: &Message, targets: Vec<usize>) -> Self {
        CohortDispatch { frame: msg.encode(), targets }
    }

    /// Wraps an already-encoded frame.
    pub fn from_frame(frame: Bytes, targets: Vec<usize>) -> Self {
        CohortDispatch { frame, targets }
    }

    /// Number of recipients.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the cohort is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Total bytes this dispatch puts on the (simulated) wire: the frame
    /// is re-sent per recipient even though it is encoded once.
    pub fn wire_bytes(&self) -> usize {
        self.frame.len() * self.targets.len()
    }
}

/// Groups `ids` into per-cohort target lists by a caller-supplied
/// assignment (e.g. `shard_of(id) % n_workers`). Order within each cohort
/// follows the input order, so an id-sorted input yields id-sorted
/// cohorts. Empty cohorts are kept so indexes line up with the worker
/// pool.
pub fn group_by_cohort(
    ids: impl IntoIterator<Item = usize>,
    n_cohorts: usize,
    mut cohort_of: impl FnMut(usize) -> usize,
) -> Vec<Vec<usize>> {
    assert!(n_cohorts >= 1, "need at least one cohort");
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n_cohorts];
    for id in ids {
        let c = cohort_of(id);
        assert!(c < n_cohorts, "cohort {c} out of range for id {id} (n_cohorts {n_cohorts})");
        out[c].push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_encodes_once_and_shares_the_buffer() {
        let msg = Message::Schedule { round: 3, client_nonce: 9 };
        let d = CohortDispatch::broadcast(&msg, vec![1, 4, 7]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.wire_bytes(), msg.wire_size() * 3);
        // every recipient's clone decodes to the original message
        for _ in &d.targets {
            let got = Message::decode(d.frame.clone()).unwrap();
            assert!(matches!(got, Message::Schedule { round: 3, client_nonce: 9 }));
        }
    }

    #[test]
    fn grouping_preserves_input_order_and_keeps_empty_cohorts() {
        let groups = group_by_cohort(0..7, 3, |id| id % 3);
        assert_eq!(groups, vec![vec![0, 3, 6], vec![1, 4], vec![2, 5]]);
        let sparse = group_by_cohort([5usize], 4, |_| 2);
        assert_eq!(sparse.len(), 4);
        assert!(sparse[0].is_empty() && sparse[1].is_empty() && sparse[3].is_empty());
        assert_eq!(sparse[2], [5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cohort_is_rejected() {
        group_by_cohort([1usize], 2, |_| 5);
    }
}
