//! Length-prefixed framing for stream transports.
//!
//! A [`Message`](crate::Message) frame is self-delimiting in memory (the
//! codec knows where every field ends) but a TCP stream has no record
//! boundaries, so socket transports wrap each encoded payload in the
//! classic length-prefix envelope:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload (len bytes) |
//! +----------------+---------------------+
//! ```
//!
//! Rules, enforced by [`read_frame`]:
//!
//! * `len` may not exceed [`MAX_FRAME_BYTES`] — a corrupted or hostile
//!   prefix must be rejected *before* any allocation is sized from it,
//! * a clean EOF **between** frames is a normal closed connection
//!   ([`FrameError::Closed`]), an EOF **inside** a frame is
//!   [`FrameError::Truncated`] — the two are different failures and
//!   callers treat them differently (orderly shutdown vs. torn
//!   connection),
//! * I/O errors surface as [`FrameError::Io`] with the error kind
//!   preserved, so timeouts (`WouldBlock`/`TimedOut` from a socket read
//!   deadline) stay distinguishable from hard resets.

use std::io::{Read, Write};

/// Default upper bound on one frame's payload. Matches the codec's own
/// per-vector sanity bound ([`crate::Message::decode`] rejects anything
/// claiming more): a 64 MiB frame comfortably holds the largest
/// `ModelPush`/`ModelUpdate` this workspace produces, while a garbage
/// length prefix (say `0xFFFF_FFFF`) is rejected without allocating.
/// Transports can tighten or relax the bound per connection via
/// [`read_frame_limited`] / [`write_frame_limited`] (the
/// `TcpConfig::max_frame_bytes` builder field).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Bytes of framing overhead per frame (the `u32` length prefix).
pub const FRAME_HEADER_BYTES: usize = 4;

/// Errors from [`read_frame`] / [`write_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the stream at a frame boundary — orderly shutdown.
    Closed,
    /// The stream ended mid-header or mid-payload — torn connection.
    Truncated,
    /// The length prefix exceeded the connection's frame bound
    /// ([`MAX_FRAME_BYTES`] unless a transport configured its own).
    TooLarge(u32),
    /// An I/O error from the underlying stream (timeouts included).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "stream closed at a frame boundary"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the configured frame bound")
            }
            FrameError::Io(kind) => write!(f, "frame i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e.kind())
    }
}

/// Writes one frame: 4-byte LE length prefix, then the payload, flushed.
/// Payloads longer than [`MAX_FRAME_BYTES`] are rejected up front — the
/// receiver would drop the connection anyway, so never put them on the
/// wire.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    write_frame_limited(w, payload, MAX_FRAME_BYTES)
}

/// [`write_frame`] with a caller-chosen payload bound instead of the
/// default 64 MiB.
pub fn write_frame_limited<W: Write>(
    w: &mut W,
    payload: &[u8],
    max_bytes: u32,
) -> Result<(), FrameError> {
    if payload.len() as u64 > max_bytes as u64 {
        return Err(FrameError::TooLarge(payload.len().min(u32::MAX as usize) as u32));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes. `eof_at_start` distinguishes a clean
/// close (no bytes of this read arrived) from a torn one.
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    eof_at_start: FrameError,
) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 { eof_at_start } else { FrameError::Truncated });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Reads one frame, returning its payload. See the module docs for the
/// EOF/size rules.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    read_frame_limited(r, MAX_FRAME_BYTES)
}

/// [`read_frame`] with a caller-chosen payload bound instead of the
/// default 64 MiB. A length prefix above `max_bytes` is rejected
/// *before* any allocation is sized from it.
pub fn read_frame_limited<R: Read>(r: &mut R, max_bytes: u32) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    read_exact_or(r, &mut header, FrameError::Closed)?;
    let len = u32::from_le_bytes(header);
    if len > max_bytes {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, FrameError::Truncated)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 300]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![7u8; 300]);
        assert_eq!(read_frame(&mut r), Err(FrameError::Closed));
    }

    #[test]
    fn eof_inside_header_is_truncated_not_closed() {
        let mut r = Cursor::new(vec![5u8, 0]);
        assert_eq!(read_frame(&mut r), Err(FrameError::Truncated));
    }

    #[test]
    fn eof_inside_payload_is_truncated() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r), Err(FrameError::Truncated));
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.extend_from_slice(b"garbage");
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r), Err(FrameError::TooLarge(u32::MAX)));
    }

    #[test]
    fn oversized_payload_never_written() {
        struct NullSink;
        impl Write for NullSink {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // don't materialize >64MiB: lie about the length via a zero-page vec
        let huge = vec![0u8; MAX_FRAME_BYTES as usize + 1];
        assert!(matches!(write_frame(&mut NullSink, &huge), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn custom_limit_is_enforced_both_directions() {
        // a frame legal at the default bound is rejected by a tighter one
        let payload = vec![3u8; 100];
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = Cursor::new(buf.clone());
        assert_eq!(read_frame_limited(&mut r, 64), Err(FrameError::TooLarge(100)));
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame_limited(&mut r, 100).unwrap(), payload);
        // and the writer refuses to put it on the wire at all
        let mut out = Vec::new();
        assert_eq!(write_frame_limited(&mut out, &payload, 64), Err(FrameError::TooLarge(100)));
        assert!(out.is_empty(), "nothing written after a rejected frame");
        write_frame_limited(&mut out, &payload, 100).unwrap();
        assert_eq!(out.len(), FRAME_HEADER_BYTES + payload.len());
    }

    #[test]
    fn exact_bound_is_accepted() {
        let payload = vec![1u8; 1024];
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(buf.len(), FRAME_HEADER_BYTES + payload.len());
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), payload);
    }
}
