//! [`FaultyChannel`]: a lossy transport wrapped around
//! [`Message::encode`](crate::Message::encode) /
//! [`Message::decode`](crate::Message::decode), with retransmission,
//! exponential backoff and a per-message retry budget.
//!
//! Each transmission attempt independently either **delivers**, **drops**
//! the frame (nothing arrives; the sender times out and retransmits) or
//! **corrupts** it (a byte is flipped in flight; the receiver rejects the
//! frame and the sender retransmits). Outcomes are derived purely by
//! hashing `(seed, stream_id, attempt)` — like the fault schedule in
//! `haccs_sysmodel::faults`, the channel never consumes caller RNG, so a
//! zero-loss channel leaves a simulation's random stream untouched and the
//! retry trace for a given seed is bit-identical across runs.

use crate::{DecodeError, Message};
use bytes::Bytes;

/// Outcome of one successful [`FaultyChannel::transmit`].
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The decoded message as received (equals the sent message — a
    /// corrupted frame is never surfaced, it forces a retransmission).
    pub message: Message,
    /// Total attempts made (`retries + 1`).
    pub attempts: u32,
    /// Retransmissions after the first attempt.
    pub retries: u32,
    /// Simulated seconds spent in backoff before the delivering attempt.
    pub backoff_s: f64,
    /// Total bytes put on the wire across all attempts.
    pub bytes_sent: usize,
}

/// Transmission failure: the retry budget ran out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelError {
    /// Every attempt up to the budget was dropped or corrupted.
    RetryBudgetExhausted {
        /// Attempts made (budget + 1).
        attempts: u32,
        /// Simulated seconds burned in backoff.
        backoff_s: f64,
    },
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::RetryBudgetExhausted { attempts, backoff_s } => {
                write!(
                    f,
                    "retry budget exhausted after {attempts} attempts ({backoff_s:.2}s backoff)"
                )
            }
        }
    }
}

impl std::error::Error for ChannelError {}

/// A seeded lossy channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultyChannel {
    /// Per-attempt loss probability (drop or corrupt) in `[0, 1]`.
    pub loss_prob: f64,
    /// Seed the per-attempt outcomes derive from.
    pub seed: u64,
    /// Retransmissions allowed after the first attempt.
    pub max_retries: u32,
    /// First backoff interval; doubles per retry (exponential backoff).
    pub base_backoff_s: f64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultyChannel {
    /// A perfect channel (no loss, no retries needed).
    pub fn reliable(seed: u64) -> Self {
        FaultyChannel { loss_prob: 0.0, seed, max_retries: 3, base_backoff_s: 0.5 }
    }

    /// A lossy channel with the given per-attempt loss probability.
    pub fn lossy(loss_prob: f64, seed: u64, max_retries: u32, base_backoff_s: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss_prob), "loss prob must be in [0, 1]");
        assert!(base_backoff_s >= 0.0);
        FaultyChannel { loss_prob, seed, max_retries, base_backoff_s }
    }

    /// The attempt-outcome hash for `(stream_id, attempt)`.
    fn attempt_hash(&self, stream_id: u64, attempt: u32) -> u64 {
        splitmix64(
            self.seed
                ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (attempt as u64 + 1).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        )
    }

    /// Sends `msg` over the channel, retrying dropped/corrupted frames
    /// with exponential backoff until delivery or budget exhaustion.
    /// `stream_id` identifies the logical message stream (e.g. a hash of
    /// `(client, round)`) so concurrent transfers get independent fault
    /// traces.
    pub fn transmit(&self, msg: &Message, stream_id: u64) -> Result<Delivery, ChannelError> {
        let frame = msg.encode();
        let mut backoff_s = 0.0f64;
        let mut bytes_sent = 0usize;
        for attempt in 0..=self.max_retries {
            bytes_sent += frame.len();
            let h = self.attempt_hash(stream_id, attempt);
            let lost = self.loss_prob > 0.0 && unit(h) < self.loss_prob;
            if !lost {
                // receive path: the real decoder runs on every delivery
                let received = Message::decode(frame.clone())
                    .expect("a clean frame from encode() must decode");
                debug_assert_eq!(&received, msg);
                return Ok(Delivery {
                    message: received,
                    attempts: attempt + 1,
                    retries: attempt,
                    backoff_s,
                    bytes_sent,
                });
            }
            // faulted attempt: half the losses are silent drops, half are
            // in-flight corruptions the receiver detects and discards
            let corrupted = h & 1 == 1;
            if corrupted {
                let garbled = corrupt_frame(&frame, h);
                match Message::decode(garbled) {
                    // decode caught the damage directly
                    Err(DecodeError::Truncated)
                    | Err(DecodeError::UnknownTag(_))
                    | Err(DecodeError::LengthOutOfBounds(_)) => {}
                    // decode produced *something* — the flipped byte landed
                    // in payload, which a real stack catches by checksum;
                    // the comparison below stands in for that checksum
                    Ok(received) => debug_assert_ne!(received, *msg, "corruption must be visible"),
                }
            }
            // sender times out and backs off before retransmitting
            backoff_s += self.base_backoff_s * f64::powi(2.0, attempt as i32);
        }
        Err(ChannelError::RetryBudgetExhausted { attempts: self.max_retries + 1, backoff_s })
    }
}

/// Flips one hash-chosen byte of `frame` (never leaves it intact).
fn corrupt_frame(frame: &Bytes, hash: u64) -> Bytes {
    let mut bytes = frame.to_vec();
    if !bytes.is_empty() {
        let pos = (hash >> 8) as usize % bytes.len();
        bytes[pos] ^= 0xFF;
    }
    Bytes::from(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message::ModelUpdate { round: 3, params: vec![1.0, -2.0, 0.5], loss: 0.7, n_train: 40 }
    }

    #[test]
    fn reliable_channel_delivers_first_try() {
        let ch = FaultyChannel::reliable(1);
        let d = ch.transmit(&msg(), 9).unwrap();
        assert_eq!(d.message, msg());
        assert_eq!(d.attempts, 1);
        assert_eq!(d.retries, 0);
        assert_eq!(d.backoff_s, 0.0);
        assert_eq!(d.bytes_sent, msg().wire_size());
    }

    #[test]
    fn retries_are_seed_deterministic() {
        let ch = FaultyChannel::lossy(0.6, 11, 8, 0.25);
        for stream in 0..50u64 {
            assert_eq!(ch.transmit(&msg(), stream), ch.transmit(&msg(), stream));
        }
    }

    #[test]
    fn lossy_channel_eventually_retries() {
        let ch = FaultyChannel::lossy(0.5, 2, 16, 0.25);
        let retried = (0..40u64).filter_map(|s| ch.transmit(&msg(), s).ok()).any(|d| d.retries > 0);
        assert!(retried, "at 50% loss some stream must need a retry");
    }

    #[test]
    fn backoff_grows_exponentially() {
        let ch = FaultyChannel::lossy(0.7, 5, 10, 1.0);
        // find a delivery that needed >= 2 retries and check its backoff
        // equals 1 + 2 + ... + 2^(retries-1)
        let d = (0..200u64)
            .filter_map(|s| ch.transmit(&msg(), s).ok())
            .find(|d| d.retries >= 2)
            .expect("some stream retries twice at 70% loss");
        let expected: f64 = (0..d.retries).map(|a| f64::powi(2.0, a as i32)).sum();
        assert!((d.backoff_s - expected).abs() < 1e-9, "{} vs {expected}", d.backoff_s);
        assert_eq!(d.bytes_sent, msg().wire_size() * d.attempts as usize);
    }

    #[test]
    fn certain_loss_exhausts_budget() {
        let ch = FaultyChannel::lossy(1.0, 0, 3, 0.5);
        let err = ch.transmit(&msg(), 1).unwrap_err();
        let ChannelError::RetryBudgetExhausted { attempts, backoff_s } = err;
        assert_eq!(attempts, 4);
        // 0.5 + 1 + 2 + 4
        assert!((backoff_s - 7.5).abs() < 1e-9);
    }

    #[test]
    fn corrupt_frame_always_differs() {
        let frame = msg().encode();
        for h in 0..64u64 {
            assert_ne!(corrupt_frame(&frame, h), frame);
        }
    }

    #[test]
    fn loss_rate_tracks_probability() {
        // single-attempt channels: delivery rate ≈ 1 - loss_prob
        let ch = FaultyChannel { loss_prob: 0.3, seed: 21, max_retries: 0, base_backoff_s: 0.0 };
        let n = 5_000u64;
        let ok = (0..n).filter(|&s| ch.transmit(&msg(), s).is_ok()).count();
        let rate = ok as f64 / n as f64;
        assert!((rate - 0.7).abs() < 0.03, "delivery rate {rate}");
    }

    #[test]
    #[should_panic(expected = "loss prob must be in")]
    fn bad_loss_prob_rejected() {
        FaultyChannel::lossy(1.2, 0, 1, 0.1);
    }
}
