//! # haccs-summary
//!
//! Privacy-preserving data-distribution summaries (§IV-A/§IV-B of the
//! paper):
//!
//! * [`hist::Histogram`] — the normalized histogram representation used for
//!   both summaries,
//! * the **P(y)** summary — the marginal label distribution,
//! * the **P(X|y)** summary — one pixel-value histogram per class label,
//! * [`distance::hellinger`] — the Hellinger distance (Eq. 3) and the
//!   average-Hellinger distance between histogram *sets*, plus alternative
//!   distances used by the ablation benches,
//! * [`dp`] — the Laplace mechanism providing (ε, 0)-differential privacy
//!   for histograms (Eq. 5 controls the noise variance 2/ε²),
//! * [`cache::DistanceCache`] — a persistent condensed pairwise-distance
//!   matrix maintained incrementally under membership churn (§IV-C), so a
//!   join/leave/drift recomputes one row instead of the full O(n²) matrix,
//! * [`sketch`] — quantized summary fingerprints keying the two-level
//!   (bucketed) clustering mode (DESIGN.md §15).
//!
//! A [`Summarizer`] bundles the configuration (summary kind, bin count,
//! privacy budget) and produces [`ClientSummary`] values from a client's
//! [`haccs_data::ImageSet`]; pairwise distance matrices are computed in
//! parallel with rayon.

pub mod cache;
pub mod distance;
pub mod dp;
pub mod hist;
pub mod persist;
pub mod sketch;
pub mod summarizer;

pub use cache::{DistanceCache, DistanceCacheStats};
pub use distance::{avg_hellinger, euclidean, hellinger, total_variation, DistanceKind};
pub use dp::{laplace_noise, privatize_counts, LaplaceMechanism};
pub use hist::Histogram;
pub use sketch::{sketch, SketchKey};
pub use summarizer::{pairwise_distances, ClientSummary, Summarizer, SummaryKind};
