//! Snapshot (de)serialization for [`ClientSummary`] values, following the
//! `haccs-persist` codec conventions (explicit lengths, IEEE-754 bit
//! patterns — see DESIGN.md §10).
//!
//! Histograms are rehydrated through [`Histogram::from_normalized`], which
//! stores the bins verbatim, so a summary survives a snapshot round trip
//! bit-for-bit — the property the resume-parity suite depends on, since
//! cluster distances are pure functions of the summary bins.

use crate::hist::Histogram;
use crate::summarizer::ClientSummary;
use haccs_persist::{PersistError, SnapshotReader, SnapshotWriter};

/// Validates snapshot-sourced bins before handing them to the asserting
/// [`Histogram::from_normalized`]: a malformed snapshot must surface as a
/// [`PersistError`], not a panic.
fn histogram_from_snapshot(bins: Vec<f32>) -> Result<Histogram, PersistError> {
    if bins.is_empty() {
        return Err(PersistError::Malformed("histogram with zero bins".into()));
    }
    if bins.iter().any(|&b| !b.is_finite() || b < 0.0) {
        return Err(PersistError::Malformed("histogram bin not finite and ≥ 0".into()));
    }
    Ok(Histogram::from_normalized(bins))
}

impl ClientSummary {
    /// Appends this summary to a snapshot payload (tag byte + bins).
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        match self {
            ClientSummary::LabelDist(h) => {
                w.put_u8(0);
                w.put_f32s(h.bins());
            }
            ClientSummary::CondDist { hists, prevalence } => {
                w.put_u8(1);
                w.put_usize(hists.len());
                for h in hists {
                    w.put_f32s(h.bins());
                }
                w.put_f32s(prevalence);
            }
        }
    }

    /// Reads back what [`ClientSummary::save_state`] wrote.
    pub fn load_state(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(ClientSummary::LabelDist(histogram_from_snapshot(r.get_f32s()?)?)),
            1 => {
                let n = r.get_usize()?;
                let mut hists = Vec::with_capacity(n);
                for _ in 0..n {
                    hists.push(histogram_from_snapshot(r.get_f32s()?)?);
                }
                let prevalence = r.get_f32s()?;
                if prevalence.len() != n {
                    return Err(PersistError::Malformed(
                        "prevalence length differs from class count".into(),
                    ));
                }
                Ok(ClientSummary::CondDist { hists, prevalence })
            }
            t => Err(PersistError::Malformed(format!("unknown summary tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_summary_round_trips_bit_exactly() {
        // 1/3 is not exactly representable: from_counts-normalized bins
        // must come back verbatim, not re-normalized
        let s = ClientSummary::LabelDist(Histogram::from_counts(&[1.0, 1.0, 1.0]));
        let mut w = SnapshotWriter::new();
        s.save_state(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        let back = ClientSummary::load_state(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn cond_summary_round_trips_with_null_classes() {
        let s = ClientSummary::CondDist {
            hists: vec![
                Histogram::from_counts(&[3.0, 1.0]),
                Histogram::from_counts(&[0.0, 0.0]), // absent class: null hist
            ],
            prevalence: vec![1.0, 0.0],
        };
        let mut w = SnapshotWriter::new();
        s.save_state(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(ClientSummary::load_state(&mut r).unwrap(), s);
    }

    #[test]
    fn bad_tag_and_bad_bins_are_errors_not_panics() {
        let mut w = SnapshotWriter::new();
        w.put_u8(7);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(ClientSummary::load_state(&mut r), Err(PersistError::Malformed(_))));

        let mut w = SnapshotWriter::new();
        w.put_u8(0);
        w.put_f32s(&[0.5, f32::NAN]);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(ClientSummary::load_state(&mut r), Err(PersistError::Malformed(_))));
    }
}
