//! Quantized summary fingerprints ("sketches") for two-level clustering
//! (DESIGN.md §15).
//!
//! A [`SketchKey`] maps a [`ClientSummary`] onto a small totally-ordered
//! grid: every coordinate of the summary's fingerprint vector (the label
//! histogram for `P(y)` summaries; the prevalence vector followed by the
//! per-class pixel histograms for `P(X|y)` summaries) is quantized into
//! `levels` equal-width buckets over `[0, 1]`. Clients whose summaries
//! fall into the same grid cell are statistically interchangeable up to
//! the quantization step `1/levels`, which is what lets the two-level
//! [`ClusterCache`](../../haccs-core) run exact Hellinger + OPTICS over
//! one representative per cell instead of over every client.
//!
//! Two resolutions are used together: a **coarse** key (few levels)
//! partitions the federation into buckets clustered independently, and a
//! **fine** key (many levels) partitions each bucket into cells sharing a
//! representative. Both are pure functions of the summary bins, so keys
//! never need to be persisted — they are re-derived on restore.

use crate::summarizer::ClientSummary;

/// A quantized summary fingerprint. Ordered lexicographically, so it can
/// key ordered maps deterministically; equal keys ⇔ every fingerprint
/// coordinate falls in the same quantization bucket.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SketchKey(Vec<u16>);

impl SketchKey {
    /// The quantized coordinates.
    pub fn as_slice(&self) -> &[u16] {
        &self.0
    }

    /// Number of fingerprint coordinates.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty fingerprint.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Quantizes one probability-mass coordinate into `levels` equal-width
/// buckets over `[0, 1]`. Mass exactly 1.0 lands in the top bucket.
fn quantize(mass: f32, levels: u16) -> u16 {
    debug_assert!(mass.is_finite() && mass >= 0.0, "summary bins are finite and ≥ 0");
    let q = (mass * levels as f32) as u32;
    q.min(levels as u32 - 1) as u16
}

/// Computes the quantized fingerprint of a summary at the given
/// resolution. `levels` must be ≥ 1; `levels == 1` collapses every
/// summary of the same kind/shape onto a single key.
pub fn sketch(summary: &ClientSummary, levels: u16) -> SketchKey {
    assert!(levels >= 1, "sketch needs at least one quantization level");
    let key = match summary {
        ClientSummary::LabelDist(h) => h.bins().iter().map(|&b| quantize(b, levels)).collect(),
        ClientSummary::CondDist { hists, prevalence } => {
            let mut v: Vec<u16> = prevalence.iter().map(|&p| quantize(p, levels)).collect();
            for h in hists {
                v.extend(h.bins().iter().map(|&b| quantize(b, levels)));
            }
            v
        }
    };
    SketchKey(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn label(bins: &[f32]) -> ClientSummary {
        ClientSummary::LabelDist(Histogram::from_normalized(bins.to_vec()))
    }

    #[test]
    fn identical_summaries_share_a_key() {
        let a = label(&[0.5, 0.25, 0.25, 0.0]);
        let b = label(&[0.5, 0.25, 0.25, 0.0]);
        assert_eq!(sketch(&a, 4), sketch(&b, 4));
        assert_eq!(sketch(&a, 1024), sketch(&b, 1024));
    }

    #[test]
    fn jitter_below_the_step_keeps_the_key() {
        // both coordinates stay inside their level interval at 4 levels
        let a = label(&[0.60, 0.40]);
        let b = label(&[0.62, 0.38]);
        assert_eq!(sketch(&a, 4), sketch(&b, 4));
        // …but a finer grid tells them apart
        assert_ne!(sketch(&a, 256), sketch(&b, 256));
    }

    #[test]
    fn separated_distributions_get_distinct_coarse_keys() {
        let a = label(&[1.0, 0.0, 0.0, 0.0]);
        let b = label(&[0.0, 0.0, 0.0, 1.0]);
        assert_ne!(sketch(&a, 2), sketch(&b, 2));
    }

    #[test]
    fn one_level_collapses_everything() {
        let a = label(&[1.0, 0.0]);
        let b = label(&[0.0, 1.0]);
        assert_eq!(sketch(&a, 1), sketch(&b, 1));
    }

    #[test]
    fn full_mass_lands_in_the_top_bucket() {
        let a = label(&[1.0, 0.0]);
        assert_eq!(sketch(&a, 4).as_slice(), &[3, 0]);
    }

    #[test]
    fn cond_summaries_fingerprint_prevalence_and_hists() {
        let mk = |p0: f32, bin0: f32| ClientSummary::CondDist {
            hists: vec![
                Histogram::from_normalized(vec![bin0, 1.0 - bin0]),
                Histogram::from_normalized(vec![0.5, 0.5]),
            ],
            prevalence: vec![p0, 1.0 - p0],
        };
        // same prevalence, different conditional histogram → distinct keys
        assert_ne!(sketch(&mk(0.5, 0.9), 8), sketch(&mk(0.5, 0.1), 8));
        // identical summaries agree
        assert_eq!(sketch(&mk(0.5, 0.9), 8), sketch(&mk(0.5, 0.9), 8));
    }

    #[test]
    fn keys_order_lexicographically() {
        let a = sketch(&label(&[0.0, 1.0]), 4);
        let b = sketch(&label(&[1.0, 0.0]), 4);
        assert!(a < b);
    }
}
