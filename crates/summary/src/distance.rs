//! Distance functions between distribution summaries.
//!
//! The paper uses the Hellinger distance (Eq. 3) for `P(y)` and the
//! *average* Hellinger distance between histogram sets for `P(X|y)`.
//! Total-variation and Euclidean distances are provided for the
//! `ablation_distance` bench.

use crate::hist::Histogram;

/// Which distance a summarizer/clusterer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceKind {
    /// Hellinger distance (the paper's choice, Eq. 3).
    #[default]
    Hellinger,
    /// Total-variation distance, `½·Σ|p−q|`.
    TotalVariation,
    /// Euclidean (L2) distance between bin vectors.
    Euclidean,
}

impl DistanceKind {
    /// Applies the distance to a pair of histograms.
    pub fn apply(self, a: &Histogram, b: &Histogram) -> f32 {
        match self {
            DistanceKind::Hellinger => hellinger(a, b),
            DistanceKind::TotalVariation => total_variation(a, b),
            DistanceKind::Euclidean => euclidean(a, b),
        }
    }
}

/// Hellinger distance (Eq. 3): `H(p, q) = (1/√2)·‖√p − √q‖₂`.
///
/// Bounded in `[0, 1]` for probability vectors (Eq. 4) and tolerant of zero
/// entries, which is why the paper picks it for histograms.
pub fn hellinger(a: &Histogram, b: &Histogram) -> f32 {
    assert_eq!(a.len(), b.len(), "histograms must have equal bin counts");
    let s: f32 = a
        .bins()
        .iter()
        .zip(b.bins())
        .map(|(&p, &q)| {
            let d = p.sqrt() - q.sqrt();
            d * d
        })
        .sum();
    (s / 2.0).sqrt().min(1.0)
}

/// Mean Hellinger distance across paired histogram sets — the distance for
/// the `P(X|y)` summary (§IV-A, "the *average* Hellinger distance between
/// the two sets of histograms").
///
/// Pairs where **both** histograms are null (label absent on both clients)
/// carry no information and are skipped; pairs where exactly one side is
/// null count as maximally distant (the label exists on one client only).
pub fn avg_hellinger(a: &[Histogram], b: &[Histogram]) -> f32 {
    assert_eq!(a.len(), b.len(), "summary sets must have equal cardinality");
    let mut total = 0.0f32;
    let mut n = 0usize;
    for (ha, hb) in a.iter().zip(b) {
        match (ha.is_null(), hb.is_null()) {
            (true, true) => continue,
            (true, false) | (false, true) => {
                total += 1.0;
                n += 1;
            }
            (false, false) => {
                total += hellinger(ha, hb);
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f32
    }
}

/// Total-variation distance `½·Σ|p−q| ∈ [0, 1]`.
pub fn total_variation(a: &Histogram, b: &Histogram) -> f32 {
    assert_eq!(a.len(), b.len());
    0.5 * a.bins().iter().zip(b.bins()).map(|(p, q)| (p - q).abs()).sum::<f32>()
}

/// Euclidean distance between bin vectors.
pub fn euclidean(a: &Histogram, b: &Histogram) -> f32 {
    assert_eq!(a.len(), b.len());
    a.bins().iter().zip(b.bins()).map(|(p, q)| (p - q) * (p - q)).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(bins: &[f32]) -> Histogram {
        Histogram::from_counts(bins)
    }

    #[test]
    fn hellinger_identical_is_zero() {
        let a = h(&[1.0, 2.0, 3.0]);
        assert!(hellinger(&a, &a) < 1e-7);
    }

    #[test]
    fn hellinger_disjoint_is_one() {
        let a = h(&[1.0, 0.0]);
        let b = h(&[0.0, 1.0]);
        assert!((hellinger(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hellinger_symmetric() {
        let a = h(&[0.7, 0.2, 0.1]);
        let b = h(&[0.1, 0.1, 0.8]);
        assert_eq!(hellinger(&a, &b), hellinger(&b, &a));
    }

    #[test]
    fn hellinger_bounded() {
        // Eq. 4: 0 ≤ H ≤ 1 for arbitrary distributions
        let cases = [
            (vec![1.0, 0.0, 0.0], vec![0.0, 0.5, 0.5]),
            (vec![0.25, 0.25, 0.5], vec![0.3, 0.3, 0.4]),
            (vec![1.0], vec![1.0]),
        ];
        for (p, q) in cases {
            let d = hellinger(&h(&p), &h(&q));
            assert!((0.0..=1.0).contains(&d), "H = {d} out of bounds");
        }
    }

    #[test]
    fn hellinger_known_value() {
        // H([1,0],[.5,.5]) = sqrt((1-√.5)² + .5)/√2 = sqrt(1 - √.5)
        let d = hellinger(&h(&[1.0, 0.0]), &h(&[0.5, 0.5]));
        let expect = (1.0f32 - 0.5f32.sqrt()).sqrt();
        assert!((d - expect).abs() < 1e-5, "{d} vs {expect}");
    }

    #[test]
    fn avg_hellinger_skips_mutual_nulls() {
        let a = vec![h(&[1.0, 0.0]), Histogram::from_counts(&[0.0, 0.0])];
        let b = vec![h(&[1.0, 0.0]), Histogram::from_counts(&[0.0, 0.0])];
        assert_eq!(avg_hellinger(&a, &b), 0.0);
    }

    #[test]
    fn avg_hellinger_penalizes_one_sided_nulls() {
        let a = vec![h(&[1.0, 1.0]), Histogram::from_counts(&[0.0, 0.0])];
        let b = vec![h(&[1.0, 1.0]), h(&[1.0, 1.0])];
        // first pair distance 0, second pair distance 1 → mean 0.5
        assert!((avg_hellinger(&a, &b) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn total_variation_known() {
        let d = total_variation(&h(&[1.0, 0.0]), &h(&[0.0, 1.0]));
        assert!((d - 1.0).abs() < 1e-6);
        let d2 = total_variation(&h(&[0.5, 0.5]), &h(&[0.25, 0.75]));
        assert!((d2 - 0.25).abs() < 1e-6);
    }

    #[test]
    fn euclidean_known() {
        let d = euclidean(&h(&[1.0, 0.0]), &h(&[0.0, 1.0]));
        assert!((d - 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn triangle_inequality_hellinger() {
        // Hellinger is a proper metric; spot-check the triangle inequality.
        let ps =
            [vec![0.5, 0.3, 0.2], vec![0.1, 0.8, 0.1], vec![0.33, 0.33, 0.34], vec![1.0, 0.0, 0.0]];
        for x in &ps {
            for y in &ps {
                for z in &ps {
                    let (hx, hy, hz) = (h(x), h(y), h(z));
                    let (dxy, dyz, dxz) =
                        (hellinger(&hx, &hy), hellinger(&hy, &hz), hellinger(&hx, &hz));
                    assert!(dxz <= dxy + dyz + 1e-6, "triangle violated");
                }
            }
        }
    }

    #[test]
    fn distance_kind_dispatch() {
        let a = h(&[1.0, 0.0]);
        let b = h(&[0.0, 1.0]);
        assert_eq!(DistanceKind::Hellinger.apply(&a, &b), hellinger(&a, &b));
        assert_eq!(DistanceKind::TotalVariation.apply(&a, &b), total_variation(&a, &b));
        assert_eq!(DistanceKind::Euclidean.apply(&a, &b), euclidean(&a, &b));
    }
}
