//! Normalized histograms: the summary representation `S(Z_i)` of §IV-A.

/// A normalized histogram (discrete probability distribution) over a fixed
/// number of bins. Invariant: every bin is ≥ 0 and bins sum to 1, unless
/// the histogram was built from zero observations, in which case all bins
/// are 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bins: Vec<f32>,
}

impl Histogram {
    /// Builds a normalized histogram from raw, non-negative counts.
    pub fn from_counts(counts: &[f32]) -> Self {
        assert!(!counts.is_empty(), "histogram needs at least one bin");
        assert!(counts.iter().all(|&c| c >= 0.0 && c.is_finite()), "counts must be finite and ≥ 0");
        let total: f32 = counts.iter().sum();
        let bins = if total > 0.0 {
            counts.iter().map(|&c| c / total).collect()
        } else {
            vec![0.0; counts.len()]
        };
        Histogram { bins }
    }

    /// Builds from integer counts.
    pub fn from_int_counts(counts: &[usize]) -> Self {
        let f: Vec<f32> = counts.iter().map(|&c| c as f32).collect();
        Self::from_counts(&f)
    }

    /// Rehydrates a histogram from bins that are *already* normalized —
    /// the wire path (`haccs_wire::WireSummary` carries normalized bins).
    /// Unlike [`Histogram::from_counts`], the bins are stored verbatim, so
    /// a summary survives an encode/decode round trip bit-for-bit.
    pub fn from_normalized(bins: Vec<f32>) -> Self {
        assert!(!bins.is_empty(), "histogram needs at least one bin");
        assert!(bins.iter().all(|&b| b >= 0.0 && b.is_finite()), "bins must be finite and ≥ 0");
        Histogram { bins }
    }

    /// Builds the label histogram (the **P(y)** summary) from class labels.
    pub fn from_labels(labels: &[usize], classes: usize) -> Self {
        let mut counts = vec![0.0f32; classes];
        for &l in labels {
            assert!(l < classes, "label {l} out of range");
            counts[l] += 1.0;
        }
        Self::from_counts(&counts)
    }

    /// Bins a slice of values in `[lo, hi]` into `n_bins` equal-width bins
    /// (values outside are clamped to the boundary bins). Used for the
    /// per-class pixel histograms of the **P(X|y)** summary.
    pub fn from_values(values: &[f32], n_bins: usize, lo: f32, hi: f32) -> Self {
        assert!(n_bins >= 1);
        assert!(lo < hi, "invalid range");
        let mut counts = vec![0.0f32; n_bins];
        let scale = n_bins as f32 / (hi - lo);
        for &v in values {
            let b = (((v - lo) * scale).floor() as isize).clamp(0, n_bins as isize - 1) as usize;
            counts[b] += 1.0;
        }
        Self::from_counts(&counts)
    }

    /// The normalized bins.
    pub fn bins(&self) -> &[f32] {
        &self.bins
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True if the histogram has no bins (never constructible) — present
    /// for clippy's `len_without_is_empty`.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// True if all mass is zero (built from no observations).
    pub fn is_null(&self) -> bool {
        self.bins.iter().all(|&b| b == 0.0)
    }

    /// Sum of bins (1 or 0 by invariant, up to float error).
    pub fn total(&self) -> f32 {
        self.bins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_normalizes() {
        let h = Histogram::from_counts(&[1.0, 3.0]);
        assert_eq!(h.bins(), &[0.25, 0.75]);
        assert!((h.total() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_counts_give_null() {
        let h = Histogram::from_counts(&[0.0, 0.0, 0.0]);
        assert!(h.is_null());
        assert_eq!(h.total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and ≥ 0")]
    fn negative_counts_rejected() {
        Histogram::from_counts(&[1.0, -1.0]);
    }

    #[test]
    fn from_labels_counts_correctly() {
        let h = Histogram::from_labels(&[0, 1, 1, 2, 1], 4);
        assert_eq!(h.bins(), &[0.2, 0.6, 0.2, 0.0]);
    }

    #[test]
    fn from_values_bins_and_clamps() {
        let h = Histogram::from_values(&[0.05, 0.95, 1.5, -0.2, 0.45], 2, 0.0, 1.0);
        // bins: [0, .5) and [.5, 1]; -0.2 clamps low, 1.5 clamps high
        assert_eq!(h.bins(), &[0.6, 0.4]);
    }

    #[test]
    fn from_values_single_bin() {
        let h = Histogram::from_values(&[0.1, 0.9], 1, 0.0, 1.0);
        assert_eq!(h.bins(), &[1.0]);
    }

    #[test]
    fn from_int_counts() {
        let h = Histogram::from_int_counts(&[2, 2]);
        assert_eq!(h.bins(), &[0.5, 0.5]);
    }

    #[test]
    fn from_normalized_stores_verbatim() {
        // from_counts would re-normalize these (lossy in f32); the wire
        // path must not
        let bins = vec![0.2f32, 0.6, 0.2, 0.0];
        let h = Histogram::from_normalized(bins.clone());
        assert_eq!(h.bins(), &bins[..]);
        assert!(Histogram::from_normalized(vec![0.0, 0.0]).is_null());
    }

    #[test]
    #[should_panic(expected = "finite and ≥ 0")]
    fn from_normalized_rejects_nan() {
        Histogram::from_normalized(vec![0.5, f32::NAN]);
    }
}
