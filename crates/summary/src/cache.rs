//! [`DistanceCache`]: a persistent condensed pairwise-distance matrix over
//! client summaries, maintained incrementally under membership churn.
//!
//! HACCS re-clusters whenever the federation changes (§IV-C). Rebuilding
//! the full matrix costs `n(n−1)/2` summary distances — each a Hellinger
//! evaluation over `Θ(c)` or `Θ(c·p)` bins — which is exactly the cost
//! "Efficient Data Distribution Estimation" identifies as dominant at
//! scale. A single join, leave or summary refresh only perturbs **one row
//! and column**, so the cache recomputes just the `n−1` affected
//! distances (rayon-parallel) and splices them into the condensed store;
//! every other entry is copied bit-for-bit.
//!
//! Clients are keyed by external id and kept in ascending-id order, the
//! same order [`crate::pairwise_distances`] sees when the caller lists
//! summaries id-sorted — so [`DistanceCache::dense`] is **bit-identical**
//! to a from-scratch matrix at every churn step (distances are pure
//! functions of the two summaries, and every summary distance in this
//! crate is fp-symmetric). The churn property suite pins this.

use crate::distance::DistanceKind;
use crate::summarizer::{pairwise_distances, ClientSummary, Summarizer, SummaryKind};
use haccs_persist::{PersistError, SnapshotReader, SnapshotWriter};
use rayon::prelude::*;

/// Condensed index of pair `(i, j)` with `i < j` in an `n`-point matrix
/// (scipy's `squareform` layout).
fn condensed_index(i: usize, j: usize, n: usize) -> usize {
    debug_assert!(i < j && j < n);
    n * i - i * (i + 1) / 2 + (j - i - 1)
}

/// Running maintenance counters for a [`DistanceCache`] — how many
/// summary distances were actually evaluated versus spliced from the
/// existing store. Pure observability: never serialized, never consulted
/// by the maintenance logic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistanceCacheStats {
    /// Summary distances evaluated (the expensive Hellinger calls).
    pub distances_computed: u64,
    /// Condensed entries copied bit-for-bit instead of recomputed.
    pub entries_reused: u64,
    /// Churn edits applied (add/remove/update calls).
    pub edits: u64,
}

/// A persistent condensed pairwise-distance matrix with incremental
/// `add_client` / `remove_client` / `update_summary` maintenance.
#[derive(Debug, Clone)]
pub struct DistanceCache {
    summarizer: Summarizer,
    /// Client ids, ascending. Position in this vector = matrix index.
    ids: Vec<usize>,
    /// Summaries, parallel to `ids`.
    summaries: Vec<ClientSummary>,
    /// Upper-triangle distances, `len = n(n-1)/2`.
    condensed: Vec<f32>,
    stats: DistanceCacheStats,
}

impl DistanceCache {
    /// Empty cache computing distances with `summarizer`.
    pub fn new(summarizer: Summarizer) -> Self {
        DistanceCache {
            summarizer,
            ids: Vec::new(),
            summaries: Vec::new(),
            condensed: Vec::new(),
            stats: DistanceCacheStats::default(),
        }
    }

    /// Maintenance counters since construction (not persisted by
    /// [`DistanceCache::save_state`]).
    pub fn stats(&self) -> DistanceCacheStats {
        self.stats
    }

    /// Number of cached clients.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no clients are cached.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Cached client ids, ascending. Position = matrix index.
    pub fn ids(&self) -> &[usize] {
        &self.ids
    }

    /// The summarizer distances are computed with.
    pub fn summarizer(&self) -> &Summarizer {
        &self.summarizer
    }

    /// True if `id` is cached.
    pub fn contains(&self, id: usize) -> bool {
        self.position(id).is_some()
    }

    /// Matrix index of `id`, if cached.
    pub fn position(&self, id: usize) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The cached summary of `id`.
    pub fn summary(&self, id: usize) -> Option<&ClientSummary> {
        self.position(id).map(|p| &self.summaries[p])
    }

    /// The condensed upper-triangle distances (pair `(i, j)`, `i < j`, in
    /// matrix-index space).
    pub fn condensed(&self) -> &[f32] {
        &self.condensed
    }

    /// Distance between two cached clients by id.
    pub fn distance(&self, a: usize, b: usize) -> f32 {
        let (pa, pb) = (
            self.position(a).expect("client a not cached"),
            self.position(b).expect("client b not cached"),
        );
        self.entry(pa, pb)
    }

    fn entry(&self, i: usize, j: usize) -> f32 {
        if i == j {
            0.0
        } else {
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            self.condensed[condensed_index(lo, hi, self.ids.len())]
        }
    }

    /// Full row of matrix position `pos` (self entry 0.0).
    pub fn row(&self, pos: usize) -> Vec<f32> {
        (0..self.ids.len()).map(|j| self.entry(pos, j)).collect()
    }

    /// Materializes the dense symmetric matrix — the clustering input.
    /// Bit-identical to [`pairwise_distances`] over the id-sorted
    /// summaries.
    pub fn dense(&self) -> Vec<Vec<f32>> {
        (0..self.ids.len()).map(|i| self.row(i)).collect()
    }

    /// Distances from `summary` to every cached client, rayon-parallel,
    /// in matrix-index order. This is the only place churn maintenance
    /// evaluates summary distances.
    fn distances_to_all(&self, summary: &ClientSummary) -> Vec<f32> {
        self.summaries.par_iter().map(|s| self.summarizer.distance_between(s, summary)).collect()
    }

    /// Adds a client, computing only its `n` distances. Returns the
    /// insertion position and the new point's full row in **post-insert**
    /// indexing (`row[pos] == 0.0`) — the edit a warm-start clusterer
    /// needs. Panics if `id` is already cached.
    pub fn add_client(&mut self, id: usize, summary: ClientSummary) -> (usize, Vec<f32>) {
        let pos = match self.ids.binary_search(&id) {
            Ok(_) => panic!("client {id} already cached"),
            Err(p) => p,
        };
        let dists = self.distances_to_all(&summary); // old indexing
        let old_n = self.ids.len();
        let new_n = old_n + 1;
        self.stats.edits += 1;
        self.stats.distances_computed += old_n as u64;
        self.stats.entries_reused += (old_n * old_n.saturating_sub(1) / 2) as u64;
        let mut condensed = Vec::with_capacity(new_n * (new_n - 1) / 2);
        // map a new matrix index back to the old one (None = the newcomer)
        let old_of = |k: usize| -> Option<usize> {
            match k.cmp(&pos) {
                std::cmp::Ordering::Less => Some(k),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some(k - 1),
            }
        };
        for i in 0..new_n {
            for j in (i + 1)..new_n {
                let d = match (old_of(i), old_of(j)) {
                    (Some(oi), Some(oj)) => self.condensed[condensed_index(oi, oj, old_n)],
                    (Some(oi), None) => dists[oi],
                    (None, Some(oj)) => dists[oj],
                    (None, None) => unreachable!("i < j"),
                };
                condensed.push(d);
            }
        }
        self.condensed = condensed;
        self.ids.insert(pos, id);
        self.summaries.insert(pos, summary);
        let row = self.row(pos);
        (pos, row)
    }

    /// Removes a client. No distances are recomputed — surviving entries
    /// are copied bit-for-bit. Returns the removal position and the
    /// removed point's row in **pre-remove** indexing. Panics if `id` is
    /// not cached.
    pub fn remove_client(&mut self, id: usize) -> (usize, Vec<f32>) {
        let pos = self.position(id).unwrap_or_else(|| panic!("client {id} not cached"));
        let row = self.row(pos);
        let old_n = self.ids.len();
        let new_n = old_n - 1;
        self.stats.edits += 1;
        self.stats.entries_reused += (new_n * new_n.saturating_sub(1) / 2) as u64;
        let mut condensed = Vec::with_capacity(new_n * new_n.saturating_sub(1) / 2);
        for i in 0..old_n {
            if i == pos {
                continue;
            }
            for j in (i + 1)..old_n {
                if j == pos {
                    continue;
                }
                condensed.push(self.condensed[condensed_index(i, j, old_n)]);
            }
        }
        self.condensed = condensed;
        self.ids.remove(pos);
        self.summaries.remove(pos);
        (pos, row)
    }

    /// Replaces a client's summary (§IV-C data drift), recomputing only
    /// its row. Returns the position and its `(old_row, new_row)` pair in
    /// the unchanged indexing. Panics if `id` is not cached.
    pub fn update_summary(
        &mut self,
        id: usize,
        summary: ClientSummary,
    ) -> (usize, Vec<f32>, Vec<f32>) {
        let pos = self.position(id).unwrap_or_else(|| panic!("client {id} not cached"));
        let old_row = self.row(pos);
        let mut dists = self.distances_to_all(&summary);
        dists[pos] = 0.0;
        let n = self.ids.len();
        self.stats.edits += 1;
        self.stats.distances_computed += n.saturating_sub(1) as u64;
        self.stats.entries_reused +=
            (n * n.saturating_sub(1) / 2).saturating_sub(n.saturating_sub(1)) as u64;
        for (j, &d) in dists.iter().enumerate() {
            if j == pos {
                continue;
            }
            let (lo, hi) = if pos < j { (pos, j) } else { (j, pos) };
            self.condensed[condensed_index(lo, hi, n)] = d;
        }
        self.summaries[pos] = summary;
        (pos, old_row, dists)
    }

    /// From-scratch rebuild over the cached summaries, via
    /// [`pairwise_distances`] — the reference the incremental path is
    /// tested bit-identical against (and the baseline the bench times).
    pub fn rebuild_dense(&self) -> Vec<Vec<f32>> {
        pairwise_distances(&self.summarizer, &self.summaries)
    }

    /// Appends the full cache state — summarizer fingerprint, ids,
    /// summaries and the condensed matrix verbatim — to a snapshot payload.
    /// Distances are stored as raw f32 bit patterns, not recomputed on
    /// load, so a restored cache is bit-identical to the saved one.
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u8(match self.summarizer.kind {
            SummaryKind::LabelDistribution => 0,
            SummaryKind::ConditionalDistribution => 1,
        });
        w.put_usize(self.summarizer.pixel_bins);
        match self.summarizer.epsilon {
            Some(eps) => {
                w.put_bool(true);
                w.put_f64(eps);
            }
            None => w.put_bool(false),
        }
        w.put_u8(match self.summarizer.distance {
            DistanceKind::Hellinger => 0,
            DistanceKind::TotalVariation => 1,
            DistanceKind::Euclidean => 2,
        });
        w.put_usizes(&self.ids);
        for s in &self.summaries {
            s.save_state(w);
        }
        w.put_f32s(&self.condensed);
    }

    /// Restores what [`DistanceCache::save_state`] wrote, replacing this
    /// cache's contents. The snapshot's summarizer fingerprint must match
    /// the summarizer this cache was constructed with — resuming under a
    /// different distance/summary configuration would silently change
    /// clustering, so it is rejected instead.
    pub fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        let kind = match r.get_u8()? {
            0 => SummaryKind::LabelDistribution,
            1 => SummaryKind::ConditionalDistribution,
            t => return Err(PersistError::Malformed(format!("unknown summary kind {t}"))),
        };
        let pixel_bins = r.get_usize()?;
        let epsilon = if r.get_bool()? { Some(r.get_f64()?) } else { None };
        let distance = match r.get_u8()? {
            0 => DistanceKind::Hellinger,
            1 => DistanceKind::TotalVariation,
            2 => DistanceKind::Euclidean,
            t => return Err(PersistError::Malformed(format!("unknown distance kind {t}"))),
        };
        let stored = Summarizer { kind, pixel_bins, epsilon, distance };
        if stored != self.summarizer {
            return Err(PersistError::Malformed(format!(
                "snapshot summarizer {stored:?} differs from this cache's {:?}",
                self.summarizer
            )));
        }
        let ids = r.get_usizes()?;
        if !ids.windows(2).all(|p| p[0] < p[1]) {
            return Err(PersistError::Malformed("cache ids not strictly ascending".into()));
        }
        let mut summaries = Vec::with_capacity(ids.len());
        for _ in 0..ids.len() {
            summaries.push(ClientSummary::load_state(r)?);
        }
        let condensed = r.get_f32s()?;
        let n = ids.len();
        if condensed.len() != n * n.saturating_sub(1) / 2 {
            return Err(PersistError::Malformed(format!(
                "condensed length {} does not match {n} clients",
                condensed.len()
            )));
        }
        self.ids = ids;
        self.summaries = summaries;
        self.condensed = condensed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn label_summary(bins: &[f32]) -> ClientSummary {
        ClientSummary::LabelDist(Histogram::from_counts(bins))
    }

    fn cache_with(ids: &[usize]) -> DistanceCache {
        let mut c = DistanceCache::new(Summarizer::label_dist());
        for &id in ids {
            let mut bins = vec![1.0f32; 4];
            bins[id % 4] += id as f32;
            c.add_client(id, label_summary(&bins));
        }
        c
    }

    #[test]
    fn condensed_index_matches_dense_walk() {
        let n = 5;
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(condensed_index(i, j, n), k);
                k += 1;
            }
        }
        assert_eq!(k, n * (n - 1) / 2);
    }

    #[test]
    fn incremental_add_matches_rebuild() {
        let c = cache_with(&[3, 0, 7, 5, 1]);
        assert_eq!(c.ids(), &[0, 1, 3, 5, 7], "ids stay sorted");
        assert_eq!(c.dense(), c.rebuild_dense());
    }

    #[test]
    fn remove_matches_rebuild() {
        let mut c = cache_with(&[0, 1, 2, 3, 4]);
        let (pos, row) = c.remove_client(2);
        assert_eq!(pos, 2);
        assert_eq!(row.len(), 5);
        assert_eq!(row[2], 0.0);
        assert_eq!(c.ids(), &[0, 1, 3, 4]);
        assert_eq!(c.dense(), c.rebuild_dense());
    }

    #[test]
    fn update_matches_rebuild() {
        let mut c = cache_with(&[0, 1, 2]);
        let (pos, old_row, new_row) = c.update_summary(1, label_summary(&[0.0, 0.0, 9.0, 1.0]));
        assert_eq!(pos, 1);
        assert_eq!(old_row[1], 0.0);
        assert_eq!(new_row[1], 0.0);
        assert_ne!(old_row, new_row, "drift must move the row");
        assert_eq!(c.dense(), c.rebuild_dense());
    }

    #[test]
    fn distance_lookup_is_symmetric() {
        let c = cache_with(&[10, 20, 30]);
        assert_eq!(c.distance(10, 30), c.distance(30, 10));
        assert_eq!(c.distance(20, 20), 0.0);
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_add_panics() {
        let mut c = cache_with(&[1]);
        c.add_client(1, label_summary(&[1.0, 1.0, 1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "not cached")]
    fn removing_unknown_panics() {
        let mut c = cache_with(&[1]);
        c.remove_client(2);
    }

    #[test]
    fn save_load_round_trips_bit_exactly() {
        let c = cache_with(&[3, 0, 7, 5, 1]);
        let mut w = SnapshotWriter::new();
        c.save_state(&mut w);
        let bytes = w.finish();

        let mut back = DistanceCache::new(Summarizer::label_dist());
        let mut r = SnapshotReader::open(&bytes).unwrap();
        back.load_state(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.ids(), c.ids());
        assert_eq!(back.condensed(), c.condensed());
        assert_eq!(back.dense(), c.dense());

        // churn after restore stays bit-identical to a rebuild
        back.add_client(2, label_summary(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(back.dense(), back.rebuild_dense());
    }

    #[test]
    fn load_rejects_mismatched_summarizer() {
        let c = cache_with(&[0, 1]);
        let mut w = SnapshotWriter::new();
        c.save_state(&mut w);
        let bytes = w.finish();
        let mut other = DistanceCache::new(Summarizer::cond_dist(8));
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(other.load_state(&mut r), Err(super::PersistError::Malformed(_))));
    }

    #[test]
    fn stats_count_computed_vs_reused() {
        let mut c = cache_with(&[0, 1, 2, 3]);
        // adds of sizes 0..=3: 0+1+2+3 distances computed, 0+0+1+3 reused
        assert_eq!(
            c.stats(),
            DistanceCacheStats { distances_computed: 6, entries_reused: 4, edits: 4 }
        );
        c.update_summary(2, label_summary(&[9.0, 1.0, 1.0, 1.0]));
        let s = c.stats();
        assert_eq!(s.edits, 5);
        assert_eq!(s.distances_computed, 9); // +3 recomputed row entries
        assert_eq!(s.entries_reused, 7); // +3 untouched pairs of the other clients
        c.remove_client(0);
        assert_eq!(c.stats().distances_computed, 9, "removal computes nothing");
    }

    #[test]
    fn empty_cache_dense_is_empty() {
        let c = DistanceCache::new(Summarizer::label_dist());
        assert!(c.is_empty());
        assert!(c.dense().is_empty());
        assert!(c.condensed().is_empty());
    }
}
