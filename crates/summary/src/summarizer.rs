//! [`Summarizer`]: computes a client's distribution summary `S(Z_i)` and
//! the pairwise distance matrix `d(S(Z_a), S(Z_b))` the server clusters on.

use crate::distance::DistanceKind;
use crate::dp::privatize_counts;
use crate::hist::Histogram;
use haccs_data::ImageSet;
use rand::Rng;
use rayon::prelude::*;

/// Which data summary a client sends (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SummaryKind {
    /// The marginal label distribution P(y): one histogram of Θ(c) size.
    #[default]
    LabelDistribution,
    /// The conditional feature distribution P(X|y): one pixel histogram per
    /// label, Θ(c·p) size.
    ConditionalDistribution,
}

/// A computed client summary.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientSummary {
    /// P(y): label histogram.
    LabelDist(Histogram),
    /// P(X|y): one pixel-value histogram per class (null histogram when the
    /// class is absent on the client), plus the class prevalences used to
    /// weight the per-class distances. The prevalences are derived from the
    /// same (possibly privatized) counts, so they add no privacy cost
    /// beyond what the histogram set already reveals.
    CondDist {
        /// Per-class pixel-value histograms.
        hists: Vec<Histogram>,
        /// Normalized per-class prevalence (a probability vector).
        prevalence: Vec<f32>,
    },
}

impl ClientSummary {
    /// Bytes this summary would occupy on the wire (4 bytes per bin): Θ(c)
    /// for P(y) and Θ(c·p) for P(X|y) — the §IV-A cost analysis.
    pub fn wire_size_bytes(&self) -> usize {
        match self {
            ClientSummary::LabelDist(h) => 4 * h.len(),
            ClientSummary::CondDist { hists, prevalence } => {
                hists.iter().map(|h| 4 * h.len()).sum::<usize>() + 4 * prevalence.len()
            }
        }
    }
}

/// Summary configuration: kind, pixel-histogram bin count and optional
/// differential-privacy budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summarizer {
    /// Which summary to compute.
    pub kind: SummaryKind,
    /// Bins for the P(X|y) pixel histograms (`p` in the paper).
    pub pixel_bins: usize,
    /// Privacy budget ε; `None` sends exact summaries.
    pub epsilon: Option<f64>,
    /// Distance between summaries (Hellinger in the paper).
    pub distance: DistanceKind,
}

impl Default for Summarizer {
    fn default() -> Self {
        Summarizer {
            kind: SummaryKind::LabelDistribution,
            pixel_bins: 16,
            epsilon: None,
            distance: DistanceKind::Hellinger,
        }
    }
}

impl Summarizer {
    /// P(y) summarizer without privacy noise.
    pub fn label_dist() -> Self {
        Summarizer::default()
    }

    /// P(X|y) summarizer with `pixel_bins` bins, without privacy noise.
    pub fn cond_dist(pixel_bins: usize) -> Self {
        Summarizer { kind: SummaryKind::ConditionalDistribution, pixel_bins, ..Default::default() }
    }

    /// Returns a copy with the given ε budget.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// Returns a copy using the given distance function.
    pub fn with_distance(mut self, distance: DistanceKind) -> Self {
        self.distance = distance;
        self
    }

    /// Computes the summary of one client's local data. Runs **on the
    /// client**: privacy noise is applied before anything leaves the device.
    pub fn summarize<R: Rng>(&self, data: &ImageSet, rng: &mut R) -> ClientSummary {
        match self.kind {
            SummaryKind::LabelDistribution => {
                let counts: Vec<f32> = data.label_counts().iter().map(|&c| c as f32).collect();
                let counts = match self.epsilon {
                    Some(eps) => privatize_counts(&counts, eps, rng),
                    None => counts,
                };
                ClientSummary::LabelDist(Histogram::from_counts(&counts))
            }
            SummaryKind::ConditionalDistribution => {
                let classes = data.classes();
                // bucket pixel values per class
                let mut per_class: Vec<Vec<f32>> = vec![Vec::new(); classes];
                for i in 0..data.len() {
                    per_class[data.labels()[i]].extend_from_slice(data.image(i));
                }
                let hists: Vec<Histogram> = per_class
                    .into_iter()
                    .map(|vals| {
                        if vals.is_empty() {
                            // class absent: null histogram
                            return Histogram::from_counts(&vec![0.0; self.pixel_bins]);
                        }
                        let h = Histogram::from_values(&vals, self.pixel_bins, 0.0, 1.0);
                        match self.epsilon {
                            Some(eps) => {
                                // re-express as counts for calibrated noise
                                let counts: Vec<f32> =
                                    h.bins().iter().map(|&b| b * vals.len() as f32).collect();
                                Histogram::from_counts(&privatize_counts(&counts, eps, rng))
                            }
                            None => h,
                        }
                    })
                    .collect();
                // class prevalence weights, privatized under the same budget
                let label_counts: Vec<f32> =
                    data.label_counts().iter().map(|&c| c as f32).collect();
                let label_counts = match self.epsilon {
                    Some(eps) => privatize_counts(&label_counts, eps, rng),
                    None => label_counts,
                };
                let prevalence = Histogram::from_counts(&label_counts).bins().to_vec();
                ClientSummary::CondDist { hists, prevalence }
            }
        }
    }

    /// Distance between two summaries of the same kind.
    pub fn distance_between(&self, a: &ClientSummary, b: &ClientSummary) -> f32 {
        match (a, b) {
            (ClientSummary::LabelDist(ha), ClientSummary::LabelDist(hb)) => {
                self.distance.apply(ha, hb)
            }
            (
                ClientSummary::CondDist { hists: sa, prevalence: pa },
                ClientSummary::CondDist { hists: sb, prevalence: pb },
            ) => {
                // the paper's "average Hellinger distance between the two
                // sets of histograms": each class's distance is weighted by
                // its average prevalence across the two clients. A class
                // present on exactly one side is maximally distant (its
                // conditional exists on one client only); classes absent on
                // both sides carry no weight.
                assert_eq!(sa.len(), sb.len(), "summary sets must have equal cardinality");
                let mut total = 0.0f32;
                let mut weight = 0.0f32;
                for c in 0..sa.len() {
                    let w = (pa[c] + pb[c]) / 2.0;
                    if w <= 0.0 {
                        continue;
                    }
                    let d = match (sa[c].is_null(), sb[c].is_null()) {
                        (true, true) => continue,
                        (true, false) | (false, true) => 1.0,
                        (false, false) => self.distance.apply(&sa[c], &sb[c]),
                    };
                    total += w * d;
                    weight += w;
                }
                if weight == 0.0 {
                    0.0
                } else {
                    total / weight
                }
            }
            _ => panic!("cannot compare summaries of different kinds"),
        }
    }
}

/// Symmetric pairwise distance matrix over client summaries, computed in
/// parallel. Entry `[i][j]` = `d(S(Z_i), S(Z_j))`.
///
/// Only the upper triangle is evaluated; the lower triangle is mirrored.
/// Every summary distance in this crate is fp-symmetric (Hellinger terms
/// `(sqrt(a)-sqrt(b))²` and the prevalence weights `(pa+pb)/2` are bitwise
/// commutative), so the mirror is bit-identical to evaluating both
/// triangles while halving the distance calls.
pub fn pairwise_distances(summarizer: &Summarizer, summaries: &[ClientSummary]) -> Vec<Vec<f32>> {
    let n = summaries.len();
    let upper: Vec<Vec<f32>> = (0..n)
        .into_par_iter()
        .map(|i| {
            ((i + 1)..n)
                .map(|j| summarizer.distance_between(&summaries[i], &summaries[j]))
                .collect()
        })
        .collect();
    let mut m = vec![vec![0.0f32; n]; n];
    for (i, row) in upper.iter().enumerate() {
        for (k, &d) in row.iter().enumerate() {
            let j = i + 1 + k;
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use haccs_data::SynthVision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn client_set(weights: &[f32], n: usize, seed: u64) -> ImageSet {
        let g = SynthVision::mnist_like(weights.len(), 8, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        g.generate_weighted(n, weights, 0.0, &mut rng)
    }

    #[test]
    fn label_summary_matches_distribution() {
        let s = Summarizer::label_dist();
        let data = client_set(&[0.75, 0.25, 0.0, 0.0], 400, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let ClientSummary::LabelDist(h) = s.summarize(&data, &mut rng) else {
            panic!("wrong summary kind")
        };
        assert!((h.bins()[0] - 0.75).abs() < 0.08);
        assert_eq!(h.bins()[2], 0.0);
    }

    #[test]
    fn similar_clients_are_close_dissimilar_far() {
        let s = Summarizer::label_dist();
        let mut rng = StdRng::seed_from_u64(0);
        let a = s.summarize(&client_set(&[0.8, 0.2, 0.0, 0.0], 300, 1), &mut rng);
        let b = s.summarize(&client_set(&[0.8, 0.2, 0.0, 0.0], 300, 2), &mut rng);
        let c = s.summarize(&client_set(&[0.0, 0.0, 0.2, 0.8], 300, 3), &mut rng);
        let d_ab = s.distance_between(&a, &b);
        let d_ac = s.distance_between(&a, &c);
        assert!(d_ab < 0.15, "same-distribution clients too far: {d_ab}");
        assert!(d_ac > 0.8, "different-distribution clients too close: {d_ac}");
    }

    #[test]
    fn cond_summary_has_one_hist_per_class() {
        let s = Summarizer::cond_dist(8);
        let data = client_set(&[0.5, 0.5, 0.0, 0.0], 100, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let ClientSummary::CondDist { hists: hs, prevalence } = s.summarize(&data, &mut rng) else {
            panic!("wrong summary kind")
        };
        assert_eq!(hs.len(), 4);
        assert!(!hs[0].is_null());
        assert!(hs[2].is_null(), "absent class should have null histogram");
        assert_eq!(hs[0].len(), 8);
        assert!((prevalence.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!((prevalence[0] - 0.5).abs() < 0.15);
        assert_eq!(prevalence[2], 0.0);
    }

    #[test]
    fn cond_summary_detects_feature_skew() {
        // same labels, one client rotated → P(X|y) distance should exceed
        // the unrotated pair's distance
        let g = SynthVision::mnist_like(4, 8, 0);
        let w = [0.5, 0.5, 0.0, 0.0];
        let mk = |rot: f32, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            g.generate_weighted(150, &w, rot, &mut rng)
        };
        let s = Summarizer::cond_dist(16);
        let mut rng = StdRng::seed_from_u64(0);
        let plain1 = s.summarize(&mk(0.0, 1), &mut rng);
        let plain2 = s.summarize(&mk(0.0, 2), &mut rng);
        let rot = s.summarize(&mk(45.0, 3), &mut rng);
        let d_same = s.distance_between(&plain1, &plain2);
        let d_rot = s.distance_between(&plain1, &rot);
        assert!(d_rot > d_same, "rotation not detected: {d_rot} vs {d_same}");
    }

    #[test]
    fn wire_size_reflects_theta_bounds() {
        let s1 = Summarizer::label_dist();
        let s2 = Summarizer::cond_dist(16);
        let data = client_set(&[0.25, 0.25, 0.25, 0.25], 100, 5);
        let mut rng = StdRng::seed_from_u64(0);
        let a = s1.summarize(&data, &mut rng);
        let b = s2.summarize(&data, &mut rng);
        assert_eq!(a.wire_size_bytes(), 4 * 4); // Θ(c)
        assert_eq!(b.wire_size_bytes(), 4 * 4 * 16 + 4 * 4); // Θ(c·p) + prevalences
    }

    #[test]
    fn dp_noise_perturbs_summary() {
        let s = Summarizer::label_dist().with_epsilon(0.01);
        let data = client_set(&[1.0, 0.0, 0.0, 0.0], 100, 6);
        let mut rng = StdRng::seed_from_u64(0);
        let ClientSummary::LabelDist(h) = s.summarize(&data, &mut rng) else { panic!() };
        // with ε=0.01 (b=100) and only 100 points, other bins gain mass
        assert!(h.bins()[0] < 0.99, "noise had no effect: {:?}", h.bins());
        assert!((h.total() - 1.0).abs() < 1e-5, "still a distribution");
    }

    #[test]
    fn pairwise_matrix_symmetric_zero_diag() {
        let s = Summarizer::label_dist();
        let mut rng = StdRng::seed_from_u64(0);
        let sums: Vec<ClientSummary> = (0..5)
            .map(|i| {
                let mut w = vec![0.1; 4];
                w[i % 4] = 0.7;
                s.summarize(&client_set(&w, 100, i as u64), &mut rng)
            })
            .collect();
        let m = pairwise_distances(&s, &sums);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &d) in row.iter().enumerate() {
                assert!((d - m[j][i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn pairwise_mirror_is_bit_identical_to_both_triangles() {
        // regression: the old implementation evaluated d(i,j) and d(j,i)
        // separately; the mirrored upper triangle must reproduce it bit
        // for bit, for both summary kinds
        let both_triangles = |s: &Summarizer, sums: &[ClientSummary]| -> Vec<Vec<f32>> {
            let n = sums.len();
            (0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| if i == j { 0.0 } else { s.distance_between(&sums[i], &sums[j]) })
                        .collect()
                })
                .collect()
        };
        for s in [Summarizer::label_dist(), Summarizer::cond_dist(8)] {
            let mut rng = StdRng::seed_from_u64(9);
            let sums: Vec<ClientSummary> = (0..13)
                .map(|i| {
                    let mut w = vec![0.05; 4];
                    w[i % 4] = 0.85;
                    s.summarize(&client_set(&w, 60 + 7 * i, i as u64), &mut rng)
                })
                .collect();
            let new = pairwise_distances(&s, &sums);
            let old = both_triangles(&s, &sums);
            assert_eq!(new.len(), old.len());
            for (i, (nr, or)) in new.iter().zip(&old).enumerate() {
                for (j, (&a, &b)) in nr.iter().zip(or).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "entry ({i},{j}) diverged");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn mixed_summary_kinds_panic() {
        let s = Summarizer::label_dist();
        let data = client_set(&[0.5, 0.5, 0.0, 0.0], 20, 7);
        let mut rng = StdRng::seed_from_u64(0);
        let a = s.summarize(&data, &mut rng);
        let b = Summarizer::cond_dist(4).summarize(&data, &mut rng);
        s.distance_between(&a, &b);
    }
}
