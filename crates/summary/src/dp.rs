//! The Laplace mechanism (§IV-B): (ε, 0)-differential privacy for
//! histogram summaries.
//!
//! For privacy loss ε, each histogram bin receives independent noise drawn
//! from `Laplace(0, 1/ε)`, whose variance is `2·(1/ε)²` (Eq. 5). Smaller ε
//! means stronger privacy and noisier summaries — the trade-off Fig. 8
//! quantifies.

use rand::Rng;

/// A configured Laplace mechanism with privacy budget ε.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceMechanism {
    epsilon: f64,
}

impl LaplaceMechanism {
    /// Creates a mechanism with budget `epsilon > 0`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive and finite");
        LaplaceMechanism { epsilon }
    }

    /// The privacy budget.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Scale parameter `b = 1/ε` of the noise distribution.
    pub fn scale(&self) -> f64 {
        1.0 / self.epsilon
    }

    /// Noise variance `2·b²` (Eq. 5).
    pub fn variance(&self) -> f64 {
        2.0 * self.scale() * self.scale()
    }

    /// Draws one noise value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        laplace_noise(self.scale(), rng)
    }

    /// Privatizes raw histogram *counts*: adds Laplace(0, 1/ε) noise to each
    /// bin. The result may contain negative bins; [`privatize_counts`]
    /// documents the clamp-and-release convention used downstream.
    pub fn privatize<R: Rng>(&self, counts: &[f32], rng: &mut R) -> Vec<f32> {
        counts.iter().map(|&c| (c as f64 + self.sample(rng)) as f32).collect()
    }
}

/// Draws one sample from `Laplace(0, b)` via inverse-CDF:
/// `x = −b·sign(u)·ln(1 − 2|u|)` for `u ~ U(−½, ½)`.
pub fn laplace_noise<R: Rng>(b: f64, rng: &mut R) -> f64 {
    assert!(b > 0.0, "scale must be positive");
    let u: f64 = rng.gen_range(-0.5..0.5);
    -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Privatizes counts and post-processes them into valid histogram counts:
/// noise is added per bin, then negative bins are clamped to zero.
///
/// Clamping is pure post-processing of the released noisy counts, so it
/// does not consume additional privacy budget.
pub fn privatize_counts<R: Rng>(counts: &[f32], epsilon: f64, rng: &mut R) -> Vec<f32> {
    let mech = LaplaceMechanism::new(epsilon);
    mech.privatize(counts, rng).into_iter().map(|c| c.max(0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn variance_formula_matches_eq5() {
        let m = LaplaceMechanism::new(0.1);
        assert!((m.variance() - 200.0).abs() < 1e-9); // 2·(1/0.1)² = 200
        let m2 = LaplaceMechanism::new(0.005);
        assert!((m2.variance() - 80000.0).abs() < 1e-6);
    }

    #[test]
    fn empirical_moments_match() {
        let m = LaplaceMechanism::new(0.5); // b = 2, var = 8
        let mut rng = StdRng::seed_from_u64(0);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 8.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn smaller_epsilon_noisier() {
        let mut rng = StdRng::seed_from_u64(1);
        let counts = vec![100.0f32; 50];
        let strong = privatize_counts(&counts, 0.005, &mut rng);
        let weak = privatize_counts(&counts, 1.0, &mut rng);
        let dev = |v: &[f32]| -> f32 {
            v.iter().map(|&x| (x - 100.0).abs()).sum::<f32>() / v.len() as f32
        };
        assert!(
            dev(&strong) > 10.0 * dev(&weak),
            "strong ε noise {} should dwarf weak {}",
            dev(&strong),
            dev(&weak)
        );
    }

    #[test]
    fn privatize_counts_non_negative() {
        let mut rng = StdRng::seed_from_u64(2);
        let out = privatize_counts(&[0.5, 1.0, 2.0], 0.01, &mut rng);
        assert!(out.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn raw_privatize_can_go_negative() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = LaplaceMechanism::new(0.01);
        let out = m.privatize(&[1.0; 100], &mut rng);
        assert!(out.iter().any(|&c| c < 0.0), "expected some negative noisy bins");
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        LaplaceMechanism::new(0.0);
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let m = LaplaceMechanism::new(0.1);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..5).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..5).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
