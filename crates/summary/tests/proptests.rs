//! Property-based tests for histograms, distances and the Laplace
//! mechanism — including metric invariants on **DP-noised** histograms
//! for every [`DistanceKind`] (the §IV-B deployment regime, where noise
//! could in principle break what holds for clean distributions), and the
//! [`DistanceCache`] churn invariant: the incrementally maintained
//! matrix equals a freshly computed [`pairwise_distances`] bit-for-bit.

use haccs_summary::summarizer::ClientSummary;
use haccs_summary::{
    euclidean, hellinger, laplace_noise, pairwise_distances, privatize_counts, total_variation,
    DistanceCache, DistanceKind, Histogram, Summarizer,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn counts() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.0f32..100.0, 1..20)
}

/// Two equal-length count vectors.
fn count_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1usize..20).prop_flat_map(|n| {
        (proptest::collection::vec(0.0f32..100.0, n), proptest::collection::vec(0.0f32..100.0, n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_is_normalized(c in counts()) {
        let h = Histogram::from_counts(&c);
        let total = h.total();
        prop_assert!(h.is_null() || (total - 1.0).abs() < 1e-4, "total {total}");
        prop_assert!(h.bins().iter().all(|&b| (0.0..=1.0 + 1e-6).contains(&b)));
    }

    #[test]
    fn hellinger_is_a_bounded_metric((a, b) in count_pair()) {
        let (ha, hb) = (Histogram::from_counts(&a), Histogram::from_counts(&b));
        let d = hellinger(&ha, &hb);
        prop_assert!((0.0..=1.0).contains(&d), "H = {d}");
        prop_assert!((d - hellinger(&hb, &ha)).abs() < 1e-6, "asymmetric");
        prop_assert!(hellinger(&ha, &ha) < 1e-6, "H(x,x) != 0");
    }

    #[test]
    fn hellinger_triangle_inequality(
        (n, sa, sb, sc) in (2usize..10).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(0.01f32..100.0, n),
            proptest::collection::vec(0.01f32..100.0, n),
            proptest::collection::vec(0.01f32..100.0, n),
        ))
    ) {
        let _ = n;
        let (a, b, c) = (
            Histogram::from_counts(&sa),
            Histogram::from_counts(&sb),
            Histogram::from_counts(&sc),
        );
        let (dab, dbc, dac) = (hellinger(&a, &b), hellinger(&b, &c), hellinger(&a, &c));
        prop_assert!(dac <= dab + dbc + 1e-5, "triangle violated: {dac} > {dab} + {dbc}");
    }

    #[test]
    fn total_variation_bounded_and_dominated_by_sqrt2_hellinger((a, b) in count_pair()) {
        let (ha, hb) = (Histogram::from_counts(&a), Histogram::from_counts(&b));
        let tv = total_variation(&ha, &hb);
        let h = hellinger(&ha, &hb);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&tv));
        // standard inequality: H² ≤ TV ≤ √2·H
        prop_assert!(h * h <= tv + 1e-4, "H²={} > TV={tv}", h * h);
        prop_assert!(tv <= std::f32::consts::SQRT_2 * h + 1e-4, "TV={tv} > √2·H={}", h * 1.415);
    }

    #[test]
    fn euclidean_nonnegative_symmetric((a, b) in count_pair()) {
        let (ha, hb) = (Histogram::from_counts(&a), Histogram::from_counts(&b));
        let d = euclidean(&ha, &hb);
        prop_assert!(d >= 0.0);
        prop_assert!((d - euclidean(&hb, &ha)).abs() < 1e-6);
    }

    #[test]
    fn from_values_total_preserved(values in proptest::collection::vec(-0.5f32..1.5, 1..200),
                                   bins in 1usize..32) {
        let h = Histogram::from_values(&values, bins, 0.0, 1.0);
        prop_assert_eq!(h.len(), bins);
        prop_assert!((h.total() - 1.0).abs() < 1e-4, "values outside range must be clamped, not lost");
    }

    #[test]
    fn privatized_counts_stay_valid(c in counts(), eps in 0.001f64..10.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let noisy = privatize_counts(&c, eps, &mut rng);
        prop_assert_eq!(noisy.len(), c.len());
        prop_assert!(noisy.iter().all(|&x| x >= 0.0 && x.is_finite()));
        // the noisy counts still form a valid histogram
        let h = Histogram::from_counts(&noisy);
        prop_assert!(h.is_null() || (h.total() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn laplace_noise_is_finite(b in 0.01f64..1000.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let x = laplace_noise(b, &mut rng);
            prop_assert!(x.is_finite());
        }
    }

    #[test]
    fn metric_invariants_survive_dp_noise(
        (ca, cb, cc) in (2usize..12).prop_flat_map(|n| (
            proptest::collection::vec(0.0f32..100.0, n),
            proptest::collection::vec(0.0f32..100.0, n),
            proptest::collection::vec(0.0f32..100.0, n),
        )),
        eps in 0.01f64..10.0,
        seed in any::<u64>(),
    ) {
        // every DistanceKind, on histograms that went through the Laplace
        // mechanism — the regime deployed clients actually ship
        for kind in [DistanceKind::Hellinger, DistanceKind::TotalVariation, DistanceKind::Euclidean] {
            let a = dp_hist(&ca, eps, seed);
            let b = dp_hist(&cb, eps, seed ^ 1);
            let c = dp_hist(&cc, eps, seed ^ 2);
            // symmetry must hold *bit-for-bit*: the distance-cache
            // bit-identity argument rests on d(i,j) == d(j,i) exactly
            let (dab, dba) = (kind.apply(&a, &b), kind.apply(&b, &a));
            prop_assert_eq!(dab.to_bits(), dba.to_bits(), "{:?} fp-asymmetric: {} vs {}", kind, dab, dba);
            // identity of indiscernibles (the cheap half)
            prop_assert_eq!(kind.apply(&a, &a), 0.0, "{:?} d(x,x) != 0", kind);
            // bounds: 1 for the probability metrics, √2 for L2 on simplices
            let bound = match kind {
                DistanceKind::Euclidean => std::f32::consts::SQRT_2,
                _ => 1.0,
            };
            prop_assert!((0.0..=bound + 1e-5).contains(&dab), "{:?} out of [0, {}]: {}", kind, bound, dab);
            // triangle inequality
            let (dbc, dac) = (kind.apply(&b, &c), kind.apply(&a, &c));
            prop_assert!(dac <= dab + dbc + 1e-5, "{:?} triangle violated: {} > {} + {}", kind, dac, dab, dbc);
        }
    }

    #[test]
    fn distance_cache_equals_fresh_matrix_under_churn(
        ops in proptest::collection::vec(
            (0u8..3, proptest::collection::vec(0.0f32..100.0, 4), any::<u64>()),
            1..20,
        ),
        eps in 0.05f64..10.0,
        kind_sel in 0usize..3,
    ) {
        let kind = [DistanceKind::Hellinger, DistanceKind::TotalVariation, DistanceKind::Euclidean][kind_sel];
        let summarizer = Summarizer::label_dist().with_distance(kind);
        let mut cache = DistanceCache::new(summarizer);
        // the reference membership view: (id, summary), ascending ids
        let mut mirror: Vec<(usize, ClientSummary)> = Vec::new();
        let mut next_id = 0usize;

        for (op, counts, seed) in ops {
            match op {
                0 => {
                    let s = ClientSummary::LabelDist(dp_hist(&counts, eps, seed));
                    cache.add_client(next_id, s.clone());
                    mirror.push((next_id, s)); // ids increase, stays sorted
                    next_id += 1;
                }
                1 if !mirror.is_empty() => {
                    let pick = seed as usize % mirror.len();
                    let (id, _) = mirror.remove(pick);
                    cache.remove_client(id);
                }
                _ if !mirror.is_empty() => {
                    let pick = seed as usize % mirror.len();
                    let s = ClientSummary::LabelDist(dp_hist(&counts, eps, seed ^ 0xA5));
                    cache.update_summary(mirror[pick].0, s.clone());
                    mirror[pick].1 = s;
                }
                _ => {}
            }

            // every churn step: cached matrix == fresh matrix, bit for bit
            let summaries: Vec<ClientSummary> = mirror.iter().map(|(_, s)| s.clone()).collect();
            let fresh = pairwise_distances(&summarizer, &summaries);
            let ids: Vec<usize> = mirror.iter().map(|(id, _)| *id).collect();
            prop_assert_eq!(cache.ids(), &ids[..], "id order diverged");
            prop_assert_eq!(cache.dense(), fresh, "cached matrix diverged from fresh rebuild");
        }
    }
}

/// A histogram that went through the §IV-B Laplace mechanism.
fn dp_hist(counts: &[f32], eps: f64, seed: u64) -> Histogram {
    let mut rng = StdRng::seed_from_u64(seed);
    Histogram::from_counts(&privatize_counts(counts, eps, &mut rng))
}
