/root/repo/target/release/deps/haccs_core-0172b9a96dfbae78.d: crates/core/src/lib.rs crates/core/src/clusters.rs crates/core/src/selector.rs crates/core/src/telemetry.rs crates/core/src/weights.rs

/root/repo/target/release/deps/libhaccs_core-0172b9a96dfbae78.rlib: crates/core/src/lib.rs crates/core/src/clusters.rs crates/core/src/selector.rs crates/core/src/telemetry.rs crates/core/src/weights.rs

/root/repo/target/release/deps/libhaccs_core-0172b9a96dfbae78.rmeta: crates/core/src/lib.rs crates/core/src/clusters.rs crates/core/src/selector.rs crates/core/src/telemetry.rs crates/core/src/weights.rs

crates/core/src/lib.rs:
crates/core/src/clusters.rs:
crates/core/src/selector.rs:
crates/core/src/telemetry.rs:
crates/core/src/weights.rs:
