/root/repo/target/release/deps/haccs_summary-dc675da30c72d1a3.d: crates/summary/src/lib.rs crates/summary/src/distance.rs crates/summary/src/dp.rs crates/summary/src/hist.rs crates/summary/src/summarizer.rs

/root/repo/target/release/deps/libhaccs_summary-dc675da30c72d1a3.rlib: crates/summary/src/lib.rs crates/summary/src/distance.rs crates/summary/src/dp.rs crates/summary/src/hist.rs crates/summary/src/summarizer.rs

/root/repo/target/release/deps/libhaccs_summary-dc675da30c72d1a3.rmeta: crates/summary/src/lib.rs crates/summary/src/distance.rs crates/summary/src/dp.rs crates/summary/src/hist.rs crates/summary/src/summarizer.rs

crates/summary/src/lib.rs:
crates/summary/src/distance.rs:
crates/summary/src/dp.rs:
crates/summary/src/hist.rs:
crates/summary/src/summarizer.rs:
