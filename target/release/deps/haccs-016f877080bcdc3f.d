/root/repo/target/release/deps/haccs-016f877080bcdc3f.d: src/lib.rs

/root/repo/target/release/deps/libhaccs-016f877080bcdc3f.rlib: src/lib.rs

/root/repo/target/release/deps/libhaccs-016f877080bcdc3f.rmeta: src/lib.rs

src/lib.rs:
