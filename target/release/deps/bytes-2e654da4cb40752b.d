/root/repo/target/release/deps/bytes-2e654da4cb40752b.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-2e654da4cb40752b.rlib: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-2e654da4cb40752b.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
