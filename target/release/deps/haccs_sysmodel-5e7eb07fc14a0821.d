/root/repo/target/release/deps/haccs_sysmodel-5e7eb07fc14a0821.d: crates/sysmodel/src/lib.rs crates/sysmodel/src/availability.rs crates/sysmodel/src/clock.rs crates/sysmodel/src/latency.rs crates/sysmodel/src/profile.rs

/root/repo/target/release/deps/libhaccs_sysmodel-5e7eb07fc14a0821.rlib: crates/sysmodel/src/lib.rs crates/sysmodel/src/availability.rs crates/sysmodel/src/clock.rs crates/sysmodel/src/latency.rs crates/sysmodel/src/profile.rs

/root/repo/target/release/deps/libhaccs_sysmodel-5e7eb07fc14a0821.rmeta: crates/sysmodel/src/lib.rs crates/sysmodel/src/availability.rs crates/sysmodel/src/clock.rs crates/sysmodel/src/latency.rs crates/sysmodel/src/profile.rs

crates/sysmodel/src/lib.rs:
crates/sysmodel/src/availability.rs:
crates/sysmodel/src/clock.rs:
crates/sysmodel/src/latency.rs:
crates/sysmodel/src/profile.rs:
