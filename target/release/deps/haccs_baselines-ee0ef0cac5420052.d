/root/repo/target/release/deps/haccs_baselines-ee0ef0cac5420052.d: crates/baselines/src/lib.rs crates/baselines/src/oort.rs crates/baselines/src/random.rs crates/baselines/src/tifl.rs

/root/repo/target/release/deps/libhaccs_baselines-ee0ef0cac5420052.rlib: crates/baselines/src/lib.rs crates/baselines/src/oort.rs crates/baselines/src/random.rs crates/baselines/src/tifl.rs

/root/repo/target/release/deps/libhaccs_baselines-ee0ef0cac5420052.rmeta: crates/baselines/src/lib.rs crates/baselines/src/oort.rs crates/baselines/src/random.rs crates/baselines/src/tifl.rs

crates/baselines/src/lib.rs:
crates/baselines/src/oort.rs:
crates/baselines/src/random.rs:
crates/baselines/src/tifl.rs:
