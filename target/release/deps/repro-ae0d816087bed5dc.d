/root/repo/target/release/deps/repro-ae0d816087bed5dc.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-ae0d816087bed5dc: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
