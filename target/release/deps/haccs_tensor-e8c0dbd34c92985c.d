/root/repo/target/release/deps/haccs_tensor-e8c0dbd34c92985c.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libhaccs_tensor-e8c0dbd34c92985c.rlib: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libhaccs_tensor-e8c0dbd34c92985c.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/tensor.rs:
