/root/repo/target/release/deps/haccs_data-c58a46cc17bba0c8.d: crates/data/src/lib.rs crates/data/src/federated.rs crates/data/src/image.rs crates/data/src/partition.rs crates/data/src/rotate.rs crates/data/src/synth.rs

/root/repo/target/release/deps/libhaccs_data-c58a46cc17bba0c8.rlib: crates/data/src/lib.rs crates/data/src/federated.rs crates/data/src/image.rs crates/data/src/partition.rs crates/data/src/rotate.rs crates/data/src/synth.rs

/root/repo/target/release/deps/libhaccs_data-c58a46cc17bba0c8.rmeta: crates/data/src/lib.rs crates/data/src/federated.rs crates/data/src/image.rs crates/data/src/partition.rs crates/data/src/rotate.rs crates/data/src/synth.rs

crates/data/src/lib.rs:
crates/data/src/federated.rs:
crates/data/src/image.rs:
crates/data/src/partition.rs:
crates/data/src/rotate.rs:
crates/data/src/synth.rs:
