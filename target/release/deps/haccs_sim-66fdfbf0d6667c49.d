/root/repo/target/release/deps/haccs_sim-66fdfbf0d6667c49.d: crates/bench/src/bin/haccs_sim.rs

/root/repo/target/release/deps/haccs_sim-66fdfbf0d6667c49: crates/bench/src/bin/haccs_sim.rs

crates/bench/src/bin/haccs_sim.rs:
