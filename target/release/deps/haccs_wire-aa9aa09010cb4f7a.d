/root/repo/target/release/deps/haccs_wire-aa9aa09010cb4f7a.d: crates/wire/src/lib.rs

/root/repo/target/release/deps/libhaccs_wire-aa9aa09010cb4f7a.rlib: crates/wire/src/lib.rs

/root/repo/target/release/deps/libhaccs_wire-aa9aa09010cb4f7a.rmeta: crates/wire/src/lib.rs

crates/wire/src/lib.rs:
