/root/repo/target/release/deps/haccs_fedsim-1ee40608d84996ce.d: crates/fedsim/src/lib.rs crates/fedsim/src/client.rs crates/fedsim/src/engine.rs crates/fedsim/src/metrics.rs crates/fedsim/src/selector.rs crates/fedsim/src/trainer.rs

/root/repo/target/release/deps/libhaccs_fedsim-1ee40608d84996ce.rlib: crates/fedsim/src/lib.rs crates/fedsim/src/client.rs crates/fedsim/src/engine.rs crates/fedsim/src/metrics.rs crates/fedsim/src/selector.rs crates/fedsim/src/trainer.rs

/root/repo/target/release/deps/libhaccs_fedsim-1ee40608d84996ce.rmeta: crates/fedsim/src/lib.rs crates/fedsim/src/client.rs crates/fedsim/src/engine.rs crates/fedsim/src/metrics.rs crates/fedsim/src/selector.rs crates/fedsim/src/trainer.rs

crates/fedsim/src/lib.rs:
crates/fedsim/src/client.rs:
crates/fedsim/src/engine.rs:
crates/fedsim/src/metrics.rs:
crates/fedsim/src/selector.rs:
crates/fedsim/src/trainer.rs:
