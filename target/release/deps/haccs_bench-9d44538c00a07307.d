/root/repo/target/release/deps/haccs_bench-9d44538c00a07307.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhaccs_bench-9d44538c00a07307.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhaccs_bench-9d44538c00a07307.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
