/root/repo/target/release/deps/rayon-19fe54fea8d995ea.d: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-19fe54fea8d995ea.rlib: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-19fe54fea8d995ea.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
