/root/repo/target/release/deps/haccs_cluster-f2e86a808927d501.d: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/dbscan.rs crates/cluster/src/optics.rs crates/cluster/src/quality.rs

/root/repo/target/release/deps/libhaccs_cluster-f2e86a808927d501.rlib: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/dbscan.rs crates/cluster/src/optics.rs crates/cluster/src/quality.rs

/root/repo/target/release/deps/libhaccs_cluster-f2e86a808927d501.rmeta: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/dbscan.rs crates/cluster/src/optics.rs crates/cluster/src/quality.rs

crates/cluster/src/lib.rs:
crates/cluster/src/agglomerative.rs:
crates/cluster/src/dbscan.rs:
crates/cluster/src/optics.rs:
crates/cluster/src/quality.rs:
