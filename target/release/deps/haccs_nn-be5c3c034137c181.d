/root/repo/target/release/deps/haccs_nn-be5c3c034137c181.d: crates/nn/src/lib.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/sequential.rs crates/nn/src/sgd.rs

/root/repo/target/release/deps/libhaccs_nn-be5c3c034137c181.rlib: crates/nn/src/lib.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/sequential.rs crates/nn/src/sgd.rs

/root/repo/target/release/deps/libhaccs_nn-be5c3c034137c181.rmeta: crates/nn/src/lib.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/sequential.rs crates/nn/src/sgd.rs

crates/nn/src/lib.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/sequential.rs:
crates/nn/src/sgd.rs:
