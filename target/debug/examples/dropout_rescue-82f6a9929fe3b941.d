/root/repo/target/debug/examples/dropout_rescue-82f6a9929fe3b941.d: examples/dropout_rescue.rs

/root/repo/target/debug/examples/dropout_rescue-82f6a9929fe3b941: examples/dropout_rescue.rs

examples/dropout_rescue.rs:
