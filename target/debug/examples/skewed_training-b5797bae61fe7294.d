/root/repo/target/debug/examples/skewed_training-b5797bae61fe7294.d: examples/skewed_training.rs Cargo.toml

/root/repo/target/debug/examples/libskewed_training-b5797bae61fe7294.rmeta: examples/skewed_training.rs Cargo.toml

examples/skewed_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
