/root/repo/target/debug/examples/quickstart-126a64a64491650d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-126a64a64491650d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
