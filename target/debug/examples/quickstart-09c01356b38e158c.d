/root/repo/target/debug/examples/quickstart-09c01356b38e158c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-09c01356b38e158c: examples/quickstart.rs

examples/quickstart.rs:
