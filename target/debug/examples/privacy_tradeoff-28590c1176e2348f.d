/root/repo/target/debug/examples/privacy_tradeoff-28590c1176e2348f.d: examples/privacy_tradeoff.rs Cargo.toml

/root/repo/target/debug/examples/libprivacy_tradeoff-28590c1176e2348f.rmeta: examples/privacy_tradeoff.rs Cargo.toml

examples/privacy_tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
