/root/repo/target/debug/examples/privacy_tradeoff-f73c5706f9086c5e.d: examples/privacy_tradeoff.rs

/root/repo/target/debug/examples/privacy_tradeoff-f73c5706f9086c5e: examples/privacy_tradeoff.rs

examples/privacy_tradeoff.rs:
