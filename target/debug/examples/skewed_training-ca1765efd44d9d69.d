/root/repo/target/debug/examples/skewed_training-ca1765efd44d9d69.d: examples/skewed_training.rs

/root/repo/target/debug/examples/skewed_training-ca1765efd44d9d69: examples/skewed_training.rs

examples/skewed_training.rs:
