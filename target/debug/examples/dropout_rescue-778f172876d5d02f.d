/root/repo/target/debug/examples/dropout_rescue-778f172876d5d02f.d: examples/dropout_rescue.rs Cargo.toml

/root/repo/target/debug/examples/libdropout_rescue-778f172876d5d02f.rmeta: examples/dropout_rescue.rs Cargo.toml

examples/dropout_rescue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
