/root/repo/target/debug/deps/haccs-cb7fb3a090b0f7b2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs-cb7fb3a090b0f7b2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
