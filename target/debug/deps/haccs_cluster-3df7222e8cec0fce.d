/root/repo/target/debug/deps/haccs_cluster-3df7222e8cec0fce.d: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/dbscan.rs crates/cluster/src/optics.rs crates/cluster/src/quality.rs

/root/repo/target/debug/deps/libhaccs_cluster-3df7222e8cec0fce.rlib: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/dbscan.rs crates/cluster/src/optics.rs crates/cluster/src/quality.rs

/root/repo/target/debug/deps/libhaccs_cluster-3df7222e8cec0fce.rmeta: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/dbscan.rs crates/cluster/src/optics.rs crates/cluster/src/quality.rs

crates/cluster/src/lib.rs:
crates/cluster/src/agglomerative.rs:
crates/cluster/src/dbscan.rs:
crates/cluster/src/optics.rs:
crates/cluster/src/quality.rs:
