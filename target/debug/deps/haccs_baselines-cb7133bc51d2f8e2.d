/root/repo/target/debug/deps/haccs_baselines-cb7133bc51d2f8e2.d: crates/baselines/src/lib.rs crates/baselines/src/oort.rs crates/baselines/src/random.rs crates/baselines/src/tifl.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_baselines-cb7133bc51d2f8e2.rmeta: crates/baselines/src/lib.rs crates/baselines/src/oort.rs crates/baselines/src/random.rs crates/baselines/src/tifl.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/oort.rs:
crates/baselines/src/random.rs:
crates/baselines/src/tifl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
