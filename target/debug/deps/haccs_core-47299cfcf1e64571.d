/root/repo/target/debug/deps/haccs_core-47299cfcf1e64571.d: crates/core/src/lib.rs crates/core/src/clusters.rs crates/core/src/selector.rs crates/core/src/telemetry.rs crates/core/src/weights.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_core-47299cfcf1e64571.rmeta: crates/core/src/lib.rs crates/core/src/clusters.rs crates/core/src/selector.rs crates/core/src/telemetry.rs crates/core/src/weights.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/clusters.rs:
crates/core/src/selector.rs:
crates/core/src/telemetry.rs:
crates/core/src/weights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
