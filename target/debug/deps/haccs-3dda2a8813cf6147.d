/root/repo/target/debug/deps/haccs-3dda2a8813cf6147.d: src/lib.rs

/root/repo/target/debug/deps/haccs-3dda2a8813cf6147: src/lib.rs

src/lib.rs:
