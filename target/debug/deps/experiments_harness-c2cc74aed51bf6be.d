/root/repo/target/debug/deps/experiments_harness-c2cc74aed51bf6be.d: tests/experiments_harness.rs

/root/repo/target/debug/deps/experiments_harness-c2cc74aed51bf6be: tests/experiments_harness.rs

tests/experiments_harness.rs:
