/root/repo/target/debug/deps/haccs_core-3b42f98621d21c10.d: crates/core/src/lib.rs crates/core/src/clusters.rs crates/core/src/selector.rs crates/core/src/telemetry.rs crates/core/src/weights.rs

/root/repo/target/debug/deps/libhaccs_core-3b42f98621d21c10.rlib: crates/core/src/lib.rs crates/core/src/clusters.rs crates/core/src/selector.rs crates/core/src/telemetry.rs crates/core/src/weights.rs

/root/repo/target/debug/deps/libhaccs_core-3b42f98621d21c10.rmeta: crates/core/src/lib.rs crates/core/src/clusters.rs crates/core/src/selector.rs crates/core/src/telemetry.rs crates/core/src/weights.rs

crates/core/src/lib.rs:
crates/core/src/clusters.rs:
crates/core/src/selector.rs:
crates/core/src/telemetry.rs:
crates/core/src/weights.rs:
