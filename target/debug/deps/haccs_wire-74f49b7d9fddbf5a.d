/root/repo/target/debug/deps/haccs_wire-74f49b7d9fddbf5a.d: crates/wire/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_wire-74f49b7d9fddbf5a.rmeta: crates/wire/src/lib.rs Cargo.toml

crates/wire/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
