/root/repo/target/debug/deps/haccs_cluster-2bb0fc417adfcb16.d: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/dbscan.rs crates/cluster/src/optics.rs crates/cluster/src/quality.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_cluster-2bb0fc417adfcb16.rmeta: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/dbscan.rs crates/cluster/src/optics.rs crates/cluster/src/quality.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/agglomerative.rs:
crates/cluster/src/dbscan.rs:
crates/cluster/src/optics.rs:
crates/cluster/src/quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
