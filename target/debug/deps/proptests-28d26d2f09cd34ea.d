/root/repo/target/debug/deps/proptests-28d26d2f09cd34ea.d: crates/data/tests/proptests.rs

/root/repo/target/debug/deps/proptests-28d26d2f09cd34ea: crates/data/tests/proptests.rs

crates/data/tests/proptests.rs:
