/root/repo/target/debug/deps/haccs_tensor-fccd8e19f6118dd4.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libhaccs_tensor-fccd8e19f6118dd4.rlib: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libhaccs_tensor-fccd8e19f6118dd4.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/tensor.rs:
