/root/repo/target/debug/deps/haccs_baselines-d443fe607152c56b.d: crates/baselines/src/lib.rs crates/baselines/src/oort.rs crates/baselines/src/random.rs crates/baselines/src/tifl.rs

/root/repo/target/debug/deps/libhaccs_baselines-d443fe607152c56b.rlib: crates/baselines/src/lib.rs crates/baselines/src/oort.rs crates/baselines/src/random.rs crates/baselines/src/tifl.rs

/root/repo/target/debug/deps/libhaccs_baselines-d443fe607152c56b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/oort.rs crates/baselines/src/random.rs crates/baselines/src/tifl.rs

crates/baselines/src/lib.rs:
crates/baselines/src/oort.rs:
crates/baselines/src/random.rs:
crates/baselines/src/tifl.rs:
