/root/repo/target/debug/deps/proptests-e869ed2eee38cca8.d: crates/nn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e869ed2eee38cca8: crates/nn/tests/proptests.rs

crates/nn/tests/proptests.rs:
