/root/repo/target/debug/deps/haccs_data-8b0f1347a6d3651f.d: crates/data/src/lib.rs crates/data/src/federated.rs crates/data/src/image.rs crates/data/src/partition.rs crates/data/src/rotate.rs crates/data/src/synth.rs

/root/repo/target/debug/deps/libhaccs_data-8b0f1347a6d3651f.rlib: crates/data/src/lib.rs crates/data/src/federated.rs crates/data/src/image.rs crates/data/src/partition.rs crates/data/src/rotate.rs crates/data/src/synth.rs

/root/repo/target/debug/deps/libhaccs_data-8b0f1347a6d3651f.rmeta: crates/data/src/lib.rs crates/data/src/federated.rs crates/data/src/image.rs crates/data/src/partition.rs crates/data/src/rotate.rs crates/data/src/synth.rs

crates/data/src/lib.rs:
crates/data/src/federated.rs:
crates/data/src/image.rs:
crates/data/src/partition.rs:
crates/data/src/rotate.rs:
crates/data/src/synth.rs:
