/root/repo/target/debug/deps/haccs_sysmodel-f8a048eafbc47abd.d: crates/sysmodel/src/lib.rs crates/sysmodel/src/availability.rs crates/sysmodel/src/clock.rs crates/sysmodel/src/latency.rs crates/sysmodel/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_sysmodel-f8a048eafbc47abd.rmeta: crates/sysmodel/src/lib.rs crates/sysmodel/src/availability.rs crates/sysmodel/src/clock.rs crates/sysmodel/src/latency.rs crates/sysmodel/src/profile.rs Cargo.toml

crates/sysmodel/src/lib.rs:
crates/sysmodel/src/availability.rs:
crates/sysmodel/src/clock.rs:
crates/sysmodel/src/latency.rs:
crates/sysmodel/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
