/root/repo/target/debug/deps/proptests-648a050bb9dccf47.d: crates/tensor/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-648a050bb9dccf47.rmeta: crates/tensor/tests/proptests.rs Cargo.toml

crates/tensor/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
