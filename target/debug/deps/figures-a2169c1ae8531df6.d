/root/repo/target/debug/deps/figures-a2169c1ae8531df6.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-a2169c1ae8531df6.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
