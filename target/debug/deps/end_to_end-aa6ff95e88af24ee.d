/root/repo/target/debug/deps/end_to_end-aa6ff95e88af24ee.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-aa6ff95e88af24ee: tests/end_to_end.rs

tests/end_to_end.rs:
