/root/repo/target/debug/deps/haccs_baselines-2be27a67a6201260.d: crates/baselines/src/lib.rs crates/baselines/src/oort.rs crates/baselines/src/random.rs crates/baselines/src/tifl.rs

/root/repo/target/debug/deps/haccs_baselines-2be27a67a6201260: crates/baselines/src/lib.rs crates/baselines/src/oort.rs crates/baselines/src/random.rs crates/baselines/src/tifl.rs

crates/baselines/src/lib.rs:
crates/baselines/src/oort.rs:
crates/baselines/src/random.rs:
crates/baselines/src/tifl.rs:
