/root/repo/target/debug/deps/repro-fdd1a6335909ce42.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-fdd1a6335909ce42: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
