/root/repo/target/debug/deps/haccs_data-f9220cdd0340d70b.d: crates/data/src/lib.rs crates/data/src/federated.rs crates/data/src/image.rs crates/data/src/partition.rs crates/data/src/rotate.rs crates/data/src/synth.rs

/root/repo/target/debug/deps/haccs_data-f9220cdd0340d70b: crates/data/src/lib.rs crates/data/src/federated.rs crates/data/src/image.rs crates/data/src/partition.rs crates/data/src/rotate.rs crates/data/src/synth.rs

crates/data/src/lib.rs:
crates/data/src/federated.rs:
crates/data/src/image.rs:
crates/data/src/partition.rs:
crates/data/src/rotate.rs:
crates/data/src/synth.rs:
