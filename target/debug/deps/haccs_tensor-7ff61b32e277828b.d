/root/repo/target/debug/deps/haccs_tensor-7ff61b32e277828b.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/haccs_tensor-7ff61b32e277828b: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/tensor.rs:
