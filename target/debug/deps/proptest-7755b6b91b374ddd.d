/root/repo/target/debug/deps/proptest-7755b6b91b374ddd.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-7755b6b91b374ddd.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
