/root/repo/target/debug/deps/proptests-c7449b6266c55951.d: crates/summary/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c7449b6266c55951.rmeta: crates/summary/tests/proptests.rs Cargo.toml

crates/summary/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
