/root/repo/target/debug/deps/haccs-d6b42bf687268101.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs-d6b42bf687268101.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
