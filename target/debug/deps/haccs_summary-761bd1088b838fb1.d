/root/repo/target/debug/deps/haccs_summary-761bd1088b838fb1.d: crates/summary/src/lib.rs crates/summary/src/distance.rs crates/summary/src/dp.rs crates/summary/src/hist.rs crates/summary/src/summarizer.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_summary-761bd1088b838fb1.rmeta: crates/summary/src/lib.rs crates/summary/src/distance.rs crates/summary/src/dp.rs crates/summary/src/hist.rs crates/summary/src/summarizer.rs Cargo.toml

crates/summary/src/lib.rs:
crates/summary/src/distance.rs:
crates/summary/src/dp.rs:
crates/summary/src/hist.rs:
crates/summary/src/summarizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
