/root/repo/target/debug/deps/haccs-221b86cb46328a7f.d: src/lib.rs

/root/repo/target/debug/deps/libhaccs-221b86cb46328a7f.rlib: src/lib.rs

/root/repo/target/debug/deps/libhaccs-221b86cb46328a7f.rmeta: src/lib.rs

src/lib.rs:
