/root/repo/target/debug/deps/haccs_sysmodel-6a2e0ca6d4e572c6.d: crates/sysmodel/src/lib.rs crates/sysmodel/src/availability.rs crates/sysmodel/src/clock.rs crates/sysmodel/src/latency.rs crates/sysmodel/src/profile.rs

/root/repo/target/debug/deps/haccs_sysmodel-6a2e0ca6d4e572c6: crates/sysmodel/src/lib.rs crates/sysmodel/src/availability.rs crates/sysmodel/src/clock.rs crates/sysmodel/src/latency.rs crates/sysmodel/src/profile.rs

crates/sysmodel/src/lib.rs:
crates/sysmodel/src/availability.rs:
crates/sysmodel/src/clock.rs:
crates/sysmodel/src/latency.rs:
crates/sysmodel/src/profile.rs:
