/root/repo/target/debug/deps/haccs_fedsim-34fcd49b23b0575e.d: crates/fedsim/src/lib.rs crates/fedsim/src/client.rs crates/fedsim/src/engine.rs crates/fedsim/src/metrics.rs crates/fedsim/src/selector.rs crates/fedsim/src/trainer.rs

/root/repo/target/debug/deps/libhaccs_fedsim-34fcd49b23b0575e.rlib: crates/fedsim/src/lib.rs crates/fedsim/src/client.rs crates/fedsim/src/engine.rs crates/fedsim/src/metrics.rs crates/fedsim/src/selector.rs crates/fedsim/src/trainer.rs

/root/repo/target/debug/deps/libhaccs_fedsim-34fcd49b23b0575e.rmeta: crates/fedsim/src/lib.rs crates/fedsim/src/client.rs crates/fedsim/src/engine.rs crates/fedsim/src/metrics.rs crates/fedsim/src/selector.rs crates/fedsim/src/trainer.rs

crates/fedsim/src/lib.rs:
crates/fedsim/src/client.rs:
crates/fedsim/src/engine.rs:
crates/fedsim/src/metrics.rs:
crates/fedsim/src/selector.rs:
crates/fedsim/src/trainer.rs:
