/root/repo/target/debug/deps/microbench-0b861a3ac2de930c.d: crates/bench/benches/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobench-0b861a3ac2de930c.rmeta: crates/bench/benches/microbench.rs Cargo.toml

crates/bench/benches/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
