/root/repo/target/debug/deps/haccs_summary-d2798014e6aae92a.d: crates/summary/src/lib.rs crates/summary/src/distance.rs crates/summary/src/dp.rs crates/summary/src/hist.rs crates/summary/src/summarizer.rs

/root/repo/target/debug/deps/libhaccs_summary-d2798014e6aae92a.rlib: crates/summary/src/lib.rs crates/summary/src/distance.rs crates/summary/src/dp.rs crates/summary/src/hist.rs crates/summary/src/summarizer.rs

/root/repo/target/debug/deps/libhaccs_summary-d2798014e6aae92a.rmeta: crates/summary/src/lib.rs crates/summary/src/distance.rs crates/summary/src/dp.rs crates/summary/src/hist.rs crates/summary/src/summarizer.rs

crates/summary/src/lib.rs:
crates/summary/src/distance.rs:
crates/summary/src/dp.rs:
crates/summary/src/hist.rs:
crates/summary/src/summarizer.rs:
