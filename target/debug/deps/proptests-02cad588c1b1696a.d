/root/repo/target/debug/deps/proptests-02cad588c1b1696a.d: crates/cluster/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-02cad588c1b1696a.rmeta: crates/cluster/tests/proptests.rs Cargo.toml

crates/cluster/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
