/root/repo/target/debug/deps/proptests-b7bfb1c96959a33d.d: crates/wire/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b7bfb1c96959a33d: crates/wire/tests/proptests.rs

crates/wire/tests/proptests.rs:
