/root/repo/target/debug/deps/haccs_experiments-bbcba9bda71efc12.d: crates/experiments/src/lib.rs crates/experiments/src/ablation.rs crates/experiments/src/common.rs crates/experiments/src/fig1.rs crates/experiments/src/fig10.rs crates/experiments/src/fig3.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/json.rs crates/experiments/src/report.rs crates/experiments/src/tab3.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_experiments-bbcba9bda71efc12.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablation.rs crates/experiments/src/common.rs crates/experiments/src/fig1.rs crates/experiments/src/fig10.rs crates/experiments/src/fig3.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/json.rs crates/experiments/src/report.rs crates/experiments/src/tab3.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/ablation.rs:
crates/experiments/src/common.rs:
crates/experiments/src/fig1.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig3.rs:
crates/experiments/src/fig5.rs:
crates/experiments/src/fig6.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/fig8.rs:
crates/experiments/src/fig9.rs:
crates/experiments/src/json.rs:
crates/experiments/src/report.rs:
crates/experiments/src/tab3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
