/root/repo/target/debug/deps/haccs_fedsim-028dfdb2ead27552.d: crates/fedsim/src/lib.rs crates/fedsim/src/client.rs crates/fedsim/src/engine.rs crates/fedsim/src/metrics.rs crates/fedsim/src/selector.rs crates/fedsim/src/trainer.rs

/root/repo/target/debug/deps/haccs_fedsim-028dfdb2ead27552: crates/fedsim/src/lib.rs crates/fedsim/src/client.rs crates/fedsim/src/engine.rs crates/fedsim/src/metrics.rs crates/fedsim/src/selector.rs crates/fedsim/src/trainer.rs

crates/fedsim/src/lib.rs:
crates/fedsim/src/client.rs:
crates/fedsim/src/engine.rs:
crates/fedsim/src/metrics.rs:
crates/fedsim/src/selector.rs:
crates/fedsim/src/trainer.rs:
