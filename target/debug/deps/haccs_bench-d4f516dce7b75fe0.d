/root/repo/target/debug/deps/haccs_bench-d4f516dce7b75fe0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhaccs_bench-d4f516dce7b75fe0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhaccs_bench-d4f516dce7b75fe0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
