/root/repo/target/debug/deps/figures-4bb7a2c4c0495b8e.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-4bb7a2c4c0495b8e: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
