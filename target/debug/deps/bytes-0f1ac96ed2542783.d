/root/repo/target/debug/deps/bytes-0f1ac96ed2542783.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-0f1ac96ed2542783.rlib: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-0f1ac96ed2542783.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
