/root/repo/target/debug/deps/haccs_sim-ac3d44be0354c3c5.d: crates/bench/src/bin/haccs_sim.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_sim-ac3d44be0354c3c5.rmeta: crates/bench/src/bin/haccs_sim.rs Cargo.toml

crates/bench/src/bin/haccs_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
