/root/repo/target/debug/deps/haccs_fedsim-c3184973980422ce.d: crates/fedsim/src/lib.rs crates/fedsim/src/client.rs crates/fedsim/src/engine.rs crates/fedsim/src/metrics.rs crates/fedsim/src/selector.rs crates/fedsim/src/trainer.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_fedsim-c3184973980422ce.rmeta: crates/fedsim/src/lib.rs crates/fedsim/src/client.rs crates/fedsim/src/engine.rs crates/fedsim/src/metrics.rs crates/fedsim/src/selector.rs crates/fedsim/src/trainer.rs Cargo.toml

crates/fedsim/src/lib.rs:
crates/fedsim/src/client.rs:
crates/fedsim/src/engine.rs:
crates/fedsim/src/metrics.rs:
crates/fedsim/src/selector.rs:
crates/fedsim/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
