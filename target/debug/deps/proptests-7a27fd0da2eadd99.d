/root/repo/target/debug/deps/proptests-7a27fd0da2eadd99.d: crates/summary/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7a27fd0da2eadd99: crates/summary/tests/proptests.rs

crates/summary/tests/proptests.rs:
