/root/repo/target/debug/deps/proptests-8b742b9150ff89d3.d: crates/sysmodel/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8b742b9150ff89d3.rmeta: crates/sysmodel/tests/proptests.rs Cargo.toml

crates/sysmodel/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
