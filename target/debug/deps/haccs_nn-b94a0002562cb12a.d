/root/repo/target/debug/deps/haccs_nn-b94a0002562cb12a.d: crates/nn/src/lib.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/sequential.rs crates/nn/src/sgd.rs

/root/repo/target/debug/deps/libhaccs_nn-b94a0002562cb12a.rlib: crates/nn/src/lib.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/sequential.rs crates/nn/src/sgd.rs

/root/repo/target/debug/deps/libhaccs_nn-b94a0002562cb12a.rmeta: crates/nn/src/lib.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/sequential.rs crates/nn/src/sgd.rs

crates/nn/src/lib.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/sequential.rs:
crates/nn/src/sgd.rs:
