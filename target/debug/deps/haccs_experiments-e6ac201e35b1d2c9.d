/root/repo/target/debug/deps/haccs_experiments-e6ac201e35b1d2c9.d: crates/experiments/src/lib.rs crates/experiments/src/ablation.rs crates/experiments/src/common.rs crates/experiments/src/fig1.rs crates/experiments/src/fig10.rs crates/experiments/src/fig3.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/json.rs crates/experiments/src/report.rs crates/experiments/src/tab3.rs

/root/repo/target/debug/deps/haccs_experiments-e6ac201e35b1d2c9: crates/experiments/src/lib.rs crates/experiments/src/ablation.rs crates/experiments/src/common.rs crates/experiments/src/fig1.rs crates/experiments/src/fig10.rs crates/experiments/src/fig3.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/json.rs crates/experiments/src/report.rs crates/experiments/src/tab3.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablation.rs:
crates/experiments/src/common.rs:
crates/experiments/src/fig1.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig3.rs:
crates/experiments/src/fig5.rs:
crates/experiments/src/fig6.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/fig8.rs:
crates/experiments/src/fig9.rs:
crates/experiments/src/json.rs:
crates/experiments/src/report.rs:
crates/experiments/src/tab3.rs:
