/root/repo/target/debug/deps/haccs_nn-1329bb6b0031614c.d: crates/nn/src/lib.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/sequential.rs crates/nn/src/sgd.rs

/root/repo/target/debug/deps/haccs_nn-1329bb6b0031614c: crates/nn/src/lib.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/sequential.rs crates/nn/src/sgd.rs

crates/nn/src/lib.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/sequential.rs:
crates/nn/src/sgd.rs:
