/root/repo/target/debug/deps/proptests-2afc044b7ed69c33.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2afc044b7ed69c33.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
