/root/repo/target/debug/deps/bytes-07733684a0b06919.d: shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-07733684a0b06919.rmeta: shims/bytes/src/lib.rs Cargo.toml

shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
