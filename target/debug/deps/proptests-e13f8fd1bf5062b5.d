/root/repo/target/debug/deps/proptests-e13f8fd1bf5062b5.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e13f8fd1bf5062b5: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
