/root/repo/target/debug/deps/proptests-fee6b71232bdd5f9.d: crates/sysmodel/tests/proptests.rs

/root/repo/target/debug/deps/proptests-fee6b71232bdd5f9: crates/sysmodel/tests/proptests.rs

crates/sysmodel/tests/proptests.rs:
