/root/repo/target/debug/deps/haccs_bench-86f0b11c9c997b36.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/haccs_bench-86f0b11c9c997b36: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
