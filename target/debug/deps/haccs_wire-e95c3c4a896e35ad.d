/root/repo/target/debug/deps/haccs_wire-e95c3c4a896e35ad.d: crates/wire/src/lib.rs

/root/repo/target/debug/deps/haccs_wire-e95c3c4a896e35ad: crates/wire/src/lib.rs

crates/wire/src/lib.rs:
