/root/repo/target/debug/deps/haccs_data-0de3587112287a9a.d: crates/data/src/lib.rs crates/data/src/federated.rs crates/data/src/image.rs crates/data/src/partition.rs crates/data/src/rotate.rs crates/data/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_data-0de3587112287a9a.rmeta: crates/data/src/lib.rs crates/data/src/federated.rs crates/data/src/image.rs crates/data/src/partition.rs crates/data/src/rotate.rs crates/data/src/synth.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/federated.rs:
crates/data/src/image.rs:
crates/data/src/partition.rs:
crates/data/src/rotate.rs:
crates/data/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
