/root/repo/target/debug/deps/haccs_tensor-61d9fec7ebc2d1bd.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_tensor-61d9fec7ebc2d1bd.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
