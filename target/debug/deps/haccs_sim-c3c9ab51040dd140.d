/root/repo/target/debug/deps/haccs_sim-c3c9ab51040dd140.d: crates/bench/src/bin/haccs_sim.rs

/root/repo/target/debug/deps/haccs_sim-c3c9ab51040dd140: crates/bench/src/bin/haccs_sim.rs

crates/bench/src/bin/haccs_sim.rs:
