/root/repo/target/debug/deps/haccs_wire-9c1769b37d33665b.d: crates/wire/src/lib.rs

/root/repo/target/debug/deps/libhaccs_wire-9c1769b37d33665b.rlib: crates/wire/src/lib.rs

/root/repo/target/debug/deps/libhaccs_wire-9c1769b37d33665b.rmeta: crates/wire/src/lib.rs

crates/wire/src/lib.rs:
