/root/repo/target/debug/deps/repro-dfeb45c4a30a5813.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-dfeb45c4a30a5813: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
