/root/repo/target/debug/deps/haccs_cluster-fa2265b78415bf9b.d: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/dbscan.rs crates/cluster/src/optics.rs crates/cluster/src/quality.rs

/root/repo/target/debug/deps/haccs_cluster-fa2265b78415bf9b: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/dbscan.rs crates/cluster/src/optics.rs crates/cluster/src/quality.rs

crates/cluster/src/lib.rs:
crates/cluster/src/agglomerative.rs:
crates/cluster/src/dbscan.rs:
crates/cluster/src/optics.rs:
crates/cluster/src/quality.rs:
