/root/repo/target/debug/deps/haccs_sim-a197320c3e91f258.d: crates/bench/src/bin/haccs_sim.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_sim-a197320c3e91f258.rmeta: crates/bench/src/bin/haccs_sim.rs Cargo.toml

crates/bench/src/bin/haccs_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
