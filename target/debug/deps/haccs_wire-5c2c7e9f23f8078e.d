/root/repo/target/debug/deps/haccs_wire-5c2c7e9f23f8078e.d: crates/wire/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_wire-5c2c7e9f23f8078e.rmeta: crates/wire/src/lib.rs Cargo.toml

crates/wire/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
