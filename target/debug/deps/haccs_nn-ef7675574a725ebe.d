/root/repo/target/debug/deps/haccs_nn-ef7675574a725ebe.d: crates/nn/src/lib.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/sequential.rs crates/nn/src/sgd.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_nn-ef7675574a725ebe.rmeta: crates/nn/src/lib.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/sequential.rs crates/nn/src/sgd.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/sequential.rs:
crates/nn/src/sgd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
