/root/repo/target/debug/deps/proptests-35931312522cc315.d: crates/wire/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-35931312522cc315.rmeta: crates/wire/tests/proptests.rs Cargo.toml

crates/wire/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
