/root/repo/target/debug/deps/haccs_summary-0c5db101e3d8d918.d: crates/summary/src/lib.rs crates/summary/src/distance.rs crates/summary/src/dp.rs crates/summary/src/hist.rs crates/summary/src/summarizer.rs

/root/repo/target/debug/deps/haccs_summary-0c5db101e3d8d918: crates/summary/src/lib.rs crates/summary/src/distance.rs crates/summary/src/dp.rs crates/summary/src/hist.rs crates/summary/src/summarizer.rs

crates/summary/src/lib.rs:
crates/summary/src/distance.rs:
crates/summary/src/dp.rs:
crates/summary/src/hist.rs:
crates/summary/src/summarizer.rs:
