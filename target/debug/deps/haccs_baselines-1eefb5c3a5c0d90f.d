/root/repo/target/debug/deps/haccs_baselines-1eefb5c3a5c0d90f.d: crates/baselines/src/lib.rs crates/baselines/src/oort.rs crates/baselines/src/random.rs crates/baselines/src/tifl.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_baselines-1eefb5c3a5c0d90f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/oort.rs crates/baselines/src/random.rs crates/baselines/src/tifl.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/oort.rs:
crates/baselines/src/random.rs:
crates/baselines/src/tifl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
