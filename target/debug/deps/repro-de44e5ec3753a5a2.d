/root/repo/target/debug/deps/repro-de44e5ec3753a5a2.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-de44e5ec3753a5a2.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
