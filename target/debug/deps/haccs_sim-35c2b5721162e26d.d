/root/repo/target/debug/deps/haccs_sim-35c2b5721162e26d.d: crates/bench/src/bin/haccs_sim.rs

/root/repo/target/debug/deps/haccs_sim-35c2b5721162e26d: crates/bench/src/bin/haccs_sim.rs

crates/bench/src/bin/haccs_sim.rs:
