/root/repo/target/debug/deps/proptests-e738359ca13567a4.d: crates/cluster/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e738359ca13567a4: crates/cluster/tests/proptests.rs

crates/cluster/tests/proptests.rs:
