/root/repo/target/debug/deps/haccs_bench-79abbb033490232d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhaccs_bench-79abbb033490232d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
