/root/repo/target/debug/deps/proptests-338a88800f967eb9.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-338a88800f967eb9: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
