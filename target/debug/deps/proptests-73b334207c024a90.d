/root/repo/target/debug/deps/proptests-73b334207c024a90.d: crates/data/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-73b334207c024a90.rmeta: crates/data/tests/proptests.rs Cargo.toml

crates/data/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
