/root/repo/target/debug/deps/microbench-8d8e42acdce7aaed.d: crates/bench/benches/microbench.rs

/root/repo/target/debug/deps/microbench-8d8e42acdce7aaed: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
