/root/repo/target/debug/deps/repro-cd1b259ba3e8b111.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-cd1b259ba3e8b111.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
