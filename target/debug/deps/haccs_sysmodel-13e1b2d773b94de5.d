/root/repo/target/debug/deps/haccs_sysmodel-13e1b2d773b94de5.d: crates/sysmodel/src/lib.rs crates/sysmodel/src/availability.rs crates/sysmodel/src/clock.rs crates/sysmodel/src/latency.rs crates/sysmodel/src/profile.rs

/root/repo/target/debug/deps/libhaccs_sysmodel-13e1b2d773b94de5.rlib: crates/sysmodel/src/lib.rs crates/sysmodel/src/availability.rs crates/sysmodel/src/clock.rs crates/sysmodel/src/latency.rs crates/sysmodel/src/profile.rs

/root/repo/target/debug/deps/libhaccs_sysmodel-13e1b2d773b94de5.rmeta: crates/sysmodel/src/lib.rs crates/sysmodel/src/availability.rs crates/sysmodel/src/clock.rs crates/sysmodel/src/latency.rs crates/sysmodel/src/profile.rs

crates/sysmodel/src/lib.rs:
crates/sysmodel/src/availability.rs:
crates/sysmodel/src/clock.rs:
crates/sysmodel/src/latency.rs:
crates/sysmodel/src/profile.rs:
