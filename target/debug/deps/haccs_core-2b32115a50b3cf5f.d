/root/repo/target/debug/deps/haccs_core-2b32115a50b3cf5f.d: crates/core/src/lib.rs crates/core/src/clusters.rs crates/core/src/selector.rs crates/core/src/telemetry.rs crates/core/src/weights.rs

/root/repo/target/debug/deps/haccs_core-2b32115a50b3cf5f: crates/core/src/lib.rs crates/core/src/clusters.rs crates/core/src/selector.rs crates/core/src/telemetry.rs crates/core/src/weights.rs

crates/core/src/lib.rs:
crates/core/src/clusters.rs:
crates/core/src/selector.rs:
crates/core/src/telemetry.rs:
crates/core/src/weights.rs:
