/root/repo/target/debug/deps/proptests-3c3988d2151c8022.d: crates/nn/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-3c3988d2151c8022.rmeta: crates/nn/tests/proptests.rs Cargo.toml

crates/nn/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
