/root/repo/target/debug/deps/experiments_harness-b630b156bf73bc31.d: tests/experiments_harness.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments_harness-b630b156bf73bc31.rmeta: tests/experiments_harness.rs Cargo.toml

tests/experiments_harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
