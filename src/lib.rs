//! # haccs
//!
//! A Rust reproduction of **"HACCS: Heterogeneity-Aware Clustered Client
//! Selection for Accelerated Federated Learning"** (IPDPS 2022).
//!
//! HACCS clusters federated-learning clients by privacy-preserving
//! summaries of their local data distributions (label histograms `P(y)` or
//! conditional feature histograms `P(X|y)`, compared by Hellinger distance
//! and clustered with OPTICS), then schedules **clusters** instead of
//! devices: each round, clusters are sampled by loss/latency-weighted
//! random sampling (Eq. 7) and the fastest available device in each
//! sampled cluster trains. The result is faster time-to-accuracy under
//! label/feature skew and robustness to device dropout.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`tensor`] | dense f32 tensors, rayon matmul/conv |
//! | [`nn`] | layers, manual backprop, SGD, LeNet/MLP |
//! | [`data`] | synthetic federated vision datasets + partitioners |
//! | [`summary`] | P(y)/P(X\|y) histograms, Hellinger, Laplace mechanism |
//! | [`cluster`] | DBSCAN + OPTICS over distance matrices |
//! | [`sysmodel`] | Table II device profiles, latency model, dropout |
//! | [`fedsim`] | the FedAvg simulation engine |
//! | [`baselines`] | Random, TiFL, Oort selectors |
//! | [`selectors`] | extended zoo: FedClust, LEFL, k-DPP, heterogeneity-guided |
//! | [`scheduler`] | the HACCS selector itself (Algorithm 1) |
//! | [`experiments`] | one module per paper table/figure |
//! | [`wire`] | the client↔server message codec with exact size accounting |
//! | [`coord`] | the message-driven coordinator runtime: agent threads, liveness, dynamic membership |
//! | [`persist`] | versioned snapshot codec + bit-identical crash/resume |
//! | [`obs`] | structured tracing (events/spans), metrics registry, JSONL + Prometheus sinks |
//!
//! ## Quickstart
//!
//! ```
//! use haccs::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // 1. a small federation: 8 clients with skewed labels
//! let mut rng = StdRng::seed_from_u64(0);
//! let specs = partition::majority_noise(8, 4, &[0.75, 0.25], (40, 60), 10, &mut rng);
//! let gen = SynthVision::mnist_like(4, 8, 0);
//! let fed = FederatedDataset::materialize(&gen, &specs, 0);
//!
//! // 2. summarize + cluster (what each client would send the server)
//! let summarizer = Summarizer::label_dist();
//! let summaries = summarize_federation(&fed, &summarizer, 0);
//! let (_, groups) = build_clusters(&summarizer, &summaries, 2, ExtractionMethod::Auto);
//!
//! // 3. schedule with HACCS inside a simulated federation
//! let mut selector = HaccsSelector::new(groups, 0.5, "P(y)");
//! let mut profiles_rng = StdRng::seed_from_u64(1);
//! let profiles = DeviceProfile::sample_many(8, &mut profiles_rng);
//! let factory: haccs::fedsim::engine::ModelFactory =
//!     Box::new(|| haccs::nn::mlp(64, &[32], 4, &mut StdRng::seed_from_u64(7)));
//! let mut sim = FedSim::new(
//!     factory, fed, profiles,
//!     LatencyModel::default(), Availability::AlwaysOn,
//!     SimConfig { k: 3, ..Default::default() },
//! );
//! let result = sim.run(&mut selector, 3);
//! assert_eq!(result.rounds.len(), 3);
//! ```

pub use haccs_baselines as baselines;
pub use haccs_cluster as cluster;
pub use haccs_codec as codec;
pub use haccs_coord as coord;
pub use haccs_core as scheduler;
pub use haccs_data as data;
pub use haccs_experiments as experiments;
pub use haccs_fedsim as fedsim;
pub use haccs_nn as nn;
pub use haccs_obs as obs;
pub use haccs_persist as persist;
pub use haccs_selectors as selectors;
pub use haccs_summary as summary;
pub use haccs_sysmodel as sysmodel;
pub use haccs_tensor as tensor;
pub use haccs_wire as wire;

/// The most common imports in one place.
pub mod prelude {
    pub use haccs_baselines::{OortSelector, RandomSelector, TiflSelector};
    pub use haccs_cluster::Clustering;
    pub use haccs_cluster::WarmOptics;
    pub use haccs_codec::{CodecKind, Identity, Int8Quant, TopKDelta, UpdateCodec};
    pub use haccs_coord::{Coordinator, Liveness, RoundPhase};
    pub use haccs_core::{
        build_clusters, engine_add_client, engine_replace_client_data, summarize_federation,
        ClusterCache, ExtractionMethod, HaccsSelector, WithinClusterPolicy,
    };
    pub use haccs_data::{partition, ClientData, FederatedDataset, ImageSet, SynthVision};
    pub use haccs_fedsim::{
        neutral_loss, AggregationPolicy, FaultStats, FedSim, RoundPolicy, RunResult,
        SelectionContext, Selector, SimConfig, SnapshotPolicy,
    };
    pub use haccs_nn::{ModelKind, Sequential, Sgd};
    pub use haccs_obs::{JsonlSink, MemorySink, MetricsRegistry, Recorder, Sink};
    pub use haccs_persist::{PersistError, SnapshotReader, SnapshotWriter};
    pub use haccs_selectors::{
        DppSelector, FedClustSelector, HeterogeneityGuidedSelector, LeflSelector, SelectorKind,
    };
    pub use haccs_summary::{ClientSummary, DistanceCache, Summarizer};
    pub use haccs_sysmodel::{
        Availability, DeviceProfile, FaultModel, FaultSpec, LatencyModel, PerfCategory,
    };
}
