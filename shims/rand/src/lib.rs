//! Offline stand-in for the `rand` crate, API-compatible with the subset
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, the
//! [`Rng`] extension trait (`gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is **not** the upstream ChaCha-based `StdRng`; it is a
//! small, fast xoshiro256** instance seeded through SplitMix64. Everything
//! in this workspace that cares about randomness cares about *determinism
//! given a seed*, which this provides bit-for-bit across platforms and
//! thread counts.

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step; used for seeding and as a one-shot hash.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (offline `StdRng` stand-in).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Directly constructs from a full 256-bit state — the counterpart
        /// of [`StdRng::state`], for restoring a saved stream position.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        /// The full 256-bit internal state. Saving this and later feeding
        /// it to [`StdRng::from_state`] resumes the stream bit-exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng::from_state(s)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = $unit(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * $unit(rng)
            }
        }
    )*};
}

/// Uniform f64 in [0, 1) with 53 random bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform f32 in [0, 1) with 24 random bits.
#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

float_sample_range!(f32, unit_f32; f64, unit_f64);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), matching `rand::seq::SliceRandom`'s
    /// signature for the methods this workspace uses.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(
            (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect::<Vec<_>>(),
            (0..8).map(|_| c.gen_range(0u64..u64::MAX)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i32..17);
            assert!((-5..17).contains(&x));
            let y: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&z));
            let w: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&w));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 50_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen_range(0u64..u64::MAX);
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
