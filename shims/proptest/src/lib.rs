//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro (with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), [`Strategy`]
//! with `prop_map` / `prop_flat_map` / `boxed`, `any::<T>()`, numeric range
//! strategies, tuple strategies (up to 6 elements), [`strategy::Just`],
//! [`prop_oneof!`], `collection::{vec, hash_set}`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`
//! assertion macros.
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed (no `PROPTEST_*` env handling) and failing cases are **not shrunk** —
//! the panic message reports the raw failing values via `prop_assert*`'s
//! formatting instead.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// A fixed-seed RNG so every test run explores the same cases.
        pub fn deterministic() -> Self {
            TestRng { inner: StdRng::seed_from_u64(0x5052_4f50_5445_5354) }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Why a generated case did not produce a pass/fail verdict.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
    }

    /// Runner configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates an intermediate value, then a value from the strategy
        /// `f` builds out of it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.gen_value(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.gen_value(rng)).gen_value(rng)
        }
    }

    /// A strategy that always yields a clone of the given value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among several strategies of the same value type
    /// (what [`prop_oneof!`] builds).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rand::Rng::gen_range(rng, 0..self.options.len());
            self.options[i].gen_value(rng)
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident.$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn gen_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `A`'s full domain.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from the range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` aiming for a size within the range.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `HashSet` of values from `element`. Like upstream, the set may end
    /// up smaller than requested when the element domain collides.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 16 {
                set.insert(self.element.gen_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand $cfg; $($rest)*);
    };
    (@expand $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                let mut passed: u32 = 0;
                // Bounded so a property whose assumptions always reject
                // terminates instead of spinning forever.
                let max_attempts = config.cases.saturating_mul(16).max(64);
                let mut attempts: u32 = 0;
                while passed < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                    let case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    match case() {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Uniform choice among the listed strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts two values differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case (without failing) when the condition is false.
/// Only valid directly inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        use crate::strategy::Strategy;
        for _ in 0..200 {
            let v = crate::collection::vec(0.0f32..1.0, 3..7).gen_value(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            let s = crate::collection::hash_set(0usize..5, 2..5).gen_value(&mut rng);
            assert!(s.len() <= 4);
            let t = (0u8..4, Just(7i32)).gen_value(&mut rng);
            assert!(t.0 < 4 && t.1 == 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_patterns((a, b) in (0usize..10, 5usize..15), seed in any::<u64>()) {
            let _ = seed;
            prop_assert!(a < 10);
            prop_assert!((5..15).contains(&b));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n >= 5);
            prop_assert!(n >= 5);
        }

        #[test]
        fn flat_map_links_sizes(v in (1usize..6).prop_flat_map(|n| crate::collection::vec(Just(n), n))) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x == v.len()));
        }

        #[test]
        fn oneof_picks_every_arm(x in prop_oneof![0i32..10, 100i32..110]) {
            prop_assert!((0..10).contains(&x) || (100..110).contains(&x));
        }
    }
}
