//! Offline stand-in for the `bytes` crate: [`Bytes`] / [`BytesMut`] plus
//! the [`Buf`] / [`BufMut`] methods the wire codec uses. `Bytes` is a
//! cheaply cloneable `Arc<[u8]>` window with a read cursor; `BytesMut` is a
//! growable buffer that freezes into `Bytes`.

use std::sync::Arc;

/// Read-side buffer operations (little-endian getters consume from the
/// front).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes into an internal scratch view, advancing the cursor.
    fn copy_bytes(&mut self, n: usize) -> &[u8];

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_bytes(1)[0]
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_bytes(4).try_into().unwrap())
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_bytes(8).try_into().unwrap())
    }

    /// Consumes a little-endian IEEE-754 `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Write-side buffer operations (little-endian putters append).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian IEEE-754 `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

/// An immutable, cheaply cloneable byte window with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Read cursor (index of the next unread byte).
    pos: usize,
    /// One past the last readable byte.
    end: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.end - self.pos
    }

    /// Whether nothing is left to read.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new `Bytes` viewing `range` of the *unread* region, sharing the
    /// underlying allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            pos: self.pos + range.start,
            end: self.pos + range.end,
        }
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    /// The unread bytes as a slice.
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), pos: 0, end }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.remaining(), "buffer underflow: need {n}, have {}", self.remaining());
        let start = self.pos;
        self.pos += n;
        &self.data[start..start + n]
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    /// The written bytes.
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_getters() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xAB);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_f32_le(1.5);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 4);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_views_unread_region() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let mut s2 = s.clone();
        assert_eq!(s2.get_u8(), 2);
        assert_eq!(s2.slice(0..2).as_ref(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn reading_past_end_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        b.get_u32_le();
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(vec![9, 1, 2]);
        a.get_u8();
        assert_eq!(a, Bytes::from(vec![1, 2]));
    }
}
