//! Offline stand-in for `rayon`. The `par_iter`/`into_par_iter`/
//! `par_chunks_mut` entry points this workspace uses are provided as plain
//! sequential iterators: the returned types are the corresponding `std`
//! iterators, so every downstream adapter (`map`, `enumerate`, `collect`,
//! `for_each`, ...) works unchanged.
//!
//! Sequential execution makes "identical results across thread counts"
//! hold by construction; `RAYON_NUM_THREADS` is accepted and ignored.

pub mod prelude {
    /// `par_iter` / `par_iter_mut` on slices and anything deref-able to one.
    pub trait ParallelSliceExt<T> {
        /// Sequential stand-in for `rayon`'s parallel shared iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `rayon`'s parallel mutable iterator.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> ParallelSliceExt<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    impl<T> ParallelSliceExt<T> for Vec<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    /// `par_chunks` / `par_chunks_mut` on slices.
    pub trait ParallelChunksExt<T> {
        /// Sequential stand-in for `rayon`'s parallel chunk iterator.
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
        /// Sequential stand-in for `rayon`'s parallel mutable chunks.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelChunksExt<T> for [T] {
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }

    /// `into_par_iter` on owned collections and ranges.
    pub trait IntoParallelIterator {
        /// The sequential iterator standing in for the parallel one.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item;
        /// Sequential stand-in for `rayon`'s `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        type Item = usize;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

/// The number of "worker threads": always 1 in the sequential stand-in.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_on_range_and_vec() {
        let s: usize = (0..5usize).into_par_iter().sum();
        assert_eq!(s, 10);
        let v: Vec<usize> = vec![5, 6].into_par_iter().collect();
        assert_eq!(v, vec![5, 6]);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v = vec![0u32; 6];
        v.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(v, vec![0, 0, 1, 1, 2, 2]);
    }
}
