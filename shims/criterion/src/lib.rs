//! Offline stand-in for the `criterion` crate.
//!
//! Provides the entry points this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`criterion_group!`],
//! [`criterion_main!`] — with a drastically simpler measurement loop: each
//! routine runs `sample_size` times and the mean/min wall-clock time is
//! printed. There is no warm-up, outlier analysis, or HTML report; the
//! point is that `cargo bench` compiles, runs, and produces usable
//! relative numbers offline.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost; all variants behave the same
/// here (setup re-runs per iteration, outside the timed section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: usize,
    /// Mean and min of the collected samples, filled in by `iter*`.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, result: None }
    }

    fn record(&mut self, times: &[Duration]) {
        let total: Duration = times.iter().sum();
        let mean = total / times.len().max(1) as u32;
        let min = times.iter().min().copied().unwrap_or_default();
        self.result = Some((mean, min));
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(routine());
                t0.elapsed()
            })
            .collect();
        self.record(&times);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                t0.elapsed()
            })
            .collect();
        self.record(&times);
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each routine is run for.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        match b.result {
            Some((mean, min)) => {
                println!("bench: {name:<40} mean {mean:>12.3?}   min {min:>12.3?}")
            }
            None => println!("bench: {name:<40} (no measurement recorded)"),
        }
        self
    }

    /// Starts a named group; group benches report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.parent.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions under a runner name, with an optional
/// `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut runs = 0usize;
        Criterion::default().sample_size(3).bench_function("counter", |b| {
            b.iter(|| runs += 1);
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut seen = Vec::new();
        let mut next = 0usize;
        Criterion::default().sample_size(4).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |v| seen.push(v),
                BatchSize::SmallInput,
            );
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion::default().sample_size(1);
        let mut g = c.benchmark_group("g");
        let mut hit = false;
        g.bench_function("inner", |b| b.iter(|| hit = true));
        g.finish();
        assert!(hit);
    }
}
